"""Command-line interface: ``ruru <command>``.

Subcommands mirror how the deployed system is operated:

* ``ruru generate`` — synthesize a workload and write it to a pcap.
* ``ruru measure`` — run the measurement pipeline over a pcap (or a
  freshly generated workload) and print latency records / stats.
* ``ruru demo`` — the paper's demo: full pipeline with analytics,
  dashboards and the live-map feed, printed as text.
* ``ruru detect`` — run the anomaly detectors over a scenario with an
  injected firewall glitch / SYN flood and print the events.
* ``ruru export`` — run a workload and export the measurement database
  as Influx line protocol (plus the Grafana dashboard JSON).
* ``ruru query`` — execute an InfluxQL-style query against an exported
  line-protocol file.
* ``ruru metrics`` — run a workload with full telemetry and print the
  Prometheus text exposition of every pipeline/mq/analytics metric,
  plus the SLO verdicts (``--slo-gate`` turns violations into a
  non-zero exit).
* ``ruru prof`` — per-stage profile of the live stack derived from the
  stage graph: wall/cpu/virtual accounting, packets/s and ns/packet
  per stage, sampled call attribution, collapsed-stack export for
  flamegraphs.
* ``ruru perf`` — benchmark resultset archive tools: ``compare`` two
  schema-versioned resultset JSONs with noise-aware thresholds (the CI
  perf-regression gate), ``show`` one.
* ``ruru scenario`` — the declarative scenario harness: ``list`` /
  ``show`` the committed scenario library, ``run`` one spec through
  the stage-graph runtime with correctness checks, ``batch`` a
  resumable (scenario × seed × override) grid into a resultset
  archive, ``compare`` runs against the committed baselines with
  exact invariant gating.
* ``ruru chaos`` — replay a workload under a named fault profile with
  the resilience layer active, and report fault counts, the count
  conservation check, breaker episodes and recovery times.
* ``ruru dlq`` — run a chaos scenario and inspect the dead-letter
  queue it produced.
* ``ruru live`` — run the durable monitor: periodic checkpoints, a
  TSDB write-ahead log, and a graceful drain on SIGINT/SIGTERM that
  leaves a clean checkpoint behind.
* ``ruru recover`` — hot-restart from a state directory: load the
  latest valid checkpoint, replay the WAL, report the reconciled
  ledger. ``--trial`` instead runs a kill-anywhere recovery trial at
  a named crash point.

Any workload command also accepts ``--telemetry`` to enable the
:mod:`repro.obs` subsystem (metrics registry, stage tracing, periodic
self-monitoring export into the TSDB) for that run.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.frontend.dashboard import build_ruru_dashboard
from repro.frontend.map_view import LiveMapView
from repro.frontend.websocket import WebSocketChannel
from repro.mq.codec import decode_enriched
from repro.net.pcap import PcapWriter
from repro.obs import Telemetry
from repro.stack import build_live_stack, build_measure_stack
from repro.tsdb.database import TimeSeriesDatabase
from repro.net.pcapng import PcapngWriter, open_capture
from repro.traffic.scenarios import (
    AucklandLaScenario,
    FirewallGlitchInjector,
    SynFloodInjector,
)

NS_PER_S = 1_000_000_000


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=30.0, help="seconds of traffic")
    parser.add_argument("--rate", type=float, default=50.0, help="mean flows per second")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--queues", type=int, default=4, help="RSS receive queues")
    parser.add_argument(
        "--telemetry", action="store_true",
        help="enable the repro.obs telemetry subsystem for this run",
    )
    parser.add_argument(
        "--telemetry-interval", type=float, default=1.0,
        help="self-monitoring export interval in (virtual) seconds",
    )


def _make_telemetry(args) -> Optional[Telemetry]:
    """A Telemetry handle when --telemetry was given, else None."""
    if not getattr(args, "telemetry", False):
        return None
    return Telemetry()


def _attach_exporter(telemetry: Optional[Telemetry], args, tsdb) -> None:
    if telemetry is not None:
        interval_ns = max(1, int(args.telemetry_interval * NS_PER_S))
        telemetry.export_to(tsdb, interval_ns=interval_ns)


def _print_telemetry_summary(telemetry: Optional[Telemetry], clock) -> None:
    if telemetry is None:
        return
    telemetry.flush(clock.now_ns)
    exporter = telemetry.exporter
    print("--- telemetry ---")
    if exporter is not None:
        print(
            f"self-monitoring exports: {exporter.exports} snapshots, "
            f"{exporter.points_written} points, "
            f"{len(exporter.series_names())} series"
        )
    print(
        f"stage traces retained: {len(telemetry.tracer.recent())} "
        f"(stages: {', '.join(telemetry.tracer.stage_names()) or 'none'})"
    )


def _build_generator(args, injectors=None):
    scenario = AucklandLaScenario(
        duration_ns=int(args.duration * NS_PER_S),
        mean_flows_per_s=args.rate,
        seed=args.seed,
        diurnal=False,
    )
    return scenario.build(injectors=injectors)


def cmd_generate(args) -> int:
    generator = _build_generator(args)
    count = 0
    writer_cls = PcapngWriter if args.format == "pcapng" else PcapWriter
    with writer_cls(args.output) as writer:
        for packet in generator.packets():
            writer.write(packet)
            count += 1
    print(f"wrote {count} packets from {generator.flows_generated} flows to {args.output}")
    return 0


def cmd_measure(args) -> int:
    telemetry = _make_telemetry(args)
    _attach_exporter(telemetry, args, TimeSeriesDatabase(name="ruru-selfmon"))
    stack = build_measure_stack(queues=args.queues, telemetry=telemetry)
    pipeline = stack.pipeline
    if args.pcap:
        with open_capture(args.pcap) as reader:
            stats = pipeline.run_packets(reader)
    else:
        generator = _build_generator(args)
        stats = pipeline.run_packets(generator.packets())
    for record in pipeline.measurements[: args.show]:
        print(record)
    if len(pipeline.measurements) > args.show:
        print(f"... and {len(pipeline.measurements) - args.show} more")
    slo_results = None
    if telemetry is not None:
        from repro.obs.slo import evaluate_slos

        slo_results = evaluate_slos(telemetry.registry)
    print("--- pipeline stats ---")
    for key, value in stats.summary(slo_results=slo_results).items():
        print(f"{key:>20}: {value}")
    print(f"{'queue balance':>20}: "
          + ", ".join(f"{share:.2%}" for share in pipeline.queue_balance()))
    _print_telemetry_summary(telemetry, pipeline.clock)
    if telemetry is not None:
        print(telemetry.registry.exposition(), end="")
    return 0


def cmd_demo(args) -> int:
    generator = _build_generator(args)
    telemetry = _make_telemetry(args)
    stack = build_live_stack(
        generator=generator,
        queues=args.queues,
        telemetry=telemetry,
        frontend_hwm=10_000,
    )
    service = stack.service
    _attach_exporter(telemetry, args, service.tsdb)
    channel = WebSocketChannel()
    map_view = LiveMapView(channel=channel)
    frontend_sub = stack.frontend

    pipeline = stack.pipeline
    stats = pipeline.run_packets(stack.packet_stream())
    service.finish()
    _print_telemetry_summary(telemetry, pipeline.clock)

    last_ns = 0
    for message in frontend_sub.recv_all():
        measurement = decode_enriched(message.payload[0])
        map_view.add_measurement(measurement, measurement.timestamp_ns)
        map_view.tick(measurement.timestamp_ns)
        last_ns = max(last_ns, measurement.timestamp_ns)
    map_view.flush_frame(last_ns)

    print(f"measurements: {stats.measurements}")
    print(f"enriched:     {service.enriched_count}")
    print(f"tsdb points:  {service.tsdb.total_points()}")
    print(f"map frames:   {map_view.frames_sent} "
          f"({channel.bytes_to_client} bytes over the WebSocket)")
    print(f"arc colours:  {map_view.color_histogram()}")
    print("--- dashboard (mean end-to-end latency by country pair) ---")
    dashboard = build_ruru_dashboard(interval_ns=int(args.duration * NS_PER_S))
    for panel in dashboard.render(service.tsdb):
        if panel.title.startswith("mean"):
            for label, value in sorted(panel.latest().items()):
                print(f"  {label}: {value:.1f} {panel.unit}")
    return 0


def cmd_detect(args) -> int:
    injectors = []
    if args.glitch:
        injectors.append(
            FirewallGlitchInjector(
                window_start_offset_ns=int(args.duration * NS_PER_S) // 2,
                window_ns=min(10 * NS_PER_S, int(args.duration * NS_PER_S) // 4),
            )
        )
    if args.flood:
        injectors.append(
            SynFloodInjector(
                flood_start_ns=int(args.duration * NS_PER_S) // 3,
                flood_duration_ns=5 * NS_PER_S,
            )
        )
    generator = _build_generator(args, injectors=injectors)
    telemetry = _make_telemetry(args)
    stack = build_live_stack(
        generator=generator,
        queues=args.queues,
        telemetry=telemetry,
        anomaly=True,
    )
    service = stack.service
    _attach_exporter(telemetry, args, service.tsdb)
    manager = stack.anomaly

    pipeline = stack.pipeline
    pipeline.run_packets(stack.packet_stream())
    service.finish()
    _print_telemetry_summary(telemetry, pipeline.clock)
    events = manager.finish(now_ns=int(args.duration * NS_PER_S))
    if not events:
        print("no anomalies detected")
        return 1
    for event in events:
        print(event)
    return 0


def cmd_export(args) -> int:
    generator = _build_generator(args)
    telemetry = _make_telemetry(args)
    stack = build_live_stack(
        generator=generator, queues=args.queues, telemetry=telemetry
    )
    service = stack.service
    # Self-monitoring series land in the same TSDB, so the line-protocol
    # export carries the pipeline's own health alongside the latencies.
    _attach_exporter(telemetry, args, service.tsdb)
    pipeline = stack.pipeline
    pipeline.run_packets(stack.packet_stream())
    service.finish()
    if telemetry is not None:
        telemetry.flush(pipeline.clock.now_ns)

    count = 0
    with open(args.output, "w", encoding="utf-8") as handle:
        for line in service.tsdb.dump_lines():
            handle.write(line + "\n")
            count += 1
    print(f"wrote {count} points to {args.output}")

    if args.grafana:
        from repro.frontend.grafana import export_grafana_json

        dashboard = build_ruru_dashboard(
            interval_ns=int(args.duration * NS_PER_S) // 10 or NS_PER_S
        )
        with open(args.grafana, "w", encoding="utf-8") as handle:
            handle.write(export_grafana_json(dashboard, indent=2))
        print(f"wrote Grafana dashboard model to {args.grafana}")
    if args.grafana_selfmon:
        from repro.frontend.grafana import build_selfmon_dashboard, export_grafana_json

        dashboard = build_selfmon_dashboard(
            interval_ns=max(1, int(args.telemetry_interval * NS_PER_S))
        )
        with open(args.grafana_selfmon, "w", encoding="utf-8") as handle:
            handle.write(
                export_grafana_json(dashboard, uid="ruru-selfmon", indent=2)
            )
        print(f"wrote self-monitoring Grafana dashboard to {args.grafana_selfmon}")
    return 0


def cmd_metrics(args) -> int:
    """Run the workload fully instrumented; print the exposition text."""
    from repro.obs.slo import DEFAULT_SLOS, evaluate_slos, slos_from_dict

    generator = _build_generator(args)
    telemetry = Telemetry()
    stack = build_live_stack(
        generator=generator, queues=args.queues, telemetry=telemetry
    )
    service = stack.service
    interval_ns = max(1, int(args.telemetry_interval * NS_PER_S))
    telemetry.export_to(service.tsdb, interval_ns=interval_ns)
    pipeline = stack.pipeline
    pipeline.run_packets(stack.packet_stream())
    service.finish()
    telemetry.flush(pipeline.clock.now_ns)
    print(telemetry.registry.exposition(), end="")
    slos = DEFAULT_SLOS
    if args.slo_config:
        import json

        with open(args.slo_config, "r", encoding="utf-8") as handle:
            slos = slos_from_dict(json.load(handle))
    results = evaluate_slos(telemetry.registry, slos)
    print("--- slo ---")
    for result in results:
        print(result.render())
    if args.slo_gate and any(not result.ok for result in results):
        return 1
    return 0


def cmd_prof(args) -> int:
    """Profile every stage of the live stack over a workload.

    The profiler hangs off the stage graph, so the table below covers
    exactly the stages the live preset assembles — adding a stage to
    the topology adds a row here, with no extra wiring.
    """
    from repro.obs.slo import evaluate_slos

    generator = _build_generator(args)
    telemetry = Telemetry()
    profiler = telemetry.enable_profiler(sample_every=args.sample)
    stack = build_live_stack(
        generator=generator,
        queues=args.queues,
        telemetry=telemetry,
        frontend_hwm=10_000,
    )
    pipeline = stack.pipeline
    batch = []
    for packet in stack.packet_stream():
        batch.append(packet)
        if len(batch) >= pipeline.feed_batch:
            stack.process_batch(batch)
            batch.clear()
    stack.process_batch(batch)
    stack.drain()
    print(profiler.render(top_calls=args.top))
    if stack.slo_results:
        print("--- slo ---")
        for result in stack.slo_results:
            print(result.render())
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(profiler.collapsed())
        print(f"wrote collapsed stacks to {args.collapsed} "
              f"(pipe into flamegraph.pl)")
    if args.json:
        import json

        from repro.obs.bench import collect_meta

        document = {
            "meta": collect_meta(
                seed=args.seed,
                config={"queues": args.queues, "rate": args.rate,
                        "duration_s": args.duration},
            ),
            "stage_profile": profiler.summary(),
            "batches": profiler.batches,
            "batches_sampled": profiler.batches_sampled,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote profile JSON to {args.json}")
    return 0


def cmd_perf(args) -> int:
    """Benchmark resultset archive tools (``ruru perf <compare|show>``)."""
    from repro.obs.bench import compare, load_resultset

    if args.perf_cmd == "show":
        resultset = load_resultset(args.file)
        meta = resultset.meta
        print(f"{resultset.name} @ {str(meta.get('git_rev', '?'))[:12]}")
        print(f"platform: {meta.get('platform', '?')}  "
              f"python {meta.get('python', '?')}  seed {meta.get('seed')}")
        for name in sorted(resultset.metrics):
            entry = resultset.metrics[name]
            unit = f" {entry['unit']}" if entry.get("unit") else ""
            print(f"  {name:<42} {entry['value']:,.3f}{unit}")
        return 0
    baseline = load_resultset(args.baseline)
    current = load_resultset(args.current)
    report = compare(baseline, current, threshold=args.threshold)
    print(report.render())
    return 0 if report.ok else 1


def _print_catalog(rows) -> None:
    """Aligned name/description columns, one optional detail line each.

    Shared by ``ruru chaos --list`` and ``ruru scenario list`` so the
    two catalogs read the same.
    """
    width = max((len(name) for name, _, _ in rows), default=0) + 2
    for name, description, detail in rows:
        print(f"{name:<{width}}{description}")
        if detail:
            print(f"{'':<{width}}[{detail}]")


def cmd_scenario(args) -> int:
    """The scenario harness (``ruru scenario <list|show|run|batch|compare>``)."""
    import json

    from repro.obs.bench import load_resultset
    from repro.scenarios import (
        GridSpec,
        baseline_path,
        compare_scenario,
        get_scenario,
        load_library,
        run_grid,
        run_scenario,
    )
    from repro.scenarios.spec import parse_override_args

    if args.scenario_cmd == "list":
        specs = load_library()
        rows = []
        for name in sorted(specs):
            spec = specs[name]
            details = [
                f"seed {spec.seed}",
                f"{spec.traffic.duration_s:g}s @ {spec.traffic.rate:g} flows/s",
            ]
            if spec.faults.active:
                details.append(f"faults: {spec.faults.profile}")
            if spec.anomalies:
                details.append(
                    "anomalies: " + ", ".join(w.kind for w in spec.anomalies)
                )
            rows.append((name, spec.description, "; ".join(details)))
        _print_catalog(rows)
        return 0

    if args.scenario_cmd == "show":
        spec = get_scenario(args.name)
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        path = baseline_path(spec.name)
        print(f"baseline: {path}"
              + ("" if os.path.exists(path) else " (missing)"))
        return 0

    if args.scenario_cmd == "run":
        spec = get_scenario(args.name)
        overrides = parse_override_args(args.set or [])
        result = run_scenario(
            spec,
            seed=args.seed,
            overrides=overrides,
            profile_stages=args.profile_stages,
        )
        print(result.render())
        if args.out:
            result.resultset.write(args.out)
            print(f"wrote resultset to {args.out}")
        return 0 if result.ok else 1

    if args.scenario_cmd == "batch":
        names = args.scenarios or sorted(load_library())
        variants = {"base": {}}
        for definition in args.variant or []:
            name, _, assignments = definition.partition(":")
            if not name or not assignments:
                raise SystemExit(
                    f"--variant wants NAME:key=value[,key=value], got {definition!r}"
                )
            variants[name] = parse_override_args(assignments.split(","))
        grid = GridSpec(
            scenarios=names,
            seeds=[int(seed) for seed in args.seeds.split(",")],
            variants=variants,
        )
        report = run_grid(
            grid,
            args.out,
            resume=not args.no_resume,
            max_cells=args.max_cells,
        )
        print(report.render())
        return 0 if report.ok else 1

    # compare: fresh runs against the committed baselines.
    names = args.names or sorted(load_library())
    regressed = []
    for name in names:
        spec = get_scenario(name)
        result = run_scenario(spec)
        path = baseline_path(spec.name, args.baseline_dir)
        if args.write:
            result.resultset.write(path)
            print(f"{name}: baseline written -> {path}")
            continue
        if not result.ok:
            print(f"--- {name}: FAILED correctness checks")
            for check in result.checks:
                if not check.ok:
                    print(f"  {check.render()}")
            regressed.append(name)
            continue
        baseline = load_resultset(path, lenient=True)
        report = compare_scenario(
            baseline, result.resultset, threshold=args.threshold
        )
        print(f"--- {name}: {'ok' if report.ok else 'REGRESSED'}")
        print(report.render())
        if not report.ok:
            regressed.append(name)
    if regressed:
        print("regressed scenarios: " + ", ".join(regressed))
        return 1
    return 0


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="lossy-mq",
        help="fault profile name (see --list)",
    )
    parser.add_argument("--seed", type=int, default=42, help="chaos run seed")
    parser.add_argument("--duration", type=float, default=8.0, help="seconds of traffic")
    parser.add_argument("--rate", type=float, default=40.0, help="mean flows per second")
    parser.add_argument("--queues", type=int, default=2, help="RSS receive queues")
    parser.add_argument(
        "--overload", action="store_true",
        help="enable closed-loop overload control (watermark sensing "
             "plus the priority shed ladder)",
    )


def _run_sharded(args, kill_shard=None, kill_at_batch=None, state_dir=None) -> int:
    """Run a workload through the process-sharded runtime (``--shards``)."""
    from repro.stack import build_sharded_runtime
    from repro.traffic.endpoints import EndpointPopulation
    from repro.traffic.generator import GeneratorConfig, TrafficGenerator

    config = GeneratorConfig(
        duration_ns=max(1, int(args.duration * NS_PER_S)),
        mean_flows_per_s=args.rate,
        seed=args.seed,
    )
    packets = TrafficGenerator(
        config=config, population=EndpointPopulation()
    ).packet_list()
    runtime = build_sharded_runtime(
        shards=args.shards,
        state_dir=state_dir,
        policy=args.shard_policy,
    )
    if kill_shard is not None:
        runtime.schedule_kill(
            kill_shard, at_seq=kill_at_batch if kill_at_batch else 6
        )
    try:
        report = runtime.run(packets)
    finally:
        runtime.close()
    print(
        f"sharded run: {args.shards} worker process(es), "
        f"{len(packets)} packets"
        + (f", SIGKILL shard {kill_shard}" if kill_shard is not None else "")
    )
    print(report.render())
    return 0 if report.ok else 1


def _add_shard_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=0,
        help="run through the process-sharded runtime with this many "
             "worker processes (0 = in-process, the default)",
    )
    parser.add_argument(
        "--shard-policy", default="protect-handshakes",
        choices=("protect-handshakes", "reroute-all"),
        help="down-shard traffic policy",
    )


def cmd_chaos(args) -> int:
    from repro.faults import PROFILES, ChaosHarness

    if args.list:
        _print_catalog([
            (
                name,
                profile.description,
                ", ".join(
                    f"{key}={value}"
                    for key, value in profile.active_faults().items()
                ),
            )
            for name, profile in PROFILES.items()
        ])
        return 0
    if args.shards:
        return _run_sharded(
            args,
            kill_shard=args.kill_shard,
            kill_at_batch=args.kill_at_batch,
        )
    from repro.durability.signals import GracefulShutdown

    harness = ChaosHarness(
        args.profile,
        seed=args.seed,
        duration_s=args.duration,
        rate=args.rate,
        queues=args.queues,
        overload=args.overload,
    )
    with GracefulShutdown() as stop:
        report = harness.run(shutdown_flag=stop.requested)
    if stop.requested():
        print(f"[{stop.signal_name}] interrupted — drained gracefully")
    print(report.render())
    if args.metrics:
        print("--- resilience metrics ---")
        wanted = (
            "ruru_retry_total",
            "ruru_breaker_state",
            "ruru_breaker_opened_total",
            "ruru_dlq_depth",
            "ruru_dlq_total",
            "ruru_supervisor_restarts_total",
            "ruru_faults_injected_total",
            "ruru_degraded_published_total",
        )
        for line in harness.telemetry.registry.exposition().splitlines():
            if any(line.startswith(name) or name in line for name in wanted):
                print(line)
    return 0 if report.ok else 1


def cmd_dlq(args) -> int:
    from repro.faults import ChaosHarness

    harness = ChaosHarness(
        args.profile,
        seed=args.seed,
        duration_s=args.duration,
        rate=args.rate,
        queues=args.queues,
        overload=args.overload,
    )
    report = harness.run()
    print(harness.resilience.dlq.format_table(limit=args.limit))
    return 0 if report.ok else 1


def _add_durability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--state-dir", default="ruru-state",
        help="directory for checkpoints and the TSDB write-ahead log",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=1.0,
        help="checkpoint cadence in (virtual) seconds",
    )
    parser.add_argument(
        "--keep-checkpoints", type=int, default=2,
        help="checkpoints retained (older ones are pruned)",
    )
    parser.add_argument(
        "--retention", type=float, default=None,
        help="TSDB retention window in seconds (default: unlimited)",
    )
    parser.add_argument(
        "--fsync-wal", action="store_true",
        help="fsync WAL appends and checkpoint writes "
             "(slower, strictest durability)",
    )


def _make_durable_runtime(args):
    from repro.durability.runtime import DurableRuntime

    return DurableRuntime(
        state_dir=args.state_dir,
        profile=args.profile,
        seed=args.seed,
        duration_s=args.duration,
        rate=args.rate,
        queues=args.queues,
        checkpoint_interval_ns=max(1, int(args.checkpoint_interval * NS_PER_S)),
        keep_checkpoints=args.keep_checkpoints,
        retention_ns=(
            None if args.retention is None else max(1, int(args.retention * NS_PER_S))
        ),
        fsync_wal=args.fsync_wal,
        overload=args.overload,
    )


def cmd_live(args) -> int:
    """Run the durable monitor; SIGINT/SIGTERM drain gracefully."""
    if args.shards:
        return _run_sharded(args, state_dir=args.state_dir)
    from repro.durability.signals import GracefulShutdown

    runtime = _make_durable_runtime(args)
    with GracefulShutdown() as stop:
        report = runtime.run(shutdown_flag=stop.requested)
    if stop.requested():
        print(f"[{stop.signal_name}] shutdown requested — drained gracefully")
    print(report.render())
    ckpt = runtime.checkpointer
    print(
        f"checkpoints: {ckpt.checkpoints_written} written "
        f"({ckpt.bytes_written} bytes) to {args.state_dir}; "
        f"wal: {runtime.wal.appends} appends "
        f"({runtime.tsdb.wal_bytes} bytes)"
    )
    return 0 if report.ok else 1


def cmd_recover(args) -> int:
    """Hot restart from a state directory, or run a recovery trial."""
    if args.trial:
        from repro.durability.harness import run_recovery_trial

        trial = run_recovery_trial(
            args.state_dir,
            args.trial,
            profile=args.profile,
            seed=args.seed,
            hit=args.hit,
            duration_s=args.duration,
            rate=args.rate,
            queues=args.queues,
            checkpoint_interval_ns=max(
                1, int(args.checkpoint_interval * NS_PER_S)
            ),
            retention_ns=(
                None
                if args.retention is None
                else max(1, int(args.retention * NS_PER_S))
            ),
        )
        print(trial.render())
        return 0 if trial.ok else 1

    from repro.durability.recovery import recover_runtime

    runtime = _make_durable_runtime(args)
    report = recover_runtime(runtime)
    print(report.render())
    if args.drain:
        drain = runtime.shutdown()
        print(drain.render())
        return 0 if (report.ok and drain.ok) else 1
    return 0 if report.ok else 1


def cmd_query(args) -> int:
    from repro.tsdb.database import TimeSeriesDatabase
    from repro.tsdb.ql import execute_statement

    db = TimeSeriesDatabase()
    with open(args.file, encoding="utf-8") as handle:
        loaded = db.load_lines(handle)
    result = execute_statement(db, args.query)
    if isinstance(result, list):  # SHOW statements return name lists
        for name in result:
            print(name)
        return 0 if result else 1
    if result.is_empty():
        print(f"(no rows; {loaded} points loaded)")
        return 1
    for key in result.group_keys():
        label = ", ".join(f"{tag}={value}" for tag, value in key) or "all"
        print(label)
        for window, value in result.groups[key]:
            print(f"  t={window / NS_PER_S:10.1f}s  {value:.3f}")
    return 0


def cmd_dump(args) -> int:
    from repro.net.dump import dump

    if args.pcap:
        with open_capture(args.pcap) as reader:
            for line in dump(reader, limit=args.count):
                print(line)
    else:
        generator = _build_generator(args)
        for line in dump(generator.packets(), limit=args.count):
            print(line)
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis.report import analyze_paths, compare_windows
    from repro.frontend.heatmap import LatencyBuckets, render_heatmap
    from repro.mq.codec import decode_enriched

    injectors = []
    if args.glitch:
        injectors.append(FirewallGlitchInjector(
            window_start_offset_ns=int(args.duration * NS_PER_S) * 2 // 3,
            window_ns=max(NS_PER_S, int(args.duration * NS_PER_S) // 8),
        ))
    generator = _build_generator(args, injectors=injectors)
    stack = build_live_stack(
        generator=generator, queues=args.queues, frontend_hwm=1 << 20
    )
    service = stack.service
    capture = stack.frontend
    pipeline = stack.pipeline
    pipeline.run_packets(stack.packet_stream())
    service.finish()
    measurements = [
        decode_enriched(message.payload[0]) for message in capture.recv_all()
    ]
    if not measurements:
        print("no measurements to analyze")
        return 1

    print(f"analyzed {len(measurements)} measurements\n")
    print("per-path mixture fits (top paths):")
    for path in analyze_paths(measurements, min_samples=25)[: args.top]:
        kind = "MULTIMODAL" if path.is_multimodal else "unimodal"
        print(f"  {path.pair[0]:>16} -> {path.pair[1]:<16} n={path.sample_count:<5}"
              f" median={path.median_ms:7.1f}ms [{kind}: {path.mode_summary()}]")

    half_ns = int(args.duration * NS_PER_S) // 2
    before = [m for m in measurements if m.timestamp_ns < half_ns]
    after = [m for m in measurements if m.timestamp_ns >= half_ns]
    drifts = compare_windows(before, after, min_samples=15)
    if drifts:
        print("\npopulation drift, first vs second half:")
        for drift in drifts[: args.top]:
            marker = "***" if drift.significant else "   "
            print(f"  {marker} {drift.pair[0]:>16} -> {drift.pair[1]:<16} "
                  f"KS={drift.ks:.2f} median {drift.before_median_ms:6.1f} -> "
                  f"{drift.after_median_ms:6.1f} ms")

    print("\nlatency heatmap:")
    heatmap = render_heatmap(
        service.tsdb,
        window_ns=max(NS_PER_S, int(args.duration * NS_PER_S) // 12),
        buckets=LatencyBuckets(minimum_ms=1, maximum_ms=10_000, count=10),
    )
    print(heatmap.ascii())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ruru",
        description="Ruru reproduction: passive flow-level latency measurement",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_generate = subparsers.add_parser("generate", help="write a synthetic workload pcap")
    _add_workload_args(p_generate)
    p_generate.add_argument("--output", default="ruru-trace.pcap")
    p_generate.add_argument(
        "--format", choices=["pcap", "pcapng"], default="pcap",
        help="capture file format",
    )
    p_generate.set_defaults(func=cmd_generate)

    p_measure = subparsers.add_parser("measure", help="measure latency over a trace")
    _add_workload_args(p_measure)
    p_measure.add_argument("--pcap", help="trace to replay (generates one if omitted)")
    p_measure.add_argument("--show", type=int, default=10, help="records to print")
    p_measure.set_defaults(func=cmd_measure)

    p_demo = subparsers.add_parser("demo", help="full pipeline with analytics + frontends")
    _add_workload_args(p_demo)
    p_demo.set_defaults(func=cmd_demo)

    p_detect = subparsers.add_parser("detect", help="run anomaly detection scenarios")
    _add_workload_args(p_detect)
    p_detect.add_argument("--glitch", action="store_true", help="inject a firewall glitch")
    p_detect.add_argument("--flood", action="store_true", help="inject a SYN flood")
    p_detect.set_defaults(func=cmd_detect)

    p_export = subparsers.add_parser(
        "export", help="run a workload and export the TSDB as line protocol"
    )
    _add_workload_args(p_export)
    p_export.add_argument("--output", default="ruru-measurements.lp")
    p_export.add_argument(
        "--grafana", help="also write the Grafana dashboard JSON here"
    )
    p_export.add_argument(
        "--grafana-selfmon",
        help="also write the self-monitoring Grafana dashboard JSON here",
    )
    p_export.set_defaults(func=cmd_export)

    p_metrics = subparsers.add_parser(
        "metrics",
        help="run a workload with telemetry and print the Prometheus exposition",
    )
    _add_workload_args(p_metrics)
    p_metrics.add_argument(
        "--slo-gate", action="store_true",
        help="exit non-zero when any SLO is violated",
    )
    p_metrics.add_argument(
        "--slo-config",
        help="JSON file of declarative SLOs (replaces the default set)",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_prof = subparsers.add_parser(
        "prof",
        help="per-stage profile of the live stack (wall/cpu/virtual, "
             "sampled call attribution, collapsed-stack export)",
    )
    _add_workload_args(p_prof)
    p_prof.add_argument(
        "--sample", type=int, default=16,
        help="attribute calls on every Nth feed batch (0 disables)",
    )
    p_prof.add_argument("--top", type=int, default=10,
                        help="hot call sites to print")
    p_prof.add_argument(
        "--collapsed",
        help="write flamegraph-compatible collapsed stacks to this file",
    )
    p_prof.add_argument("--json", help="write the profile summary JSON here")
    p_prof.set_defaults(func=cmd_prof)

    p_perf = subparsers.add_parser(
        "perf", help="benchmark resultset archive: compare or show runs"
    )
    perf_sub = p_perf.add_subparsers(dest="perf_cmd", required=True)
    p_compare = perf_sub.add_parser(
        "compare", help="diff two resultsets with noise-aware thresholds"
    )
    p_compare.add_argument("baseline", help="baseline resultset JSON")
    p_compare.add_argument("current", help="current resultset JSON")
    p_compare.add_argument(
        "--threshold", type=float, default=0.15,
        help="tolerated fractional change before a delta is real",
    )
    p_compare.set_defaults(func=cmd_perf)
    p_show = perf_sub.add_parser("show", help="print one resultset")
    p_show.add_argument("file", help="resultset JSON")
    p_show.set_defaults(func=cmd_perf)

    p_scenario = subparsers.add_parser(
        "scenario",
        help="declarative scenario harness: list/show/run/batch/compare",
    )
    scenario_sub = p_scenario.add_subparsers(dest="scenario_cmd", required=True)

    p_sc_list = scenario_sub.add_parser(
        "list", help="list the scenario library with descriptions"
    )
    p_sc_list.set_defaults(func=cmd_scenario)

    p_sc_show = scenario_sub.add_parser(
        "show", help="print one scenario spec as JSON"
    )
    p_sc_show.add_argument("name", help="library name or spec file path")
    p_sc_show.set_defaults(func=cmd_scenario)

    p_sc_run = scenario_sub.add_parser(
        "run", help="run one scenario through the stage-graph runtime"
    )
    p_sc_run.add_argument("name", help="library name or spec file path")
    p_sc_run.add_argument("--seed", type=int, help="override the spec's seed")
    p_sc_run.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="dotted-path spec override, e.g. traffic.rate=80 (repeatable)",
    )
    p_sc_run.add_argument(
        "--profile-stages", action="store_true",
        help="attach the stage profiler and archive its summary",
    )
    p_sc_run.add_argument("--out", help="write the resultset JSON here")
    p_sc_run.set_defaults(func=cmd_scenario)

    p_sc_batch = scenario_sub.add_parser(
        "batch", help="run a resumable (scenario x seed x override) grid"
    )
    p_sc_batch.add_argument(
        "scenarios", nargs="*",
        help="scenario names (default: the whole library)",
    )
    p_sc_batch.add_argument(
        "--seeds", default="7", help="comma-separated seed axis"
    )
    p_sc_batch.add_argument(
        "--variant", action="append", metavar="NAME:KEY=VALUE[,KEY=VALUE]",
        help="named override variant added to the base grid (repeatable)",
    )
    p_sc_batch.add_argument(
        "--out", default="ruru-grid", help="archive root directory"
    )
    p_sc_batch.add_argument(
        "--no-resume", action="store_true",
        help="re-run every cell even when its archive exists",
    )
    p_sc_batch.add_argument(
        "--max-cells", type=int,
        help="stop after this many executed cells (interruption testing)",
    )
    p_sc_batch.set_defaults(func=cmd_scenario)

    p_sc_compare = scenario_sub.add_parser(
        "compare",
        help="run scenarios fresh and gate against the committed baselines",
    )
    p_sc_compare.add_argument(
        "names", nargs="*",
        help="scenario names (default: the whole library)",
    )
    p_sc_compare.add_argument(
        "--baseline-dir",
        help="baseline directory (default: benchmarks/baselines/scenarios)",
    )
    p_sc_compare.add_argument(
        "--threshold", type=float, default=0.15,
        help="tolerated fractional change for non-exact metrics",
    )
    p_sc_compare.add_argument(
        "--write", action="store_true",
        help="write fresh baselines instead of comparing",
    )
    p_sc_compare.set_defaults(func=cmd_scenario)

    p_dump = subparsers.add_parser(
        "dump", help="print packets tcpdump-style"
    )
    _add_workload_args(p_dump)
    p_dump.add_argument("--pcap", help="capture to read (generates if omitted)")
    p_dump.add_argument("--count", type=int, default=20, help="lines to print")
    p_dump.set_defaults(func=cmd_dump)

    p_analyze = subparsers.add_parser(
        "analyze", help="mixture fits, drift and heatmap over a workload"
    )
    _add_workload_args(p_analyze)
    p_analyze.add_argument("--glitch", action="store_true",
                           help="inject a firewall glitch to analyze")
    p_analyze.add_argument("--top", type=int, default=8,
                           help="paths to show per section")
    p_analyze.set_defaults(func=cmd_analyze)

    p_chaos = subparsers.add_parser(
        "chaos",
        help="replay a workload under a fault profile and check invariants",
    )
    _add_chaos_args(p_chaos)
    _add_shard_args(p_chaos)
    p_chaos.add_argument(
        "--kill-shard", type=int, default=None, metavar="S",
        help="with --shards: SIGKILL this worker shard mid-run and "
             "check recovery + ledger conservation",
    )
    p_chaos.add_argument(
        "--kill-at-batch", type=int, default=None, metavar="N",
        help="batch sequence number at which the kill fires (default 6)",
    )
    p_chaos.add_argument(
        "--list", action="store_true", help="list fault profiles and exit"
    )
    p_chaos.add_argument(
        "--metrics", action="store_true",
        help="also print the resilience metric families",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_dlq = subparsers.add_parser(
        "dlq", help="inspect the dead-letter queue after a chaos run"
    )
    _add_chaos_args(p_dlq)
    p_dlq.add_argument("--limit", type=int, default=20, help="letters to show")
    p_dlq.set_defaults(func=cmd_dlq)

    p_live = subparsers.add_parser(
        "live",
        help="run the durable monitor with checkpoints, WAL and graceful drain",
    )
    _add_chaos_args(p_live)
    _add_shard_args(p_live)
    _add_durability_args(p_live)
    p_live.set_defaults(func=cmd_live, profile="clean")

    p_recover = subparsers.add_parser(
        "recover",
        help="hot-restart from a state directory (or run a recovery trial)",
    )
    _add_chaos_args(p_recover)
    _add_durability_args(p_recover)
    p_recover.add_argument(
        "--drain", action="store_true",
        help="after recovering, drain gracefully to a clean checkpoint",
    )
    p_recover.add_argument(
        "--trial", metavar="CRASH_POINT",
        help="instead: run a kill-anywhere trial crashing at this point",
    )
    p_recover.add_argument(
        "--hit", type=int, default=3,
        help="which pass over the crash point fires the trial's crash",
    )
    p_recover.set_defaults(func=cmd_recover, profile="clean")

    p_query = subparsers.add_parser(
        "query", help="run an InfluxQL-style query against an export"
    )
    p_query.add_argument("--file", required=True, help="line-protocol file")
    p_query.add_argument("query", help="e.g. \"SELECT mean(total_ms) FROM latency\"")
    p_query.set_defaults(func=cmd_query)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error. Detach
        # stdout so the interpreter's shutdown flush doesn't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
