"""E7: "multiple thousands of connections per second on a live 3D map
… with 30 fps".

The browser's GPU does the drawing; what the server side must sustain
is turning thousands of measurements/s into colour-coded arcs, framed
at no more than 30 fps, serialized onto a real WebSocket. The bench
sweeps the connection rate from 1k to 10k/s of virtual time and checks
the frame pacing and the per-frame arc budget hold.
"""

import pytest

from repro.analytics.enricher import EnrichedMeasurement
from repro.frontend.map_view import LiveMapView
from repro.frontend.websocket import WebSocketChannel

NS_PER_S = 1_000_000_000


def _measurements(rate_per_s, seconds=2):
    out = []
    for i in range(rate_per_s * seconds):
        t = i * NS_PER_S // rate_per_s
        total_ms = 120.0 + (i % 300)
        total_ns = int(total_ms * 1e6)
        out.append(EnrichedMeasurement(
            timestamp_ns=t, internal_ns=total_ns // 10,
            external_ns=total_ns - total_ns // 10,
            src_country="NZ", src_city="Auckland",
            src_lat=-36.85, src_lon=174.76, src_asn=1,
            dst_country="US", dst_city="Los Angeles",
            dst_lat=34.05, dst_lon=-118.24, dst_asn=2,
        ))
    return out


class TestArcThroughput:
    @pytest.mark.parametrize("rate", [1_000, 5_000, 10_000])
    def test_bench_connections_per_second(self, benchmark, rate):
        measurements = _measurements(rate)

        def run():
            channel = WebSocketChannel()
            view = LiveMapView(channel=channel, fps=30,
                               max_arcs_per_frame=1000)
            for measurement in measurements:
                view.add_measurement(measurement, measurement.timestamp_ns)
                view.tick(measurement.timestamp_ns)
            view.flush_frame(measurements[-1].timestamp_ns)
            return view, channel

        view, channel = benchmark(run)
        virtual_seconds = 2
        fps = view.frames_sent / virtual_seconds
        assert fps <= 31, "frame pacing must cap at 30 fps"
        processed = view.arcs_in / benchmark.stats["mean"]
        print(f"\nE7: {rate:,}/s virtual -> {processed:,.0f} arcs/s real, "
              f"{fps:.1f} fps, {channel.bytes_to_client / 1024:.0f} KiB feed, "
              f"{view.arcs_dropped} dropped by budget")

    def test_frame_budget_protects_renderer(self):
        """A burst beyond the per-frame budget must drop, not balloon."""
        view = LiveMapView(fps=30, max_arcs_per_frame=500)
        burst = _measurements(50_000, seconds=1)[:5_000]
        for measurement in burst:
            view.add_measurement(measurement, 0)  # all in one frame interval
        frame = view.flush_frame(0)
        assert len(frame.arcs) == 500
        assert view.arcs_dropped == 4_500
        print(f"\nE7: burst of 5000 arcs in one frame -> "
              f"{len(frame.arcs)} drawn, {view.arcs_dropped} shed")

    def test_bench_websocket_serialization(self, benchmark):
        """Raw feed serialization: frames/s through RFC 6455 encoding."""
        measurements = _measurements(2_000, seconds=1)
        view = LiveMapView(fps=30, max_arcs_per_frame=10_000)
        for measurement in measurements:
            view.add_measurement(measurement, measurement.timestamp_ns)
        frame = view.flush_frame(NS_PER_S)
        payload = frame.to_json()

        def run():
            channel = WebSocketChannel()
            for _ in range(30):
                channel.server_send_json(payload)
            return channel.bytes_to_client

        wire_bytes = benchmark(run)
        rate = 30 / benchmark.stats["mean"]
        print(f"\nE7: {rate:,.0f} full frames/s serialized "
              f"({wire_bytes / 30 / 1024:.0f} KiB per 2000-arc frame)")
