"""E4b: why "conventional measurement tools" missed the glitch.

The paper's intro names the tools — SNMP, NetFlow, PerfSonar — and §3
reports the 4000 ms firewall glitch "had not been noticed by
conventional measurement tools (e.g., SNMP polls)". This bench makes
each tool's blindness quantitative on the same scenario:

* **NetFlow**: flow records carry byte/packet counts, no latency; the
  glitch leaves aggregate octets unchanged (asserted < 2 % shift).
* **Active probing (PerfSonar-style)**: a 60 s nightly window is
  caught by a 15-minute prober with probability ≈ 60 s / 900 s ≈ 7 %.
* **Ruru**: measures every affected handshake (100 % of completed
  flows in the window carry the 4000 ms signal).
"""

import pytest

from repro.baselines.active_probe import detection_probability
from repro.baselines.netflow import NetflowExporter
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.net.parser import PacketParser
from repro.traffic.scenarios import AucklandLaScenario, FirewallGlitchInjector

NS_PER_S = 1_000_000_000
NS_PER_MIN = 60 * NS_PER_S


@pytest.fixture(scope="module")
def glitch_trace():
    glitch = FirewallGlitchInjector(
        window_start_offset_ns=20 * NS_PER_S, window_ns=20 * NS_PER_S
    )
    generator = AucklandLaScenario(
        duration_ns=60 * NS_PER_S, mean_flows_per_s=30, seed=88, diurnal=False
    ).build(injectors=[glitch], keep_specs=True)
    packets = generator.packet_list()
    return generator, glitch, packets


class TestToolComparison:
    def test_ruru_measures_every_affected_flow(self, glitch_trace):
        generator, glitch, packets = glitch_trace
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        pipeline.run_packets(packets)
        affected_measured = sum(
            1 for record in pipeline.measurements if record.total_ms > 3500
        )
        affected_completing = sum(
            1 for spec in generator.specs
            if spec.server_delay_ms > 3500 and spec.completes
            and not spec.rst_after_synack
        )
        assert affected_measured == affected_completing
        print(f"\nE4b: Ruru captured {affected_measured}/{affected_completing} "
              f"glitched handshakes, each with the full 4000 ms signal")

    def test_netflow_sees_nothing(self, glitch_trace):
        generator, _, packets = glitch_trace
        parser = PacketParser()

        def octets_for(injectors):
            g = AucklandLaScenario(
                duration_ns=60 * NS_PER_S, mean_flows_per_s=30, seed=88,
                diurnal=False,
            ).build(injectors=injectors)
            exporter = NetflowExporter()
            for packet in g.packets():
                exporter.on_packet(parser.parse(packet.data, packet.timestamp_ns))
            exporter.flush()
            return sum(
                cell["octets"]
                for cell in exporter.aggregate(interval_ns=5 * NS_PER_MIN).values()
            )

        clean = octets_for([])
        glitched = octets_for([FirewallGlitchInjector(
            window_start_offset_ns=20 * NS_PER_S, window_ns=20 * NS_PER_S
        )])
        shift = abs(glitched - clean) / clean
        print(f"\nE4b: NetFlow 5-min octet totals shift by {shift:.2%} "
              f"under the glitch (no latency field exists to shift)")
        assert shift < 0.02
        assert NetflowExporter().latency_visibility() is None

    @pytest.mark.parametrize("period_min,window_s", [
        (15, 60),   # PerfSonar-ish schedule vs the paper's window
        (5, 60),
        (1, 60),
    ])
    def test_active_probe_detection_probability(self, period_min, window_s):
        measured = detection_probability(
            period_ns=period_min * NS_PER_MIN,
            window_ns=window_s * NS_PER_S,
            trials=600,
            seed=9,
        )
        analytic = min(1.0, window_s / (period_min * 60))
        print(f"\nE4b: {period_min}-min prober catches a {window_s}s nightly "
              f"window with p={measured:.2f} (analytic {analytic:.2f})")
        assert measured == pytest.approx(analytic, abs=0.06)

    def test_bench_netflow_cost(self, benchmark, parsed_10s):
        def run():
            exporter = NetflowExporter()
            for packet in parsed_10s:
                exporter.on_packet(packet)
            return len(exporter.flush())

        records = benchmark(run)
        rate = len(parsed_10s) / benchmark.stats["mean"]
        print(f"\nE4b: NetFlow exporter {rate:,.0f} pkt/s "
              f"({records} records)")
