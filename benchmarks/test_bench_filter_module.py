"""E10: the extension point — "one could add a filter module to filter
measurements in the pipeline based on some criteria (e.g.,
geo-location)".

Two filter shapes are measured: a predicate inside the analytics
service, and a standalone Forwarder device spliced into the PUB/SUB
fabric (the modular form the paper describes). The bench reports the
throughput overhead each adds over the unfiltered pipeline.
"""

import pytest

from repro.analytics.service import AnalyticsService
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.geo.builder import GeoDbBuilder
from repro.mq.broker import Forwarder
from repro.mq.codec import decode_enriched
from repro.mq.frames import Message
from repro.mq.socket import Context


def _run_service(generator, packets, filters=None):
    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan).build()
    service = AnalyticsService(context, geo, asn, filters=filters)
    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=4), sink=service.make_sink()
    )
    stats = pipeline.run_packets(packets)
    service.finish()
    return stats, service


class TestInServiceFilter:
    def test_bench_no_filter(self, benchmark, workload_10s):
        generator, packets = workload_10s
        stats, _ = benchmark(_run_service, generator, packets)
        rate = stats.packets_offered / benchmark.stats["mean"]
        print(f"\nE10: baseline (no filter) {rate:,.0f} pkt/s")

    def test_bench_geo_filter(self, benchmark, workload_10s):
        generator, packets = workload_10s
        # Keep only outbound (NZ-initiated) measurements — the paper's
        # example of filtering "based on some criteria (e.g., geo-location)".
        keep_outbound = lambda m: m.src_country == "NZ"
        stats, service = benchmark(
            _run_service, generator, packets, [keep_outbound]
        )
        rate = stats.packets_offered / benchmark.stats["mean"]
        print(f"\nE10: with geo filter {rate:,.0f} pkt/s "
              f"({service.filtered_out} measurements filtered)")

    def test_filter_semantics(self, workload_10s):
        generator, packets = workload_10s
        only_outbound = lambda m: m.src_country == "NZ"
        _, service = _run_service(generator, packets, [only_outbound])
        assert service.tsdb.tag_values("latency", "src_country") == ["NZ"]
        assert service.filtered_out > 0


class TestForwarderModule:
    def test_bench_forwarder_throughput(self, benchmark, workload_10s):
        """The standalone module: SUB -> predicate -> PUB."""
        generator, packets = workload_10s
        stats, service = _run_service(generator, packets)
        # Capture the enriched feed once, replay through the forwarder.
        context = Context()
        upstream = context.sub(hwm=1 << 20)
        upstream.subscribe(b"")
        upstream.bind("inproc://module-in")
        feeder = context.pub()
        feeder.connect("inproc://module-in")
        downstream_sub = context.sub(hwm=1 << 20)
        downstream_sub.subscribe(b"")
        downstream_sub.bind("inproc://module-out")
        downstream_pub = context.pub()
        downstream_pub.connect("inproc://module-out")

        frontend = service.subscribe_frontend()  # empty; use tsdb count instead
        sample = Message.with_topic(b"enriched", b"\x01" + b"\x00" * 100)

        def keep_green(message: Message) -> bool:
            return len(message.payload[0]) > 50  # stand-in predicate

        forwarder = Forwarder(upstream, downstream_pub, message_filter=keep_green)
        batch = [sample] * 5000

        def run():
            for message in batch:
                feeder.send(message)
            moved = forwarder.poll(max_messages=len(batch))
            downstream_sub.recv_all()
            return moved

        moved = benchmark(run)
        assert moved == 5000
        rate = moved / benchmark.stats["mean"]
        print(f"\nE10: forwarder module {rate:,.0f} messages/s "
              f"(filter + re-publish per message)")
