"""Extension benches: the co-scheduled runtime, mixture fitting,
prefix-preserving pseudonymization, and the text query layer.

These cover the reproduction's beyond-the-poster features; they are
not paper experiments, but they quantify the cost of the pieces a
production deployment would bolt on.
"""

import math
import random

import pytest

from repro.analysis.mixture import fit_lognormal_mixture, select_components
from repro.analytics.pseudonymize import PrefixPreservingAnonymizer
from repro.runtime import RuruRuntime
from repro.tsdb.ql import parse_query

NS_PER_S = 1_000_000_000


class TestRuntimeBench:
    def test_bench_co_scheduled_deployment(self, benchmark, workload_10s):
        generator, packets = workload_10s

        def run():
            runtime = RuruRuntime.build(
                generator.plan, with_anomaly_detection=True
            )
            return runtime.run(packets)

        report = benchmark(run)
        assert report.measurements > 400
        rate = report.pipeline_stats.packets_offered / benchmark.stats["mean"]
        print(f"\nExtension: co-scheduled runtime (rx + analytics + map + "
              f"detectors) {rate:,.0f} pkt/s")


class TestMixtureBench:
    @pytest.fixture(scope="class")
    def samples(self):
        rng = random.Random(1)
        return (
            [rng.lognormvariate(math.log(140.0), 0.1) for _ in range(3000)]
            + [rng.lognormvariate(math.log(500.0), 0.1) for _ in range(1000)]
        )

    def test_bench_em_fit(self, benchmark, samples):
        fit = benchmark(fit_lognormal_mixture, samples, 2, 100, 1e-6, 0)
        assert fit.k == 2
        rate = len(samples) / benchmark.stats["mean"]
        print(f"\nExtension: EM mixture fit {rate:,.0f} samples/s "
              f"({fit.iterations} iterations)")

    def test_bench_model_selection(self, benchmark, samples):
        small = samples[::5]  # every 5th sample keeps both modes
        best = benchmark(select_components, small, 3)
        assert best.k == 2
        print(f"\nExtension: BIC selection over k=1..3 in "
              f"{benchmark.stats['mean'] * 1000:.0f} ms for {len(small)} samples")


class TestPseudonymizerBench:
    def test_bench_anonymization_throughput(self, benchmark):
        rng = random.Random(2)
        # Realistic traffic: many addresses from few subnets, so the
        # per-prefix PRF cache carries most of the load.
        subnets = [rng.getrandbits(24) << 8 for _ in range(64)]
        addresses = [
            subnets[rng.randrange(len(subnets))] | rng.getrandbits(8)
            for _ in range(10_000)
        ]
        anonymizer = PrefixPreservingAnonymizer(key=b"bench-key")

        def run():
            for address in addresses:
                anonymizer.anonymize(address)
            return anonymizer

        benchmark(run)
        rate = len(addresses) / benchmark.stats["mean"]
        print(f"\nExtension: prefix-preserving pseudonymization "
              f"{rate:,.0f} addresses/s (warm cache)")


class TestSketchBench:
    def test_bench_p2_quantile(self, benchmark):
        from repro.analytics.quantile import P2Quantile

        rng = random.Random(3)
        values = [rng.lognormvariate(math.log(150.0), 0.2) for _ in range(20_000)]

        def run():
            sketch = P2Quantile(0.99)
            for value in values:
                sketch.add(value)
            return sketch.value

        estimate = benchmark(run)
        assert estimate is not None
        rate = len(values) / benchmark.stats["mean"]
        print(f"\nExtension: P² p99 sketch {rate:,.0f} samples/s "
              f"(estimate {estimate:.1f} ms, zero samples stored)")

    def test_bench_space_saving(self, benchmark):
        from repro.analytics.topk import SpaceSaving

        rng = random.Random(4)
        keys = [rng.randrange(5000) for _ in range(30_000)]

        def run():
            tracker = SpaceSaving(capacity=256)
            for key in keys:
                tracker.add(key)
            return tracker.top(10)

        top = benchmark(run)
        assert len(top) == 10
        rate = len(keys) / benchmark.stats["mean"]
        print(f"\nExtension: Space-Saving top-K {rate:,.0f} updates/s "
              f"(256 counters over 5000 keys)")


class TestDriftBench:
    def test_bench_path_drift_detector(self, benchmark):
        from repro.analytics.enricher import EnrichedMeasurement
        from repro.anomaly.path_drift import PathDriftDetector

        rng = random.Random(5)

        def make(t_ns, total_ms):
            total_ns = int(total_ms * 1e6)
            return EnrichedMeasurement(
                timestamp_ns=t_ns, internal_ns=total_ns // 10,
                external_ns=total_ns - total_ns // 10,
                src_country="NZ", src_city="Auckland", src_lat=0, src_lon=0,
                src_asn=1, dst_country="US", dst_city="Los Angeles",
                dst_lat=0, dst_lon=0, dst_asn=2,
            )

        measurements = [
            make(i * NS_PER_S, rng.lognormvariate(math.log(150.0), 0.1))
            for i in range(5_000)
        ]

        def run():
            detector = PathDriftDetector(window_ns=300 * NS_PER_S)
            for measurement in measurements:
                detector.observe(measurement)
            return detector

        detector = benchmark(run)
        rate = len(measurements) / benchmark.stats["mean"]
        print(f"\nExtension: path-drift detector {rate:,.0f} measurements/s "
              f"({detector.windows_compared} window comparisons)")


class TestQlBench:
    QUERY = (
        "SELECT mean(total_ms) FROM latency "
        "WHERE src_country = 'NZ' AND time >= 0s AND time < 15m "
        "GROUP BY dst_country, time(10s) FILL(previous)"
    )

    def test_bench_parse(self, benchmark):
        query = benchmark(parse_query, self.QUERY)
        assert query.measurement == "latency"
        rate = 1 / benchmark.stats["mean"]
        print(f"\nExtension: QL parser {rate:,.0f} queries/s")
