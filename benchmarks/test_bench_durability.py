"""Durability overhead gate: checkpoints must stay near-free.

The checkpointer rides on the live monitoring path, so its cost is a
correctness property like telemetry's: this gate fails the build if a
run with 1 s periodic checkpoints regresses more than 10% against an
identical run whose periodic checkpointing is disabled (one clean
drain checkpoint only — the WAL and every other durability code path
stay on in both, so the measurement isolates the checkpoint cost).

Methodology mirrors the telemetry gate: strict alternation in one
process, CPU time via ``time.process_time``, and the smaller of the
median/median and min/min estimators so a one-sided noise spike cannot
fail the build.

The second test measures the recovery path itself — checkpoint size,
load+replay wall time — and prints the numbers EXPERIMENTS.md quotes.
"""

import gc
import shutil
import statistics
import tempfile
import time

from repro.durability.recovery import recover_runtime
from repro.durability.runtime import DurableRuntime
from repro.faults.crashpoints import CrashSchedule, SimulatedCrash

NS_PER_S = 1_000_000_000
PAIRS = 10
MAX_REGRESSION = 0.10
# A production-shaped configuration: retention bounds the store, so
# checkpoint size (and cost) is O(window), not O(run length).
RUN = dict(
    profile="clean", seed=42, duration_s=8.0, rate=40.0, queues=2,
    retention_ns=2 * NS_PER_S,
)

# Periodic checkpointing effectively off: only the final clean drain
# checkpoint is written, exactly once, in both configurations' drains.
NEVER_NS = 1 << 62


def _timed_run(state_dir, checkpoint_interval_ns):
    shutil.rmtree(state_dir, ignore_errors=True)
    runtime = DurableRuntime(
        state_dir, checkpoint_interval_ns=checkpoint_interval_ns, **RUN
    )
    gc.collect()
    gc.disable()
    started = time.process_time()
    report = runtime.run()
    elapsed = time.process_time() - started
    gc.enable()
    return elapsed, report, runtime


class TestCheckpointOverhead:
    def test_overhead_within_budget(self):
        workdir = tempfile.mkdtemp(prefix="ruru-bench-")
        try:
            # Warm both paths before timing.
            _timed_run(workdir + "/warm-on", NS_PER_S)
            _timed_run(workdir + "/warm-off", NEVER_NS)

            base_times, durable_times = [], []
            for index in range(PAIRS):
                base_times.append(
                    _timed_run(f"{workdir}/off-{index}", NEVER_NS)[0]
                )
                elapsed, report, runtime = _timed_run(
                    f"{workdir}/on-{index}", NS_PER_S
                )
                durable_times.append(elapsed)

            # The checkpointed run really checkpointed, and both ran
            # the full workload cleanly.
            assert runtime.checkpointer.checkpoints_written >= 8
            assert report.ok

            median_est = (
                statistics.median(durable_times) / statistics.median(base_times)
                - 1
            )
            min_est = min(durable_times) / min(base_times) - 1
            overhead = min(median_est, min_est)
            print(
                f"\ncheckpoint overhead: median-est {median_est:+.1%}, "
                f"min-est {min_est:+.1%} over {PAIRS} interleaved pairs "
                f"({runtime.checkpointer.checkpoints_written} checkpoints, "
                f"{runtime.checkpointer.bytes_written / 1024:.0f} KiB written)"
            )
            assert overhead <= MAX_REGRESSION, (
                f"checkpoint overhead {overhead:.1%} exceeds the "
                f"{MAX_REGRESSION:.0%} budget "
                f"(median-est {median_est:.1%}, min-est {min_est:.1%})"
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)


class TestRecoveryPath:
    def test_bench_recovery(self, benchmark):
        """Wall time of checkpoint load + WAL replay after a crash."""
        workdir = tempfile.mkdtemp(prefix="ruru-bench-")
        try:
            # Leave real crash debris behind: checkpoints plus a WAL
            # tail the checkpoint does not cover. (Killing the runtime
            # directly, with no post-crash drain, keeps the WAL dirty.)
            schedule = CrashSchedule()
            schedule.arm("tsdb.applied", hit=200)
            victim = DurableRuntime(
                workdir + "/state", crash_schedule=schedule, **RUN
            )
            try:
                victim.run()
            except SimulatedCrash:
                pass
            assert schedule.fired, "workload too small to reach the crash"
            del victim

            def recover_once():
                runtime = DurableRuntime(workdir + "/state", **RUN)
                return recover_runtime(runtime)

            report = benchmark(recover_once)
            assert not report.cold_start
            assert report.replayed_batches > 0
            size_kib = report.checkpoint.size_bytes / 1024
            print(
                f"\nrecovery: {benchmark.stats['mean'] * 1e3:.1f} ms mean "
                f"(checkpoint {size_kib:.0f} KiB, "
                f"{report.replayed_batches} WAL batches replayed, "
                f"{report.duplicates_skipped} duplicates skipped)"
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
