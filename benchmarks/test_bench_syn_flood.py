"""E5: real-time SYN-flood and connection-surge identification.

"Other types of anomalies (e.g., unusual number of TCP connections
between two locations or SYN floods) can also be identified in
real-time with simple Ruru modules." The bench injects both over
background traffic and reports detection latency, precision (no
events on clean traffic), and the detectors' per-packet cost.
"""

import pytest

from repro.analytics.service import AnalyticsService
from repro.anomaly.conn_count import ConnectionCountDetector
from repro.anomaly.syn_flood import SynFloodDetector
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.geo.builder import GeoDbBuilder
from repro.mq.socket import Context
from repro.traffic.scenarios import (
    AucklandLaScenario,
    ConnectionSurgeInjector,
    SynFloodInjector,
)

NS_PER_S = 1_000_000_000

FLOOD_START = 60 * NS_PER_S
SURGE_START = 120 * NS_PER_S


@pytest.fixture(scope="module")
def attack_run():
    flood = SynFloodInjector(
        flood_start_ns=FLOOD_START, flood_duration_ns=10 * NS_PER_S,
        rate_per_s=2000,
    )
    surge = ConnectionSurgeInjector(
        src_city="Wellington", dst_city="Los Angeles",
        surge_start_ns=SURGE_START, surge_duration_ns=40 * NS_PER_S,
        rate_per_s=30,
    )
    generator = AucklandLaScenario(
        duration_ns=180 * NS_PER_S, mean_flows_per_s=25, seed=77, diurnal=False
    ).build(injectors=[flood, surge])

    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan).build()
    service = AnalyticsService(context, geo, asn)
    flood_detector = SynFloodDetector(min_syn_rate=500)
    surge_detector = ConnectionCountDetector(
        window_ns=10 * NS_PER_S, min_count=100, warmup=4
    )
    service.filters.append(lambda m: (surge_detector.observe(m), True)[1])
    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=4),
        sink=service.make_sink(),
        observers=[flood_detector.on_packet],
    )
    stats = pipeline.run_packets(generator.packets())
    service.finish()
    flood_detector.finish(now_ns=180 * NS_PER_S)
    surge_detector.finish(now_ns=180 * NS_PER_S)
    return stats, flood_detector, surge_detector


class TestFloodDetection:
    def test_flood_detected_quickly(self, attack_run):
        _, flood_detector, _ = attack_run
        events = [e for e in flood_detector.events if e.kind == "syn-flood"]
        assert len(events) == 1
        latency_s = (events[0].start_ns - FLOOD_START) / NS_PER_S
        print(f"\nE5: flood flagged {latency_s:.1f}s after onset, "
              f"{events[0].description}")
        assert latency_s < 3.0  # "real-time": within a couple of windows
        assert events[0].evidence["syn_rate"] > 1000

    def test_surge_detected(self, attack_run):
        _, _, surge_detector = attack_run
        events = surge_detector.events
        assert events, "connection surge must be flagged"
        assert any("Wellington" in e.subject for e in events)
        first = min(events, key=lambda e: e.start_ns)
        latency_s = (first.start_ns - SURGE_START) / NS_PER_S
        print(f"\nE5: surge flagged {latency_s:.0f}s after onset "
              f"({first.description})")

    def test_no_false_positives_on_clean_traffic(self):
        generator = AucklandLaScenario(
            duration_ns=120 * NS_PER_S, mean_flows_per_s=25, seed=78,
            diurnal=False,
        ).build()
        context = Context()
        geo, asn = GeoDbBuilder(plan=generator.plan).build()
        service = AnalyticsService(context, geo, asn)
        flood_detector = SynFloodDetector(min_syn_rate=500)
        surge_detector = ConnectionCountDetector(
            window_ns=10 * NS_PER_S, min_count=100, warmup=4
        )
        service.filters.append(lambda m: (surge_detector.observe(m), True)[1])
        pipeline = RuruPipeline(
            config=PipelineConfig(num_queues=4), sink=service.make_sink(),
            observers=[flood_detector.on_packet],
        )
        pipeline.run_packets(generator.packets())
        service.finish()
        assert flood_detector.finish(now_ns=120 * NS_PER_S) == []
        assert surge_detector.finish(now_ns=120 * NS_PER_S) == []
        print("\nE5: clean run produced zero events (no false positives)")

    def test_bench_flood_detector_cost(self, benchmark, parsed_10s):
        def run():
            detector = SynFloodDetector()
            for packet in parsed_10s:
                detector.on_packet(packet)
            return detector

        detector = benchmark(run)
        rate = len(parsed_10s) / benchmark.stats["mean"]
        print(f"\nE5: flood detector {rate:,.0f} packets/s as an observer")
