"""E3: RSS scaling and queue balance ("for scalability and performance,
we configure symmetric RSS … multiple DPDK receiver queues").

On real hardware each queue is a core, so throughput scales with queue
count; the cooperative simulation cannot show wall-clock speedup, so
this bench reports what *does* transfer: per-queue load balance (RSS
spreads flows evenly), measurement completeness at every queue count,
and the ablation the symmetric key exists for — with the standard
asymmetric key, a flow's two directions land on different queues and
handshake matching collapses.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.dpdk.rss import DEFAULT_RSS_KEY, SYMMETRIC_RSS_KEY


class TestQueueScaling:
    @pytest.mark.parametrize("num_queues", [1, 2, 4, 8])
    def test_bench_queue_sweep(self, benchmark, workload_10s, num_queues):
        _, packets = workload_10s

        def run():
            pipeline = RuruPipeline(
                config=PipelineConfig(num_queues=num_queues)
            )
            stats = pipeline.run_packets(packets)
            return pipeline, stats

        pipeline, stats = benchmark(run)
        balance = pipeline.queue_balance()
        # RSS must spread flows roughly evenly across queues.
        assert len(balance) == num_queues
        expected = 1.0 / num_queues
        for share in balance:
            assert expected * 0.5 < share < expected * 1.8
        # Measurement results must not depend on the queue count.
        assert stats.measurements > 400
        rate = stats.packets_offered / benchmark.stats["mean"]
        shares = ", ".join(f"{share:.2f}" for share in balance)
        print(f"\nE3: queues={num_queues} -> {rate:,.0f} pkt/s, "
              f"balance [{shares}], measurements={stats.measurements}")


class TestSymmetryAblation:
    def test_asymmetric_key_breaks_measurement(self, workload_10s):
        """The design-choice ablation: without the symmetric key the
        per-queue tables stop seeing both flow directions."""
        _, packets = workload_10s

        def run_with(key):
            pipeline = RuruPipeline(
                config=PipelineConfig(num_queues=8, rss_key=key)
            )
            return pipeline.run_packets(packets)

        symmetric = run_with(SYMMETRIC_RSS_KEY)
        asymmetric = run_with(DEFAULT_RSS_KEY)
        loss = 1 - asymmetric.measurements / symmetric.measurements
        print(f"\nE3 ablation: symmetric={symmetric.measurements} vs "
              f"asymmetric={asymmetric.measurements} measurements "
              f"({loss:.0%} lost without key symmetry)")
        assert symmetric.measurements > 400
        # With 8 queues, ~7/8 of flows split across queues and are lost.
        assert asymmetric.measurements < 0.45 * symmetric.measurements
        # The orphan counters explain where they went.
        assert asymmetric.tracker.orphan_synack > 0
