"""E3: RSS scaling and queue balance ("for scalability and performance,
we configure symmetric RSS … multiple DPDK receiver queues").

On real hardware each queue is a core, so throughput scales with queue
count; the cooperative simulation cannot show wall-clock speedup, so
this bench reports what *does* transfer: per-queue load balance (RSS
spreads flows evenly), measurement completeness at every queue count,
and the ablation the symmetric key exists for — with the standard
asymmetric key, a flow's two directions land on different queues and
handshake matching collapses.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.dpdk.rss import DEFAULT_RSS_KEY, SYMMETRIC_RSS_KEY


class TestQueueScaling:
    @pytest.mark.parametrize("num_queues", [1, 2, 4, 8])
    def test_bench_queue_sweep(self, benchmark, workload_10s, num_queues):
        _, packets = workload_10s

        def run():
            pipeline = RuruPipeline(
                config=PipelineConfig(num_queues=num_queues)
            )
            stats = pipeline.run_packets(packets)
            return pipeline, stats

        pipeline, stats = benchmark(run)
        balance = pipeline.queue_balance()
        # RSS must spread flows roughly evenly across queues.
        assert len(balance) == num_queues
        expected = 1.0 / num_queues
        for share in balance:
            assert expected * 0.5 < share < expected * 1.8
        # Measurement results must not depend on the queue count.
        assert stats.measurements > 400
        rate = stats.packets_offered / benchmark.stats["mean"]
        shares = ", ".join(f"{share:.2f}" for share in balance)
        print(f"\nE3: queues={num_queues} -> {rate:,.0f} pkt/s, "
              f"balance [{shares}], measurements={stats.measurements}")


class TestSymmetryAblation:
    def test_asymmetric_key_breaks_measurement(self, workload_10s):
        """The design-choice ablation: without the symmetric key the
        per-queue tables stop seeing both flow directions."""
        _, packets = workload_10s

        def run_with(key):
            pipeline = RuruPipeline(
                config=PipelineConfig(num_queues=8, rss_key=key)
            )
            return pipeline.run_packets(packets)

        symmetric = run_with(SYMMETRIC_RSS_KEY)
        asymmetric = run_with(DEFAULT_RSS_KEY)
        loss = 1 - asymmetric.measurements / symmetric.measurements
        print(f"\nE3 ablation: symmetric={symmetric.measurements} vs "
              f"asymmetric={asymmetric.measurements} measurements "
              f"({loss:.0%} lost without key symmetry)")
        assert symmetric.measurements > 400
        # With 8 queues, ~7/8 of flows split across queues and are lost.
        assert asymmetric.measurements < 0.45 * symmetric.measurements
        # The orphan counters explain where they went.
        assert asymmetric.tracker.orphan_synack > 0


class TestProcessShardScaling:
    """The same RSS sweep with real OS processes (``repro.shard``).

    On multi-core hardware each worker shard is a core, so wall-clock
    throughput scales with shard count — the claim the in-process
    sweep above cannot test. On a single-core runner the speedup gate
    is skipped (fork + IPC overhead dominates there); what always
    holds, at every shard count, is measurement completeness and the
    conservation ledger.
    """

    def _run_once(self, packets, shards):
        import time as _time

        from repro.shard.runtime import ShardedRuntime

        runtime = ShardedRuntime(
            shards,
            PipelineConfig(num_queues=shards),
            batch_size=256,
        )
        started = _time.perf_counter()
        try:
            report = runtime.run(packets)
        finally:
            runtime.close()
        elapsed = _time.perf_counter() - started
        assert report.ok, report.failed_checks()
        return report, elapsed

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_bench_process_shard_sweep(
        self, benchmark, workload_10s, bench_record, shards
    ):
        _, packets = workload_10s

        def run():
            return self._run_once(packets, shards)

        report, _ = benchmark.pedantic(run, rounds=3, iterations=1)
        ledger = report.ledger
        assert ledger.ok and ledger.processed == len(packets)
        assert report.records["emitted"] > 400
        rate = len(packets) / benchmark.stats.stats.min
        bench_record(
            f"shard.pkts_per_s.{shards}",
            rate,
            unit="pkt/s",
            noise=0.35,
        )
        print(
            f"\nE3-proc: shards={shards} -> {rate:,.0f} pkt/s, "
            f"records={report.records['emitted']}, ledger balance "
            f"{ledger.balance:+d}"
        )

    def test_shard_count_does_not_change_measurements(self, workload_10s):
        """Completeness is topology-invariant: every shard count sees
        the same record multiset (symmetric RSS keeps flows whole)."""
        _, packets = workload_10s
        counts = {}
        for shards in (1, 4):
            report, _ = self._run_once(packets, shards)
            counts[shards] = report.records["emitted"]
        assert counts[1] == counts[4] > 400

    def test_bench_speedup_at_4_shards(self, workload_10s, bench_record):
        """Wall-clock scaling, gated on the cores to show it."""
        import os as _os

        _, packets = workload_10s
        best = {}
        for shards in (1, 4):
            best[shards] = min(
                self._run_once(packets, shards)[1] for _ in range(3)
            )
        speedup = best[1] / best[4]
        bench_record(
            "shard.speedup_4x",
            speedup,
            unit="x",
            noise=0.5,
            portable=True,
        )
        cores = _os.cpu_count() or 1
        print(
            f"\nE3-proc: 4-shard speedup {speedup:.2f}x "
            f"({cores} core(s) available)"
        )
        if cores >= 4:
            assert speedup > 1.5, (
                f"4 worker processes on {cores} cores should beat one "
                f"process by >1.5x, got {speedup:.2f}x"
            )
