"""E2 (Fig 2): the full pipeline, every stage wired.

Measures end-to-end throughput of the complete deployment — NIC + RSS
→ workers → ZeroMQ-style transport → enrichment → TSDB + frontend
PUB — and checks each tier received exactly what it should. This is
the software analogue of the paper's "analyzes all traffic going
through the NIC" at 10 Gbit/s; we report packets/s and measurements/s
for the Python substrate.
"""

from repro.analytics.service import AnalyticsService
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.geo.builder import GeoDbBuilder
from repro.mq.socket import Context
from repro.tsdb.query import Query


class TestFullPipeline:
    def test_bench_measurement_fast_path(self, benchmark, workload_10s, bench_record):
        """DPDK stage only: NIC -> RSS -> workers -> records."""
        _, packets = workload_10s

        def run():
            pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
            return pipeline.run_packets(packets)

        stats = benchmark(run)
        assert stats.nic_drops == 0
        rate = stats.packets_offered / benchmark.stats["mean"]
        bench_record(
            "pipeline.fast_path.packets_per_s", rate,
            unit="packets/s", higher_is_better=True, noise=0.25,
        )
        bench_record(
            "pipeline.fast_path.measurements_per_s",
            stats.measurements / benchmark.stats["mean"],
            unit="measurements/s", higher_is_better=True, noise=0.25,
        )
        print(f"\nE2: fast path {rate:,.0f} packets/s, "
              f"{stats.measurements / benchmark.stats['mean']:,.0f} measurements/s")

    def test_bench_whole_deployment(self, benchmark, workload_10s, bench_record):
        """Everything in Fig 2, including analytics and fan-out."""
        generator, packets = workload_10s

        def run():
            context = Context()
            geo, asn = GeoDbBuilder(plan=generator.plan).build()
            service = AnalyticsService(context, geo, asn)
            frontend = service.subscribe_frontend()
            pipeline = RuruPipeline(
                config=PipelineConfig(num_queues=4), sink=service.make_sink()
            )
            stats = pipeline.run_packets(packets)
            service.finish()
            return stats, service, frontend

        stats, service, frontend = benchmark(run)
        # Every tier saw every measurement.
        assert service.enriched_count == stats.measurements
        tsdb_count = service.tsdb.query(
            Query("latency", "total_ms", "count")
        ).scalar()
        assert tsdb_count == stats.measurements
        assert len(frontend) == stats.measurements
        rate = stats.packets_offered / benchmark.stats["mean"]
        bench_record(
            "pipeline.whole_deployment.packets_per_s", rate,
            unit="packets/s", higher_is_better=True, noise=0.25,
        )
        print(f"\nE2: whole deployment {rate:,.0f} packets/s end-to-end "
              f"({stats.measurements} measurements to TSDB + frontend)")
