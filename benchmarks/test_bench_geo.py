"""E6: geo/AS enrichment — the "98% country-level accuracy" claim.

Builds the synthetic IP2Location-shaped database with the accuracy
knob at 0.98, measures achieved country-level accuracy against the
address plan's ground truth, and benchmarks lookups/s for the range
index (geo), the LPM trie (AS), and the full enrichment of latency
records.
"""

import random

import pytest

from repro.analytics.enricher import Enricher
from repro.core.latency import LatencyRecord
from repro.geo.builder import GeoDbBuilder, SyntheticGeoPlan


@pytest.fixture(scope="module")
def plan():
    return SyntheticGeoPlan()


@pytest.fixture(scope="module")
def databases(plan):
    return GeoDbBuilder(plan=plan, country_accuracy=0.98, seed=4).build()


@pytest.fixture(scope="module")
def sample_hosts(plan):
    rng = random.Random(8)
    hosts = []
    for _ in range(20_000):
        index = rng.randrange(len(plan.cities))
        hosts.append((plan.random_host(index, rng), index))
    return hosts


class TestAccuracy:
    def test_country_accuracy_matches_paper(self, plan, databases, sample_hosts):
        geo, _ = databases
        correct = 0
        for host, index in sample_hosts:
            record = geo.lookup(host)
            if record and record.country_code == plan.cities[index].country_code:
                correct += 1
        accuracy = correct / len(sample_hosts)
        print(f"\nE6: measured country-level accuracy {accuracy:.1%} "
              f"(paper quotes 98% for IP2Location)")
        assert 0.955 <= accuracy <= 0.995

    def test_asn_accuracy_exact(self, plan, databases, sample_hosts):
        _, asn = databases
        for host, _ in sample_hosts[:2000]:
            record = asn.lookup(host)
            assert record is not None
            assert record.asn == plan.asn_of(host)


class TestLookupThroughput:
    def test_bench_geo_lookups(self, benchmark, databases, sample_hosts):
        geo, _ = databases
        addresses = [host for host, _ in sample_hosts]

        def run():
            hits = 0
            for address in addresses:
                if geo.lookup(address) is not None:
                    hits += 1
            return hits

        hits = benchmark(run)
        assert hits == len(addresses)
        rate = len(addresses) / benchmark.stats["mean"]
        print(f"\nE6: geo range index {rate:,.0f} lookups/s "
              f"({len(geo)} ranges)")

    def test_bench_asn_lookups(self, benchmark, databases, sample_hosts):
        _, asn = databases
        addresses = [host for host, _ in sample_hosts]

        def run():
            hits = 0
            for address in addresses:
                if asn.lookup(address) is not None:
                    hits += 1
            return hits

        hits = benchmark(run)
        assert hits == len(addresses)
        rate = len(addresses) / benchmark.stats["mean"]
        print(f"\nE6: AS LPM trie {rate:,.0f} lookups/s ({len(asn)} prefixes)")

    def test_bench_full_enrichment(self, benchmark, plan, databases):
        geo, asn = databases
        rng = random.Random(9)
        records = []
        for i in range(5_000):
            src = plan.random_host(rng.randrange(len(plan.cities)), rng)
            dst = plan.random_host(rng.randrange(len(plan.cities)), rng)
            records.append(LatencyRecord(
                src_ip=src, dst_ip=dst, src_port=1000 + i % 60000, dst_port=443,
                internal_ns=10_000_000, external_ns=140_000_000,
                syn_ns=0, synack_ns=140_000_000, ack_ns=150_000_000,
            ))

        def run():
            enricher = Enricher(geo, asn)
            for record in records:
                enricher.enrich(record)
            return enricher

        enricher = benchmark(run)
        assert enricher.stats.enriched == len(records)
        rate = len(records) / benchmark.stats["mean"]
        print(f"\nE6: full enrichment {rate:,.0f} records/s "
              f"(two geo + two AS lookups each)")
