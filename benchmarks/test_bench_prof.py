"""Stage profiler: archive the per-stage cost map, gate its overhead.

Two jobs here. First, run the full stage graph once under the
profiler and attach its summary to the session resultset — that is
where ``stage.<name>.ns_per_packet`` and the machine-portable
``stage.<name>.wall_share`` metrics in ``benchmarks/baselines/``
come from, and what ``ruru perf compare`` gates stage-level
regressions against. Second, hold the profiler to the same ≤10%
budget as the rest of the telemetry: always-on timing must never
cost what it measures.

Overhead methodology mirrors ``test_bench_telemetry``: strict
alternation, CPU time, and the smaller of the median/median and
min/min estimators so one noise spike cannot fail the gate.
"""

from __future__ import annotations

import gc
import statistics
import time

from repro.obs import Telemetry
from repro.stack.builder import build_live_stack
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_S = 1_000_000_000
PAIRS = 10
MAX_REGRESSION = 0.10


def _graph_run(packets, profiler_sample=0):
    """One full stage-graph pass; returns (cpu_seconds, stack)."""
    telemetry = Telemetry()
    if profiler_sample:
        telemetry.enable_profiler(sample_every=profiler_sample)
    generator = AucklandLaScenario(
        duration_ns=NS_PER_S, mean_flows_per_s=10, seed=7, diurnal=False
    ).build(keep_specs=True)
    stack = build_live_stack(
        generator=generator, telemetry=telemetry, frontend_hwm=1 << 20
    )
    feed = stack.pipeline.feed_batch
    gc.collect()
    gc.disable()
    started = time.process_time()
    batch = []
    for packet in packets:
        batch.append(packet)
        if len(batch) >= feed:
            stack.process_batch(batch)
            batch.clear()
    stack.process_batch(batch)
    stack.drain()
    elapsed = time.process_time() - started
    gc.enable()
    return elapsed, stack


class TestStageProfiler:
    def test_bench_profiled_stage_graph(self, workload_10s, bench_resultset):
        """Profile the whole deployment; archive the stage cost map."""
        _, packets = workload_10s
        elapsed, stack = _graph_run(packets, profiler_sample=16)
        profiler = stack.telemetry.profiler

        summary = profiler.summary()
        assert "workers" in summary, "worker stage missing from profile"
        assert all(entry["calls"] > 0 for entry in summary.values())

        bench_resultset.record_stage_profile(summary)
        total = sum(entry["items"] for entry in summary.values())
        bench_resultset.record(
            "prof.graph.packets_per_s",
            len(packets) / max(elapsed, 1e-9),
            unit="packets/s",
            higher_is_better=True,
            noise=0.25,
        )
        print(f"\nprof: {len(summary)} stages profiled, "
              f"{len(packets)} packets in {elapsed:.2f}s cpu "
              f"({total} stage-item observations)")

    def test_profiler_overhead_within_budget(self, workload_10s):
        """Profiled graph throughput within 10% of unprofiled."""
        _, packets = workload_10s
        # Warm both paths before timing.
        _graph_run(packets)
        _graph_run(packets, profiler_sample=16)

        base_times, profiled_times = [], []
        for _ in range(PAIRS):
            base_times.append(_graph_run(packets)[0])
            elapsed, stack = _graph_run(packets, profiler_sample=16)
            profiled_times.append(elapsed)

        # The profiled run actually profiled.
        profiler = stack.telemetry.profiler
        assert profiler.batches > 0
        assert profiler.total_wall_ns() > 0

        median_est = (
            statistics.median(profiled_times) / statistics.median(base_times) - 1
        )
        min_est = min(profiled_times) / min(base_times) - 1
        overhead = min(median_est, min_est)
        print(
            f"\nprofiler overhead: median-est {median_est:+.1%}, "
            f"min-est {min_est:+.1%} over {PAIRS} interleaved pairs"
        )
        assert overhead <= MAX_REGRESSION, (
            f"profiler overhead {overhead:.1%} exceeds the "
            f"{MAX_REGRESSION:.0%} budget "
            f"(median-est {median_est:.1%}, min-est {min_est:.1%})"
        )
