"""Design-choice ablations called out in DESIGN.md.

* Flow-table sizing under a SYN flood: eviction bounds memory while
  real flows keep being measured.
* Strict vs lenient sequence validation: the correctness/cost trade.
* Parse-path cost: the fast pre-parser vs full header decoding.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.net.ethernet import EthernetFrame
from repro.net.ipv4 import IPv4Header
from repro.net.parser import PacketParser
from repro.net.tcp import TcpHeader
from repro.traffic.scenarios import AucklandLaScenario, SynFloodInjector

NS_PER_S = 1_000_000_000


class TestFlowTableSizing:
    @pytest.mark.parametrize("table_size", [256, 1024, 1 << 16])
    def test_flood_resilience_by_table_size(self, table_size):
        flood = SynFloodInjector(
            flood_start_ns=0, flood_duration_ns=8 * NS_PER_S, rate_per_s=2500
        )
        generator = AucklandLaScenario(
            duration_ns=8 * NS_PER_S, mean_flows_per_s=25, seed=55,
            diurnal=False,
        ).build(injectors=[flood], keep_specs=True)
        config = PipelineConfig(num_queues=2, flow_table_size=table_size)
        pipeline = RuruPipeline(config=config)
        stats = pipeline.run_packets(generator.packets())
        real = [
            s for s in generator.specs
            if s.completes and not s.rst_after_synack
        ]
        survival = stats.measurements / len(real)
        evicted = sum(
            worker.tracker.table.evicted for worker in pipeline.workers
        )
        print(f"\nAblation: table={table_size} -> {survival:.0%} of real "
              f"flows measured under flood ({evicted} evictions)")
        for occupancy in pipeline.flow_table_occupancy():
            assert occupancy <= table_size
        # Even tiny tables keep most real measurements: handshakes
        # complete fast, so entries are short-lived.
        assert survival > 0.55
        if table_size >= 1024:
            assert survival > 0.9


class TestSequenceValidation:
    def test_bench_strict(self, benchmark, workload_10s):
        _, packets = workload_10s

        def run(strict):
            config = PipelineConfig(num_queues=2, strict_sequence_check=strict)
            pipeline = RuruPipeline(config=config)
            return pipeline.run_packets(packets)

        stats = benchmark(run, True)
        print(f"\nAblation: strict seq check -> {stats.measurements} "
              f"measurements, {stats.tracker.seq_mismatch} rejects")

    def test_bench_lenient(self, benchmark, workload_10s):
        _, packets = workload_10s

        def run():
            config = PipelineConfig(num_queues=2, strict_sequence_check=False)
            pipeline = RuruPipeline(config=config)
            return pipeline.run_packets(packets)

        stats = benchmark(run)
        print(f"\nAblation: lenient -> {stats.measurements} measurements")

    def test_same_results_on_clean_traffic(self, workload_10s):
        """On well-formed traffic the modes must agree exactly."""
        _, packets = workload_10s
        results = []
        for strict in (True, False):
            config = PipelineConfig(num_queues=2, strict_sequence_check=strict)
            pipeline = RuruPipeline(config=config)
            pipeline.run_packets(packets)
            results.append(sorted(r.total_ns for r in pipeline.measurements))
        assert results[0] == results[1]


class TestFlowSampling:
    @pytest.mark.parametrize("modulus", [1, 4, 16])
    def test_bench_sampling_sheds_load(self, benchmark, workload_10s, modulus):
        """The overload lever: 1/N flow sampling cuts tracker load
        proportionally while the latency sample stays unbiased."""
        _, packets = workload_10s

        def run():
            config = PipelineConfig(
                num_queues=4, flow_sample_modulus=modulus
            )
            pipeline = RuruPipeline(config=config)
            stats = pipeline.run_packets(packets)
            return pipeline, stats

        pipeline, stats = benchmark(run)
        skipped = sum(w.packets_sampled_out for w in pipeline.workers)
        rate = stats.packets_offered / benchmark.stats["mean"]
        print(f"\nAblation: sampling 1/{modulus} -> {rate:,.0f} pkt/s, "
              f"{stats.measurements} measurements, {skipped} packets "
              f"skipped before parse")
        if modulus == 1:
            assert skipped == 0
        else:
            assert skipped > 0


class TestMixedTraffic:
    def test_bench_noise_filter_path(self, benchmark, workload_10s):
        """'Analyzes all traffic going through the NIC': non-TCP load
        must be classified and dropped without hurting measurement."""
        from repro.traffic.noise import NoiseGenerator, merge_streams

        generator, tcp_packets = workload_10s
        noise = NoiseGenerator(
            plan=generator.plan, duration_ns=10 * NS_PER_S,
            udp_rate_per_s=200, icmp_rate_per_s=20, seed=21,
        )
        mixed = list(merge_streams(iter(tcp_packets), noise.packets()))

        def run():
            pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
            return pipeline.run_packets(mixed)

        stats = benchmark(run)
        noise_count = len(mixed) - len(tcp_packets)
        assert stats.parse_errors == noise_count
        assert stats.measurements > 400  # TCP measurement unaffected
        rate = len(mixed) / benchmark.stats["mean"]
        print(f"\nAblation: mixed traffic ({noise_count} non-TCP of "
              f"{len(mixed)}) -> {rate:,.0f} pkt/s, drops bucketed as "
              f"{dict(stats.parse_error_reasons)}")


class TestParsePath:
    def test_bench_fast_preparse(self, benchmark, workload_10s):
        _, packets = workload_10s
        parser = PacketParser()

        def run():
            count = 0
            for packet in packets:
                parser.parse(packet.data, packet.timestamp_ns)
                count += 1
            return count

        count = benchmark(run)
        rate = count / benchmark.stats["mean"]
        print(f"\nAblation: fast pre-parser {rate:,.0f} pkt/s")

    def test_bench_full_decode(self, benchmark, workload_10s):
        """What the paper's 'pre-parsing' avoids: full header objects."""
        _, packets = workload_10s

        def run():
            count = 0
            for packet in packets:
                frame = EthernetFrame.unpack(packet.data)
                ip = IPv4Header.unpack(frame.payload)
                TcpHeader.unpack(ip.payload)
                count += 1
            return count

        count = benchmark(run)
        rate = count / benchmark.stats["mean"]
        print(f"\nAblation: full decode {rate:,.0f} pkt/s "
              f"(the cost pre-parsing avoids)")
