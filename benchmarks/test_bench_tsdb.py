"""E8: the Grafana statistics — min/max/median/mean "for a required
time interval", indexed by geo-location and AS.

Populates the TSDB from a real pipeline run, then benchmarks ingest
rate, the four dashboard aggregations grouped by country pair, the tag
index's selectivity, and retention/downsampling cost.
"""

import pytest

from repro.analytics.service import AnalyticsService
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.frontend.dashboard import build_ruru_dashboard
from repro.geo.builder import GeoDbBuilder
from repro.mq.socket import Context
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.point import Point
from repro.tsdb.query import Query
from repro.tsdb.retention import Downsampler, RetentionPolicy

NS_PER_S = 1_000_000_000


@pytest.fixture(scope="module")
def populated_tsdb(workload_10s):
    generator, packets = workload_10s
    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan).build()
    service = AnalyticsService(context, geo, asn)
    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=4), sink=service.make_sink()
    )
    pipeline.run_packets(packets)
    service.finish()
    return service.tsdb


class TestIngest:
    def test_bench_write_throughput(self, benchmark):
        points = [
            Point("latency", i * 1_000_000,
                  tags={"src_country": "NZ", "dst_country": ["US", "AU", "JP"][i % 3]},
                  fields={"total_ms": 100.0 + i % 50})
            for i in range(20_000)
        ]

        def run():
            db = TimeSeriesDatabase()
            db.write_batch(points)
            return db

        db = benchmark(run)
        assert db.total_points() == 20_000
        rate = 20_000 / benchmark.stats["mean"]
        print(f"\nE8: ingest {rate:,.0f} points/s")


class TestDashboardQueries:
    @pytest.mark.parametrize("aggregator", ["min", "max", "median", "mean"])
    def test_bench_paper_statistics(self, benchmark, populated_tsdb, aggregator):
        """The exact stats the paper names, grouped by country pair."""
        query = Query(
            "latency", "total_ms", aggregator,
            group_by_tags=["src_country", "dst_country"],
            group_by_time_ns=NS_PER_S,
        )

        result = benchmark(populated_tsdb.query, query)
        assert not result.is_empty()
        nz_us = result.groups.get(
            (("dst_country", "US"), ("src_country", "NZ"))
        )
        assert nz_us, "the Auckland-LA pair must be present"
        print(f"\nE8: {aggregator}(total_ms) NZ->US latest window: "
              f"{nz_us[-1][1]:.1f} ms across {len(result.groups)} pairs")

    def test_bench_full_dashboard_render(self, benchmark, populated_tsdb):
        dashboard = build_ruru_dashboard(interval_ns=NS_PER_S)

        results = benchmark(dashboard.render, populated_tsdb)
        assert len(results) == len(dashboard.panels)
        rate = 1 / benchmark.stats["mean"]
        print(f"\nE8: full {len(results)}-panel dashboard renders {rate:,.1f}x/s")

    def test_tag_index_selectivity(self, populated_tsdb):
        """Filtered queries must touch only matching series."""
        everything = populated_tsdb.query(
            Query("latency", "total_ms", "count")
        ).scalar()
        one_pair = populated_tsdb.query(Query(
            "latency", "total_ms", "count",
            tag_filters={"src_country": ["NZ"], "dst_country": ["US"]},
        )).scalar()
        assert one_pair < everything
        print(f"\nE8: {everything:.0f} total points, {one_pair:.0f} in the "
              f"NZ->US slice via the tag index")


class TestLifecycle:
    def test_bench_downsample_and_retention(self, benchmark, populated_tsdb):
        def run():
            db = TimeSeriesDatabase()
            db.load_lines(populated_tsdb.dump_lines("latency"))
            db.add_downsampler(Downsampler(
                source="latency", target="latency_1s", field="total_ms",
                interval_ns=NS_PER_S,
            ))
            written = db.run_downsamplers(0, 15 * NS_PER_S)
            db.add_retention_policy(
                RetentionPolicy(duration_ns=5 * NS_PER_S, measurement="latency")
            )
            dropped = db.enforce_retention(now_ns=15 * NS_PER_S)
            return db, written, dropped

        db, written, dropped = benchmark(run)
        assert written > 0
        assert dropped > 0
        assert "latency_1s" in db.measurements()
        print(f"\nE8: rollup wrote {written} points, retention dropped "
              f"{dropped} raw points; rollups survive for long-term storage")
