"""Shared benchmark fixtures: canned workloads, reused across benches."""

from __future__ import annotations

import pytest

from repro.net.parser import PacketParser
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_S = 1_000_000_000


@pytest.fixture(scope="session")
def workload_10s():
    """~10 s of flat-rate Auckland–LA traffic (generator, packets)."""
    generator = AucklandLaScenario(
        duration_ns=10 * NS_PER_S, mean_flows_per_s=60, seed=17, diurnal=False
    ).build(keep_specs=True)
    return generator, generator.packet_list()


@pytest.fixture(scope="session")
def parsed_10s(workload_10s):
    """The same workload, pre-parsed (for stage-local benches)."""
    _, packets = workload_10s
    parser = PacketParser(extract_timestamps=True)
    return [parser.parse(p.data, p.timestamp_ns) for p in packets]
