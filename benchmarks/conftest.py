"""Shared benchmark fixtures: canned workloads + the resultset archive.

Every bench session emits one schema-versioned resultset JSON (see
:mod:`repro.obs.bench`), stamped with the git revision, platform and
workload seed that produced it — so a bench number is never just a
line in a scrollback buffer. Benches opt metrics in through the
``bench_record`` fixture; the session hook writes the document either
to ``$RURU_BENCH_OUT`` or to ``benchmarks/results/bench-<rev>.json``.

``ruru perf compare benchmarks/baselines/seed.json <that file>`` then
diffs the run against the committed baseline; CI does exactly that.
"""

from __future__ import annotations

import os

import pytest

from repro.net.parser import PacketParser
from repro.obs.bench import Resultset, collect_meta
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_S = 1_000_000_000

#: The canned workload's seed — stamped into every resultset so two
#: archives are only compared when they measured the same traffic.
WORKLOAD_SEED = 17

_resultset: Resultset = None


def pytest_configure(config):
    global _resultset
    _resultset = Resultset(
        "bench",
        meta=collect_meta(
            seed=WORKLOAD_SEED,
            config={
                "workload": "auckland-la",
                "duration_s": 10,
                "mean_flows_per_s": 60,
                "queues": 4,
            },
        ),
    )


def pytest_sessionfinish(session, exitstatus):
    if _resultset is None:
        return
    out = os.environ.get("RURU_BENCH_OUT")
    if not out:
        rev = str(_resultset.meta.get("git_rev", "unknown"))[:12]
        out = os.path.join(os.path.dirname(__file__), "results", f"bench-{rev}.json")
    path = _resultset.write(out)
    lines = [f"bench resultset archived: {path}"]
    if not _resultset.metrics:
        lines.append("  (no bench recorded a metric this session)")
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    for line in lines:
        if reporter is not None:
            reporter.write_line(line)
        else:  # pragma: no cover - no terminal plugin (e.g. xdist worker)
            print(line)


@pytest.fixture(scope="session")
def bench_resultset() -> Resultset:
    """The session's archive document (for stage-profile attachment)."""
    return _resultset


@pytest.fixture
def bench_record(bench_resultset):
    """``record(name, value, unit=..., higher_is_better=..., noise=...)``
    into the session resultset."""
    return bench_resultset.record


@pytest.fixture(scope="session")
def workload_10s():
    """~10 s of flat-rate Auckland–LA traffic (generator, packets)."""
    generator = AucklandLaScenario(
        duration_ns=10 * NS_PER_S,
        mean_flows_per_s=60,
        seed=WORKLOAD_SEED,
        diurnal=False,
    ).build(keep_specs=True)
    return generator, generator.packet_list()


@pytest.fixture(scope="session")
def parsed_10s(workload_10s):
    """The same workload, pre-parsed (for stage-local benches)."""
    _, packets = workload_10s
    parser = PacketParser(extract_timestamps=True)
    return [parser.parse(p.data, p.timestamp_ns) for p in packets]
