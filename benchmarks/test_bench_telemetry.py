"""Telemetry overhead smoke: instrumentation must stay near-free.

The observability subsystem rides on the packet fast path, so its cost
is a correctness property: the budget is ~5% on the E2 fast-path bench,
and this gate fails the build if a fully instrumented run (registry +
sampled stage tracing + 1 s self-monitoring exports) regresses
throughput by more than 10% against an uninstrumented run measured in
the same process.

Methodology: the two configurations alternate strictly, each sample
runs the workload twice (longer samples damp proportional noise), and
timing uses CPU time (``time.process_time``) so wall-clock waits do
not count. Machine noise on shared runners is heavy-tailed and
positive, so the gate takes the smaller of two robust estimators —
median/median and min/min across the sample pairs; a real regression
shifts both, while a noise spike on one side moves at most one.
"""

import gc
import statistics
import time

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.obs import Telemetry
from repro.tsdb.database import TimeSeriesDatabase

PAIRS = 12
REPEATS_PER_SAMPLE = 2
MAX_REGRESSION = 0.10


def _timed_run(packets, telemetry=None):
    pipeline = RuruPipeline(config=PipelineConfig(num_queues=4), telemetry=telemetry)
    gc.collect()
    gc.disable()
    started = time.process_time()
    for _ in range(REPEATS_PER_SAMPLE):
        stats = pipeline.run_packets(packets)
    elapsed = time.process_time() - started
    gc.enable()
    return elapsed, stats


def _instrumented_run(packets):
    telemetry = Telemetry()
    telemetry.export_to(TimeSeriesDatabase())
    elapsed, stats = _timed_run(packets, telemetry)
    return elapsed, stats, telemetry


class TestTelemetryOverhead:
    def test_overhead_within_budget(self, workload_10s):
        """Instrumented throughput within 10% of uninstrumented."""
        _, packets = workload_10s
        # Warm both paths before timing.
        _timed_run(packets)
        _instrumented_run(packets)

        base_times, instrumented_times = [], []
        for _ in range(PAIRS):
            base_times.append(_timed_run(packets)[0])
            elapsed, stats, telemetry = _instrumented_run(packets)
            instrumented_times.append(elapsed)

        # The instrumented run actually instrumented: spans recorded,
        # exports written, measurements produced.
        assert telemetry.tracer.spans_started > 0
        assert telemetry.exporter.exports >= 3
        assert stats.measurements > 0

        median_est = (
            statistics.median(instrumented_times) / statistics.median(base_times) - 1
        )
        min_est = min(instrumented_times) / min(base_times) - 1
        overhead = min(median_est, min_est)
        print(
            f"\ntelemetry overhead: median-est {median_est:+.1%}, "
            f"min-est {min_est:+.1%} over {PAIRS} interleaved pairs"
        )
        assert overhead <= MAX_REGRESSION, (
            f"telemetry overhead {overhead:.1%} exceeds the "
            f"{MAX_REGRESSION:.0%} budget "
            f"(median-est {median_est:.1%}, min-est {min_est:.1%})"
        )

    def test_bench_instrumented_fast_path(self, benchmark, workload_10s):
        """Throughput of the fast path with full telemetry attached."""
        _, packets = workload_10s

        def run():
            telemetry = Telemetry()
            telemetry.export_to(TimeSeriesDatabase())
            pipeline = RuruPipeline(
                config=PipelineConfig(num_queues=4), telemetry=telemetry
            )
            return pipeline.run_packets(packets), telemetry

        stats, telemetry = benchmark(run)
        assert stats.nic_drops == 0
        rate = stats.packets_offered / benchmark.stats["mean"]
        print(
            f"\ntelemetry: instrumented fast path {rate:,.0f} packets/s "
            f"({telemetry.tracer.spans_started} spans, "
            f"{telemetry.exporter.points_written} self-mon points)"
        )
