"""Overload-control overhead gate: sensing must stay near-free.

The overload controller rides the hot feed loop — every frame passes
``admit_frame`` and every batch ticks the watermark sensors — so its
idle cost is a correctness property: this gate fails the build if the
clean ``auckland-baseline`` scenario with overload control enabled
regresses more than 10% against the identical run without it. The
workload is deliberately un-overloaded: the ladder must never leave
``full``, so the measurement isolates pure sensing/triage overhead
(classification, counters, control-loop ticks) with zero shedding.

Methodology mirrors the checkpoint and telemetry gates: strict
alternation in one process, CPU time via ``time.process_time``, and
the smaller of the median/median and min/min estimators so a one-sided
noise spike cannot fail the build.
"""

import gc
import statistics
import time

from repro.scenarios import run_scenario
from repro.scenarios.library import get_scenario

PAIRS = 6
MAX_REGRESSION = 0.10

OVERLOAD_ON = {
    "overload.enabled": True,
    # Library defaults for the knobs; only `enabled` changes behaviour.
}


def _timed_run(spec, overrides=None):
    gc.collect()
    gc.disable()
    started = time.process_time()
    result = run_scenario(spec, overrides=overrides)
    elapsed = time.process_time() - started
    gc.enable()
    assert result.ok, result.render()
    return elapsed, result


class TestOverloadOverhead:
    def test_overhead_within_budget(self, bench_record):
        spec = get_scenario("auckland-baseline")

        # Warm both paths before timing.
        _timed_run(spec)
        _timed_run(spec, OVERLOAD_ON)

        base_times, overload_times = [], []
        result = None
        for _ in range(PAIRS):
            base_times.append(_timed_run(spec)[0])
            elapsed, result = _timed_run(spec, OVERLOAD_ON)
            overload_times.append(elapsed)

        # The controller really ran — and found nothing to shed on
        # clean traffic: the ladder never left `full`.
        assert result.metric("overload.level_max") == 0
        assert result.metric("overload.offered.handshake") > 0
        assert result.metric("overload.shed.payload") == 0
        assert result.metric("overload.shed.handshake") == 0

        median_est = (
            statistics.median(overload_times) / statistics.median(base_times)
            - 1
        )
        min_est = min(overload_times) / min(base_times) - 1
        overhead = min(median_est, min_est)
        bench_record(
            "overload.sensing_overhead_fraction", max(overhead, 0.0),
            unit="fraction", higher_is_better=False, noise=1.0,
        )
        print(
            f"\noverload sensing overhead: median-est {median_est:+.1%}, "
            f"min-est {min_est:+.1%} over {PAIRS} interleaved pairs "
            f"(clean workload, ladder stayed at "
            f"level {result.metric('overload.level'):.0f})"
        )
        assert overhead <= MAX_REGRESSION, (
            f"overload sensing overhead {overhead:.1%} exceeds the "
            f"{MAX_REGRESSION:.0%} budget "
            f"(median-est {median_est:.1%}, min-est {min_est:.1%})"
        )
