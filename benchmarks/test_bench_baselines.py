"""E9: Ruru's handshake method vs pping vs tcptrace on one trace.

The implicit comparison behind the paper (and the novelty band's
"passive RTT tools exist"): what does handshake-only measurement give
up, and what does it save? Identical parsed streams feed all three;
we report samples per flow, agreement with the generator's ground
truth, per-packet cost, and state held.
"""

import statistics

import pytest

from repro.baselines.pping import PpingEstimator
from repro.baselines.tcptrace import TcptraceAnalyzer
from repro.core.config import PipelineConfig
from repro.core.handshake import HandshakeTracker
from repro.core.pipeline import RuruPipeline

MS = 1_000_000


class TestMeasurementDensity:
    def test_samples_per_flow_shape(self, workload_10s, parsed_10s):
        """Ruru: exactly one sample per completed flow. pping: several."""
        generator, packets = workload_10s
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        stats = pipeline.run_packets(packets)

        pping = PpingEstimator()
        pping.run(parsed_10s)
        pping_flows = pping.samples_per_flow()

        tcptrace = TcptraceAnalyzer()
        tcptrace.run(parsed_10s)
        summary = tcptrace.summary()

        ruru_per_flow = stats.measurements / generator.flows_generated
        pping_per_flow = len(pping.samples) / max(1, len(pping_flows))
        print(f"\nE9: samples/flow — ruru {ruru_per_flow:.2f}, "
              f"pping {pping_per_flow:.2f}, tcptrace 1.00 (offline)")
        print(f"E9: totals — ruru {stats.measurements}, "
              f"pping {len(pping.samples)}, "
              f"tcptrace {summary['complete_handshakes']:.0f} of "
              f"{summary['flows']:.0f} flows")
        # Shape: pping is denser per covered flow; Ruru covers ~every flow once.
        assert pping_per_flow > 1.5
        assert 0.8 < ruru_per_flow <= 1.0
        # tcptrace reconstructs the same completed handshakes Ruru measures.
        assert abs(summary["complete_handshakes"] - stats.measurements) <= \
            stats.measurements * 0.05

    def test_accuracy_vs_ground_truth(self, workload_10s):
        generator, packets = workload_10s
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        pipeline.run_packets(packets)
        truth = {(s.client_ip, s.client_port): s for s in generator.specs}
        errors = []
        for record in pipeline.measurements:
            spec = truth.get((record.src_ip, record.src_port))
            if spec:
                errors.append(abs(record.total_ns - spec.expected_total_ns()))
        median_error_ms = statistics.median(errors) / MS
        print(f"\nE9: ruru median |error| vs ground truth: "
              f"{median_error_ms:.4f} ms over {len(errors)} flows")
        assert median_error_ms < 0.01


class TestPerPacketCost:
    def test_bench_ruru_tracker(self, benchmark, parsed_10s):
        def run():
            tracker = HandshakeTracker()
            for packet in parsed_10s:
                tracker.process(packet)
            return tracker.stats.measurements

        measured = benchmark(run)
        rate = len(parsed_10s) / benchmark.stats["mean"]
        print(f"\nE9: ruru tracker {rate:,.0f} pkt/s ({measured} samples)")

    def test_bench_pping(self, benchmark, parsed_10s):
        def run():
            estimator = PpingEstimator()
            for packet in parsed_10s:
                estimator.on_packet(packet)
            return len(estimator.samples)

        samples = benchmark(run)
        rate = len(parsed_10s) / benchmark.stats["mean"]
        print(f"\nE9: pping {rate:,.0f} pkt/s ({samples} samples)")

    def test_bench_tcptrace(self, benchmark, parsed_10s):
        def run():
            analyzer = TcptraceAnalyzer()
            for packet in parsed_10s:
                analyzer.on_packet(packet)
            return len(analyzer.flows)

        flows = benchmark(run)
        rate = len(parsed_10s) / benchmark.stats["mean"]
        print(f"\nE9: tcptrace {rate:,.0f} pkt/s ({flows} flows held)")


class TestStateFootprint:
    def test_state_held_shape(self, workload_10s, parsed_10s):
        """Ruru's state is transient (in-flight handshakes only);
        tcptrace's grows with every flow ever seen."""
        generator, packets = workload_10s
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        pipeline.run_packets(packets)
        ruru_state = sum(pipeline.flow_table_occupancy())

        tcptrace = TcptraceAnalyzer()
        tcptrace.run(parsed_10s)
        tcptrace_state = len(tcptrace.flows)

        pping = PpingEstimator()
        pping.run(parsed_10s)
        pping_state = len(pping._first_seen)

        print(f"\nE9: resident state after the trace — ruru {ruru_state} "
              f"entries, pping {pping_state}, tcptrace {tcptrace_state}")
        assert ruru_state < 0.1 * tcptrace_state
        assert tcptrace_state == generator.flows_generated
