"""E4: the nightly firewall glitch — Ruru sees what SNMP missed.

Reproduces §3's headline finding: a firewall update adds ~4000 ms to
every connection opened in a short nightly window. The bench runs a
15-minute night segment with the 60 s glitch injected, then contrasts:

* the SNMP-era view — 5-minute mean latency — which barely moves
  (the affected flows are diluted ~5:1 and the night is quiet), and
* Ruru's view — per-10 s p99 of individual flow measurements — where
  the window is unmistakable, plus the streaming spike detector which
  raises a CRITICAL event inside the window.
"""

import pytest

from repro.analytics.service import AnalyticsService
from repro.anomaly.latency_spike import LatencySpikeDetector
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.geo.builder import GeoDbBuilder
from repro.mq.socket import Context
from repro.tsdb.query import Query
from repro.traffic.scenarios import AucklandLaScenario, FirewallGlitchInjector

NS_PER_S = 1_000_000_000
NS_PER_MIN = 60 * NS_PER_S

START_NS = (2 * 3600 + 55 * 60) * NS_PER_S  # 02:55
GLITCH_OFFSET = 3 * 3600 * NS_PER_S         # 03:00
DURATION_NS = 15 * NS_PER_MIN


@pytest.fixture(scope="module")
def glitch_run():
    glitch = FirewallGlitchInjector(
        window_start_offset_ns=GLITCH_OFFSET, window_ns=60 * NS_PER_S,
        extra_delay_ms=4000.0,
    )
    generator = AucklandLaScenario(
        duration_ns=DURATION_NS, start_ns=START_NS,
        mean_flows_per_s=40, seed=99, diurnal=True,
    ).build(injectors=[glitch])

    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan).build()
    service = AnalyticsService(context, geo, asn)
    detector = LatencySpikeDetector()
    service.filters.append(lambda m: (detector.observe(m), True)[1])
    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=4), sink=service.make_sink()
    )
    pipeline.run_packets(generator.packets())
    service.finish()
    detector.finish()
    return glitch, service, detector


class TestFirewallGlitch:
    def test_glitch_injected(self, glitch_run):
        glitch, _, _ = glitch_run
        assert glitch.affected_flows > 10

    def test_snmp_view_dilutes_glitch(self, glitch_run):
        """5-minute means move, but stay far under the 4000 ms truth."""
        _, service, _ = glitch_run
        result = service.tsdb.query(Query(
            "latency", "total_ms", "mean",
            start_ns=START_NS, end_ns=START_NS + DURATION_NS,
            group_by_time_ns=5 * NS_PER_MIN,
        ))
        rows = result.groups[()]
        means = [value for _, value in rows]
        print("\nE4: 5-minute means (SNMP-era view):",
              [f"{m:.0f}ms" for m in means])
        # The glitch window's 5-min bucket is diluted: nowhere near 4000.
        assert max(means) < 2000

    def test_ruru_view_exposes_window(self, glitch_run):
        """Per-10s p99 hits ~4000 ms exactly in the glitch window."""
        _, service, _ = glitch_run
        result = service.tsdb.query(Query(
            "latency", "total_ms", "p99",
            start_ns=START_NS, end_ns=START_NS + DURATION_NS,
            group_by_time_ns=10 * NS_PER_S,
        ))
        rows = result.groups[()]
        in_window = [
            value for window, value in rows
            if GLITCH_OFFSET <= window < GLITCH_OFFSET + 60 * NS_PER_S
        ]
        outside = [
            value for window, value in rows
            if window >= GLITCH_OFFSET + 2 * 60 * NS_PER_S
            or window < GLITCH_OFFSET - 60 * NS_PER_S
        ]
        print(f"\nE4: p99 in glitch window {max(in_window):.0f} ms vs "
              f"outside {max(outside):.0f} ms")
        assert max(in_window) > 4000
        assert max(outside) < 2500

    def test_detector_flags_window(self, glitch_run):
        _, _, detector = glitch_run
        assert detector.events, "spike detector must fire"
        # The glitch event: peak near 4000 ms. (Background RTO spikes
        # can open an event slightly before the window and absorb it.)
        glitch_events = [
            e for e in detector.events
            if e.evidence.get("peak_ms", e.evidence["observed_ms"]) > 3500
        ]
        assert glitch_events, "an event must capture the 4000 ms glitch"
        event = min(glitch_events, key=lambda e: e.start_ns)
        window_end = GLITCH_OFFSET + 60 * NS_PER_S
        # The event span must overlap the injected window.
        assert event.start_ns < window_end + 30 * NS_PER_S
        assert (event.end_ns or event.start_ns) >= GLITCH_OFFSET
        offset_s = (event.start_ns - GLITCH_OFFSET) / NS_PER_S
        print(f"\nE4: detector event spanning the window "
              f"(start t{offset_s:+.1f}s relative to window): "
              f"{event.description}")

    def test_bench_detection_cost(self, benchmark, glitch_run):
        """Streaming detector cost per measurement."""
        from repro.analytics.enricher import EnrichedMeasurement

        def make(t_ns, total_ms):
            total_ns = int(total_ms * 1e6)
            return EnrichedMeasurement(
                timestamp_ns=t_ns, internal_ns=total_ns // 10,
                external_ns=total_ns - total_ns // 10,
                src_country="NZ", src_city="Auckland", src_lat=0, src_lon=0,
                src_asn=1, dst_country="US", dst_city="Los Angeles",
                dst_lat=0, dst_lon=0, dst_asn=2,
            )

        measurements = [
            make(i * NS_PER_S, 150.0 + (i % 17)) for i in range(2000)
        ]

        def run():
            detector = LatencySpikeDetector()
            for measurement in measurements:
                detector.observe(measurement)
            return detector

        detector = benchmark(run)
        rate = len(measurements) / benchmark.stats["mean"]
        print(f"\nE4: spike detector {rate:,.0f} measurements/s")
