"""E1 (Fig 1): the latency calculation — correctness sweep + tracker cost.

Regenerates the paper's Figure 1 numerically: for handshakes with
controlled internal/external splits, the tracker must recover both
components exactly. The benchmark then measures the handshake
tracker's per-packet cost on a realistic mixed stream — the heart of
the "high-speed" claim, scaled to Python.
"""

import pytest

from repro.core.handshake import HandshakeTracker
from repro.net.parser import ParsedPacket

MS = 1_000_000


def _handshake(flow_id, t0, external_ns, internal_ns):
    src, dst = 0x0A000000 + flow_id, 0x14000000 + flow_id
    sport, dport = 1024 + (flow_id % 60000), 443
    return [
        ParsedPacket(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                     flags=0x02, seq=100, ack=0, payload_len=0, timestamp_ns=t0),
        ParsedPacket(src_ip=dst, dst_ip=src, src_port=dport, dst_port=sport,
                     flags=0x12, seq=500, ack=101, payload_len=0,
                     timestamp_ns=t0 + external_ns),
        ParsedPacket(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                     flags=0x10, seq=101, ack=501, payload_len=0,
                     timestamp_ns=t0 + external_ns + internal_ns),
    ]


class TestFigure1Sweep:
    """The latency-split table Fig 1 implies (printed for EXPERIMENTS.md)."""

    SPLITS = [
        (1 * MS, 1 * MS),
        (10 * MS, 5 * MS),
        (140 * MS, 10 * MS),    # the Auckland-LA shape
        (280 * MS, 40 * MS),
        (4000 * MS, 12 * MS),   # the firewall glitch magnitude
    ]

    def test_sweep_exact_recovery(self):
        print("\nE1: internal/external recovery (expected == measured)")
        print(f"{'external ms':>12} {'internal ms':>12} {'ok':>4}")
        for external_ns, internal_ns in self.SPLITS:
            tracker = HandshakeTracker()
            record = None
            for packet in _handshake(1, 0, external_ns, internal_ns):
                record = tracker.process(packet) or record
            assert record.external_ns == external_ns
            assert record.internal_ns == internal_ns
            assert record.total_ns == external_ns + internal_ns
            print(f"{external_ns / MS:>12.1f} {internal_ns / MS:>12.1f} {'yes':>4}")


class TestTrackerThroughput:
    def test_bench_tracker_packets_per_second(self, benchmark, parsed_10s):
        """Per-packet cost of the handshake state machine alone."""

        def run():
            tracker = HandshakeTracker()
            for packet in parsed_10s:
                tracker.process(packet)
            return tracker

        tracker = benchmark(run)
        assert tracker.stats.measurements > 400
        rate = len(parsed_10s) / benchmark.stats["mean"]
        print(f"\nE1: tracker throughput {rate:,.0f} packets/s "
              f"({tracker.stats.measurements} measurements from "
              f"{len(parsed_10s)} packets)")

    def test_bench_handshake_only_stream(self, benchmark):
        """Pure-handshake stream: 3 packets per measurement."""
        packets = []
        for flow_id in range(2000):
            packets.extend(_handshake(flow_id, flow_id * MS, 140 * MS, 10 * MS))

        def run():
            tracker = HandshakeTracker()
            for packet in packets:
                tracker.process(packet)
            return tracker.stats.measurements

        measured = benchmark(run)
        assert measured == 2000
        rate = measured / benchmark.stats["mean"]
        print(f"\nE1: {rate:,.0f} handshakes measured/s")
