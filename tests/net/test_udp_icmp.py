"""UDP and ICMP wire-format tests."""

import pytest

from repro.net.checksum import internet_checksum
from repro.net.icmp import (
    TYPE_ECHO_REPLY,
    TYPE_ECHO_REQUEST,
    TYPE_TIME_EXCEEDED,
    IcmpMessage,
)
from repro.net.udp import UdpHeader


class TestUdpHeader:
    def test_roundtrip(self):
        header = UdpHeader(src_port=53211, dst_port=53, payload=b"dns-query")
        parsed = UdpHeader.unpack(header.pack())
        assert parsed.src_port == 53211
        assert parsed.dst_port == 53
        assert parsed.payload == b"dns-query"

    def test_length_field_written(self):
        raw = UdpHeader(payload=b"x" * 10).pack()
        assert int.from_bytes(raw[4:6], "big") == 18

    def test_padding_not_leaked(self):
        raw = UdpHeader(payload=b"real").pack() + b"\x00" * 6
        assert UdpHeader.unpack(raw).payload == b"real"

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            UdpHeader.unpack(b"\x00" * 4)

    def test_bad_length_rejected(self):
        raw = bytearray(UdpHeader().pack())
        raw[4:6] = (4).to_bytes(2, "big")
        with pytest.raises(ValueError):
            UdpHeader.unpack(bytes(raw))


class TestIcmpMessage:
    def test_echo_roundtrip(self):
        message = IcmpMessage.echo(identifier=0x1234, sequence=7, payload=b"ping")
        parsed = IcmpMessage.unpack(message.pack())
        assert parsed.icmp_type == TYPE_ECHO_REQUEST
        assert parsed.identifier == 0x1234
        assert parsed.sequence == 7
        assert parsed.payload == b"ping"

    def test_echo_reply_type(self):
        message = IcmpMessage.echo(1, 1, reply=True)
        assert IcmpMessage.unpack(message.pack()).icmp_type == TYPE_ECHO_REPLY

    def test_checksum_valid(self):
        raw = IcmpMessage.echo(9, 9, payload=b"abc").pack()
        assert internet_checksum(raw) == 0

    def test_other_types_preserved(self):
        message = IcmpMessage(icmp_type=TYPE_TIME_EXCEEDED, code=0,
                              payload=b"\x45" + b"\x00" * 27)
        parsed = IcmpMessage.unpack(message.pack())
        assert parsed.icmp_type == TYPE_TIME_EXCEEDED
        assert len(parsed.payload) == 28

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            IcmpMessage.unpack(b"\x08\x00")
