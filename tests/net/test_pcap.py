"""pcap reader/writer tests."""

import io
import struct

import pytest

from repro.net.packet import Packet, build_tcp_packet
from repro.net.pcap import (
    MAGIC_MICROS,
    MAGIC_NANOS,
    PcapError,
    PcapReader,
    PcapWriter,
)
from repro.net.tcp import TCP_FLAG_SYN


def _sample_packets(count=5):
    return [
        build_tcp_packet(i + 1, i + 2, 1000 + i, 443, TCP_FLAG_SYN,
                         timestamp_ns=i * 1_000_000_123)
        for i in range(count)
    ]


class TestRoundtrip:
    def test_nanosecond_roundtrip(self, tmp_path):
        path = tmp_path / "ns.pcap"
        packets = _sample_packets()
        with PcapWriter(path, nanosecond=True) as writer:
            for packet in packets:
                writer.write(packet)
        with PcapReader(path) as reader:
            assert reader.nanosecond
            read_back = list(reader)
        assert [p.data for p in read_back] == [p.data for p in packets]
        assert [p.timestamp_ns for p in read_back] == [p.timestamp_ns for p in packets]

    def test_microsecond_loses_sub_us(self, tmp_path):
        path = tmp_path / "us.pcap"
        with PcapWriter(path, nanosecond=False) as writer:
            writer.write(Packet(data=b"abc", timestamp_ns=1_000_000_999))
        with PcapReader(path) as reader:
            packet = next(iter(reader))
        # Nanoseconds below the microsecond are truncated.
        assert packet.timestamp_ns == 1_000_000_000

    def test_file_object_io(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for packet in _sample_packets(3):
            writer.write(packet)
        buffer.seek(0)
        assert len(list(PcapReader(buffer))) == 3

    def test_snaplen_truncates(self, tmp_path):
        path = tmp_path / "snap.pcap"
        with PcapWriter(path, snaplen=20) as writer:
            writer.write(Packet(data=b"z" * 100, timestamp_ns=0))
        with PcapReader(path) as reader:
            assert len(next(iter(reader)).data) == 20


class TestByteOrder:
    def test_big_endian_read(self):
        # Hand-build a big-endian microsecond pcap.
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", MAGIC_MICROS, 2, 4, 0, 0, 65535, 1))
        data = b"\x01\x02\x03"
        buffer.write(struct.pack(">IIII", 10, 500, len(data), len(data)))
        buffer.write(data)
        buffer.seek(0)
        reader = PcapReader(buffer)
        packet = next(iter(reader))
        assert packet.timestamp_ns == 10 * 1_000_000_000 + 500_000
        assert packet.data == data


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xde\xad\xbe\xef" + b"\x00" * 20))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1\x02"))

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(Packet(data=b"full-packet", timestamp_ns=0))
        truncated = io.BytesIO(buffer.getvalue()[:-4])
        reader = PcapReader(truncated)
        with pytest.raises(PcapError):
            list(reader)

    def test_eof_returns_none(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.seek(0)
        assert PcapReader(buffer).read_packet() is None
