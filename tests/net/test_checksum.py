"""Checksum tests against hand-computed and RFC examples."""

import struct

from repro.net.addresses import ip_to_int
from repro.net.checksum import internet_checksum, tcp_checksum_ipv4, tcp_checksum_ipv6


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # The classic example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padded(self):
        # Odd-length input is padded with a zero byte.
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    def test_verification_property(self):
        # A message with its checksum appended must checksum to zero.
        data = b"\x45\x00\x00\x28\xab\xcd\x00\x00\x40\x06"
        checksum = internet_checksum(data)
        full = data + struct.pack("!H", checksum)
        assert internet_checksum(full) == 0

    def test_carry_folding(self):
        # Many 0xffff words force repeated carry folds.
        assert internet_checksum(b"\xff\xff" * 1000) == 0


class TestTcpChecksum:
    def test_ipv4_pseudo_header_changes_result(self):
        segment = b"\x00" * 20
        a = tcp_checksum_ipv4(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), segment)
        b = tcp_checksum_ipv4(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.3"), segment)
        assert a != b

    def test_ipv6_checksummed_segment_verifies(self):
        src = 0x20010DB8000000000000000000000001
        dst = 0x20010DB8000000000000000000000002
        segment = bytearray(b"\x30\x39\x01\xbb" + b"\x00" * 16 + b"v6-data")
        checksum = tcp_checksum_ipv6(src, dst, bytes(segment))
        segment[16:18] = checksum.to_bytes(2, "big")
        pseudo = (
            src.to_bytes(16, "big")
            + dst.to_bytes(16, "big")
            + struct.pack("!IBBBB", len(segment), 0, 0, 0, 6)
        )
        assert internet_checksum(pseudo + bytes(segment)) == 0

    def test_checksummed_segment_verifies(self):
        src, dst = ip_to_int("1.1.1.1"), ip_to_int("2.2.2.2")
        segment = bytearray(b"\x30\x39\x01\xbb" + b"\x00" * 16 + b"hello")
        checksum = tcp_checksum_ipv4(src, dst, bytes(segment))
        segment[16:18] = checksum.to_bytes(2, "big")
        pseudo = struct.pack("!IIBBH", src, dst, 0, 6, len(segment))
        assert internet_checksum(pseudo + bytes(segment)) == 0
