"""TCP header and option tests."""

import pytest

from repro.net.tcp import (
    OPT_MSS,
    OPT_NOP,
    OPT_TIMESTAMP,
    OPT_WSCALE,
    TCP_FLAG_ACK,
    TCP_FLAG_FIN,
    TCP_FLAG_RST,
    TCP_FLAG_SYN,
    TcpHeader,
    TcpOption,
)


class TestFlags:
    def test_syn_classification(self):
        assert TcpHeader(flags=TCP_FLAG_SYN).is_syn
        assert not TcpHeader(flags=TCP_FLAG_SYN | TCP_FLAG_ACK).is_syn

    def test_synack_classification(self):
        assert TcpHeader(flags=TCP_FLAG_SYN | TCP_FLAG_ACK).is_synack
        assert not TcpHeader(flags=TCP_FLAG_ACK).is_synack

    def test_ack_classification(self):
        assert TcpHeader(flags=TCP_FLAG_ACK).is_ack
        assert not TcpHeader(flags=TCP_FLAG_SYN | TCP_FLAG_ACK).is_ack

    def test_rst_fin(self):
        assert TcpHeader(flags=TCP_FLAG_RST).is_rst
        assert TcpHeader(flags=TCP_FLAG_FIN | TCP_FLAG_ACK).is_fin

    def test_flag_names(self):
        header = TcpHeader(flags=TCP_FLAG_SYN | TCP_FLAG_ACK)
        assert header.flag_names() == "SYN|ACK"
        assert TcpHeader(flags=0).flag_names() == "none"


class TestRoundtrip:
    def test_basic_roundtrip(self):
        header = TcpHeader(
            src_port=40000,
            dst_port=443,
            seq=0xDEADBEEF,
            ack=0x12345678,
            flags=TCP_FLAG_ACK,
            window=29200,
            payload=b"GET / HTTP/1.1",
        )
        parsed = TcpHeader.unpack(header.pack())
        assert parsed.src_port == 40000
        assert parsed.dst_port == 443
        assert parsed.seq == 0xDEADBEEF
        assert parsed.ack == 0x12345678
        assert parsed.window == 29200
        assert parsed.payload == b"GET / HTTP/1.1"

    def test_options_roundtrip(self):
        header = TcpHeader(
            flags=TCP_FLAG_SYN,
            options=[
                TcpOption.mss(1460),
                TcpOption(OPT_NOP),
                TcpOption.window_scale(7),
                TcpOption.timestamp(111111, 0),
            ],
        )
        parsed = TcpHeader.unpack(header.pack())
        assert parsed.find_option(OPT_MSS).data == (1460).to_bytes(2, "big")
        assert parsed.find_option(OPT_WSCALE).data == bytes([7])
        assert parsed.timestamp_option() == (111111, 0)

    def test_header_len_includes_padded_options(self):
        header = TcpHeader(options=[TcpOption.mss(1460)])  # 4 bytes, aligned
        assert header.header_len == 24
        header = TcpHeader(options=[TcpOption.window_scale(7)])  # 3 -> pads to 4
        assert header.header_len == 24

    def test_seq_wraps_to_32_bits(self):
        parsed = TcpHeader.unpack(TcpHeader(seq=(1 << 32) + 5).pack())
        assert parsed.seq == 5


class TestOptionParsing:
    def test_timestamp_builder_and_reader(self):
        option = TcpOption.timestamp(123, 456)
        assert option.as_timestamp() == (123, 456)
        assert TcpOption(OPT_TIMESTAMP, b"short").as_timestamp() is None
        assert TcpOption(OPT_MSS, b"\x00" * 8).as_timestamp() is None

    def test_malformed_option_length_stops_parse(self):
        # kind=8, claimed length 30 but only 4 bytes remain.
        raw = TcpHeader().pack()
        doctored = bytearray(raw)
        doctored[12] = (8 << 4)  # data offset 32 bytes
        doctored += b"\x08\x1e\x00\x00" + b"\x00" * 8
        parsed = TcpHeader.unpack(bytes(doctored))
        assert parsed.timestamp_option() is None

    def test_options_too_long_rejected(self):
        with pytest.raises(ValueError):
            TcpHeader(options=[TcpOption.timestamp(1, 2)] * 5).pack()

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            TcpHeader.unpack(b"\x00" * 10)

    def test_bad_data_offset_rejected(self):
        raw = bytearray(TcpHeader().pack())
        raw[12] = (3 << 4)  # offset 12 bytes < minimum 20
        with pytest.raises(ValueError):
            TcpHeader.unpack(bytes(raw))
