"""IPv4 header tests."""

import pytest

from repro.net.addresses import ip_to_int
from repro.net.checksum import internet_checksum
from repro.net.ipv4 import IPv4Header, PROTO_TCP, PROTO_UDP


class TestIPv4Header:
    def test_roundtrip(self):
        header = IPv4Header(
            src=ip_to_int("10.1.2.3"),
            dst=ip_to_int("172.16.0.9"),
            protocol=PROTO_TCP,
            ttl=55,
            identification=0x1234,
            payload=b"segment-bytes",
        )
        parsed = IPv4Header.unpack(header.pack())
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.protocol == PROTO_TCP
        assert parsed.ttl == 55
        assert parsed.identification == 0x1234
        assert parsed.payload == b"segment-bytes"

    def test_packed_checksum_verifies(self):
        raw = IPv4Header(src=1, dst=2, payload=b"abc").pack()
        header_len = (raw[0] & 0xF) * 4
        assert internet_checksum(raw[:header_len]) == 0

    def test_total_length_field(self):
        raw = IPv4Header(payload=b"x" * 100).pack()
        parsed = IPv4Header.unpack(raw)
        assert parsed.total_length == 120
        assert len(parsed.payload) == 100

    def test_payload_sliced_to_total_length(self):
        # Ethernet padding after the datagram must not leak into payload.
        raw = IPv4Header(payload=b"real").pack() + b"\x00" * 20
        parsed = IPv4Header.unpack(raw)
        assert parsed.payload == b"real"

    def test_options_padded_and_roundtripped(self):
        header = IPv4Header(options=b"\x94\x04\x00", payload=b"p")
        parsed = IPv4Header.unpack(header.pack())
        assert parsed.options[:3] == b"\x94\x04\x00"
        assert parsed.header_len == 24

    def test_fragment_flags(self):
        header = IPv4Header(more_fragments=True, fragment_offset=185, payload=b"")
        parsed = IPv4Header.unpack(header.pack())
        assert parsed.more_fragments
        assert parsed.fragment_offset == 185
        assert parsed.is_fragment

    def test_dscp_ecn(self):
        parsed = IPv4Header.unpack(IPv4Header(dscp=46, ecn=1).pack())
        assert parsed.dscp == 46
        assert parsed.ecn == 1

    def test_rejects_non_v4(self):
        raw = bytearray(IPv4Header().pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))

    def test_rejects_truncated(self):
        with pytest.raises(ValueError):
            IPv4Header.unpack(b"\x45\x00")

    def test_rejects_bad_ihl(self):
        raw = bytearray(IPv4Header().pack())
        raw[0] = (4 << 4) | 3  # IHL below minimum
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))

    def test_udp_protocol_preserved(self):
        parsed = IPv4Header.unpack(IPv4Header(protocol=PROTO_UDP).pack())
        assert parsed.protocol == PROTO_UDP
