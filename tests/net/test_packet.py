"""Whole-packet builder tests."""

from repro.net.addresses import ip_to_int, ipv6_to_int
from repro.net.checksum import internet_checksum
from repro.net.ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetFrame
from repro.net.ipv4 import IPv4Header
from repro.net.ipv6 import IPv6Header
from repro.net.packet import Packet, build_tcp_packet
from repro.net.tcp import TCP_FLAG_SYN, TcpHeader, TcpOption

import struct


class TestPacket:
    def test_timestamp_conversions(self):
        packet = Packet(data=b"x", timestamp_ns=1_500_000_000)
        assert packet.timestamp_s == 1.5
        assert len(packet) == 1


class TestBuildTcpPacket:
    def test_ipv4_structure(self):
        packet = build_tcp_packet(
            ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), 1234, 443,
            TCP_FLAG_SYN, seq=77, timestamp_ns=42,
        )
        frame = EthernetFrame.unpack(packet.data)
        assert frame.ethertype == ETHERTYPE_IPV4
        ip = IPv4Header.unpack(frame.payload)
        assert ip.src == ip_to_int("10.0.0.1")
        tcp = TcpHeader.unpack(ip.payload)
        assert tcp.src_port == 1234
        assert tcp.dst_port == 443
        assert tcp.seq == 77
        assert tcp.is_syn
        assert packet.timestamp_ns == 42

    def test_ipv6_structure(self):
        src = ipv6_to_int("2001:db8::1")
        dst = ipv6_to_int("2001:db8::2")
        packet = build_tcp_packet(src, dst, 1, 2, TCP_FLAG_SYN, ipv6=True)
        frame = EthernetFrame.unpack(packet.data)
        assert frame.ethertype == ETHERTYPE_IPV6
        ip = IPv6Header.unpack(frame.payload)
        assert ip.src == src
        assert ip.next_header == 6

    def test_tcp_checksum_is_valid(self):
        src, dst = ip_to_int("1.1.1.1"), ip_to_int("2.2.2.2")
        packet = build_tcp_packet(src, dst, 10, 20, TCP_FLAG_SYN, payload=b"data")
        ip = IPv4Header.unpack(EthernetFrame.unpack(packet.data).payload)
        pseudo = struct.pack("!IIBBH", src, dst, 0, 6, len(ip.payload))
        assert internet_checksum(pseudo + ip.payload) == 0

    def test_vlan_tagging(self):
        packet = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_SYN, vlan_id=100)
        frame = EthernetFrame.unpack(packet.data)
        assert frame.vlan_id == 100
        assert frame.ethertype == ETHERTYPE_IPV4

    def test_options_carried(self):
        packet = build_tcp_packet(
            1, 2, 3, 4, TCP_FLAG_SYN, options=[TcpOption.timestamp(9, 8)]
        )
        ip = IPv4Header.unpack(EthernetFrame.unpack(packet.data).payload)
        tcp = TcpHeader.unpack(ip.payload)
        assert tcp.timestamp_option() == (9, 8)
