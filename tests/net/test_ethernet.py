"""Ethernet framing tests."""

import pytest

from repro.net.addresses import mac_to_bytes
from repro.net.ethernet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ETHERTYPE_VLAN,
    EthernetFrame,
)


class TestEthernetFrame:
    def test_untagged_roundtrip(self):
        frame = EthernetFrame(
            dst_mac=mac_to_bytes("aa:bb:cc:dd:ee:ff"),
            src_mac=mac_to_bytes("11:22:33:44:55:66"),
            ethertype=ETHERTYPE_IPV4,
            payload=b"payload",
        )
        parsed = EthernetFrame.unpack(frame.pack())
        assert parsed == frame
        assert parsed.vlan_id is None
        assert parsed.header_len == 14

    def test_vlan_roundtrip(self):
        frame = EthernetFrame(
            ethertype=ETHERTYPE_IPV6, vlan_id=42, vlan_pcp=5, payload=b"x" * 40
        )
        raw = frame.pack()
        # The outer ethertype on the wire must be the 802.1Q TPID.
        assert raw[12:14] == ETHERTYPE_VLAN.to_bytes(2, "big")
        parsed = EthernetFrame.unpack(raw)
        assert parsed.vlan_id == 42
        assert parsed.vlan_pcp == 5
        assert parsed.ethertype == ETHERTYPE_IPV6
        assert parsed.header_len == 18

    def test_vlan_id_range_checked(self):
        with pytest.raises(ValueError):
            EthernetFrame(vlan_id=4096).pack()

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            EthernetFrame.unpack(b"\x00" * 10)

    def test_truncated_vlan_tag_rejected(self):
        raw = EthernetFrame(vlan_id=1, payload=b"").pack()[:15]
        with pytest.raises(ValueError):
            EthernetFrame.unpack(raw)

    def test_payload_preserved_exactly(self):
        payload = bytes(range(256))
        parsed = EthernetFrame.unpack(EthernetFrame(payload=payload).pack())
        assert parsed.payload == payload
