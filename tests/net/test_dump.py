"""tcpdump-style printer tests."""

from repro.net.addresses import ip_to_int, ipv6_to_int
from repro.net.dump import dump, flags_letters, format_packet
from repro.net.packet import Packet, build_tcp_packet
from repro.net.tcp import TCP_FLAG_ACK, TCP_FLAG_PSH, TCP_FLAG_SYN, TcpOption


class TestFlagLetters:
    def test_tcpdump_conventions(self):
        assert flags_letters(TCP_FLAG_SYN) == "S"
        assert flags_letters(TCP_FLAG_SYN | TCP_FLAG_ACK) == "S."
        assert flags_letters(TCP_FLAG_ACK) == "."
        assert flags_letters(TCP_FLAG_PSH | TCP_FLAG_ACK) == "P."
        assert flags_letters(0) == "none"


class TestFormatPacket:
    def test_syn_line(self):
        packet = build_tcp_packet(
            ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), 40000, 443,
            TCP_FLAG_SYN, seq=123456, timestamp_ns=1_500_000,
        )
        line = format_packet(packet)
        assert line.startswith("0.001500 IP 10.0.0.1.40000 > 10.0.0.2.443:")
        assert "Flags [S]," in line
        assert "seq 123456," in line
        assert "length 0" in line
        assert "ack" not in line  # SYN carries no ACK

    def test_ack_and_timestamp_options(self):
        packet = build_tcp_packet(
            1, 2, 3, 4, TCP_FLAG_ACK, seq=10, ack=20,
            options=[TcpOption.timestamp(111, 222)],
        )
        line = format_packet(packet)
        assert "ack 20," in line
        assert "TS val 111 ecr 222," in line

    def test_ipv6_rendering(self):
        packet = build_tcp_packet(
            ipv6_to_int("2001:db8::1"), ipv6_to_int("2001:db8::2"),
            10, 20, TCP_FLAG_SYN, ipv6=True,
        )
        line = format_packet(packet)
        assert "IP6 2001:db8::1.10 > 2001:db8::2.20:" in line

    def test_payload_length(self):
        packet = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_PSH | TCP_FLAG_ACK,
                                  payload=b"x" * 77)
        assert "length 77" in format_packet(packet)

    def test_unparseable_fallback(self):
        line = format_packet(Packet(data=b"\x00" * 30, timestamp_ns=0))
        assert "[not-ip]" in line
        assert "30 bytes" in line


class TestDumpStream:
    def test_relative_timestamps(self, small_workload):
        _, packets = small_workload
        lines = list(dump(packets, limit=5))
        assert len(lines) == 5
        assert lines[0].startswith("0.000000 ")

    def test_limit(self, small_workload):
        _, packets = small_workload
        assert len(list(dump(packets, limit=3))) == 3
