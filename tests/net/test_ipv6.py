"""IPv6 header tests."""

import pytest

from repro.net.addresses import ipv6_to_int
from repro.net.ipv6 import HEADER_LEN, IPv6Header


class TestIPv6Header:
    def test_roundtrip(self):
        header = IPv6Header(
            src=ipv6_to_int("2001:db8::1"),
            dst=ipv6_to_int("2001:db8::2"),
            next_header=6,
            hop_limit=42,
            traffic_class=0xB8,
            flow_label=0xABCDE,
            payload=b"tcp-bytes",
        )
        parsed = IPv6Header.unpack(header.pack())
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.next_header == 6
        assert parsed.hop_limit == 42
        assert parsed.traffic_class == 0xB8
        assert parsed.flow_label == 0xABCDE
        assert parsed.payload == b"tcp-bytes"

    def test_payload_length_written(self):
        raw = IPv6Header(payload=b"x" * 77).pack()
        assert int.from_bytes(raw[4:6], "big") == 77

    def test_padding_not_leaked(self):
        raw = IPv6Header(payload=b"real").pack() + b"\x00" * 8
        assert IPv6Header.unpack(raw).payload == b"real"

    def test_version_is_6(self):
        raw = IPv6Header().pack()
        assert raw[0] >> 4 == 6

    def test_rejects_non_v6(self):
        raw = bytearray(IPv6Header().pack())
        raw[0] = 0x45
        with pytest.raises(ValueError):
            IPv6Header.unpack(bytes(raw))

    def test_rejects_truncated(self):
        with pytest.raises(ValueError):
            IPv6Header.unpack(b"\x60" + b"\x00" * (HEADER_LEN - 10))

    def test_rejects_oversized_flow_label(self):
        with pytest.raises(ValueError):
            IPv6Header(flow_label=1 << 20).pack()
