"""pcapng reader/writer tests."""

import io
import struct

import pytest

from repro.net.packet import Packet, build_tcp_packet
from repro.net.pcap import PcapError, PcapWriter
from repro.net.pcapng import (
    BYTE_ORDER_MAGIC,
    EPB_TYPE,
    SHB_TYPE,
    PcapngReader,
    PcapngWriter,
    open_capture,
)
from repro.net.tcp import TCP_FLAG_SYN


def _sample_packets(count=5):
    return [
        build_tcp_packet(i + 1, i + 2, 1000 + i, 443, TCP_FLAG_SYN,
                         timestamp_ns=i * 1_234_567_891)
        for i in range(count)
    ]


class TestRoundtrip:
    def test_nanosecond_roundtrip(self, tmp_path):
        path = tmp_path / "trace.pcapng"
        packets = _sample_packets()
        with PcapngWriter(path) as writer:
            for packet in packets:
                writer.write(packet)
        with PcapngReader(path) as reader:
            restored = list(reader)
        assert [p.data for p in restored] == [p.data for p in packets]
        assert [p.timestamp_ns for p in restored] == [
            p.timestamp_ns for p in packets
        ]

    def test_linktype_exposed(self, tmp_path):
        path = tmp_path / "t.pcapng"
        with PcapngWriter(path) as writer:
            writer.write(Packet(data=b"x", timestamp_ns=0))
        reader = PcapngReader(path)
        list(reader)
        assert reader.linktype == 1

    def test_file_object_io(self):
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        for packet in _sample_packets(3):
            writer.write(packet)
        buffer.seek(0)
        assert len(list(PcapngReader(buffer))) == 3

    def test_unknown_blocks_skipped(self, tmp_path):
        path = tmp_path / "t.pcapng"
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        writer.write(Packet(data=b"first", timestamp_ns=7))
        # Hand-append an unknown block type (0x0BAD) then another EPB.
        body = b"\x00" * 8
        total = 12 + len(body)
        buffer.write(struct.pack("<II", 0x0BAD, total) + body + struct.pack("<I", total))
        writer.write(Packet(data=b"second", timestamp_ns=8))
        buffer.seek(0)
        restored = list(PcapngReader(buffer))
        assert [p.data for p in restored] == [b"first", b"second"]

    def test_microsecond_resolution_honoured(self):
        # Hand-build a file declaring if_tsresol = 6 (microseconds).
        buffer = io.BytesIO()
        shb_body = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
        total = 12 + len(shb_body)
        buffer.write(struct.pack("<II", SHB_TYPE, total) + shb_body
                     + struct.pack("<I", total))
        options = struct.pack("<HH", 9, 1) + b"\x06\x00\x00\x00"
        options += struct.pack("<HH", 0, 0)
        idb_body = struct.pack("<HHI", 1, 0, 65535) + options
        total = 12 + len(idb_body)
        buffer.write(struct.pack("<II", 1, total) + idb_body
                     + struct.pack("<I", total))
        epb_body = struct.pack("<IIIII", 0, 0, 1500, 3, 3) + b"abc\x00"
        total = 12 + len(epb_body)
        buffer.write(struct.pack("<II", EPB_TYPE, total) + epb_body
                     + struct.pack("<I", total))
        buffer.seek(0)
        packet = next(iter(PcapngReader(buffer)))
        assert packet.timestamp_ns == 1500 * 1_000  # µs ticks -> ns


class TestErrors:
    def test_not_pcapng(self):
        with pytest.raises(PcapError):
            PcapngReader(io.BytesIO(b"\xd4\xc3\xb2\xa1" + b"\x00" * 30))

    def test_bad_byte_order_magic(self):
        buffer = io.BytesIO(
            struct.pack("<II", SHB_TYPE, 28) + b"\xde\xad\xbe\xef" + b"\x00" * 20
        )
        with pytest.raises(PcapError):
            PcapngReader(buffer)

    def test_trailer_mismatch(self):
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        writer.write(Packet(data=b"x", timestamp_ns=0))
        corrupted = bytearray(buffer.getvalue())
        corrupted[-4:] = b"\xff\xff\xff\xff"
        reader = PcapngReader(io.BytesIO(bytes(corrupted)))
        with pytest.raises(PcapError):
            list(reader)


class TestOpenCapture:
    def test_sniffs_both_formats(self, tmp_path):
        classic = tmp_path / "a.pcap"
        nextgen = tmp_path / "b.pcapng"
        packets = _sample_packets(2)
        with PcapWriter(classic) as writer:
            for packet in packets:
                writer.write(packet)
        with PcapngWriter(nextgen) as writer:
            for packet in packets:
                writer.write(packet)
        for path in (classic, nextgen):
            with open_capture(path) as reader:
                assert len(list(reader)) == 2
