"""Address conversion tests."""

import pytest

from repro.net.addresses import (
    IPAddressError,
    bytes_to_mac,
    int_to_ip,
    int_to_ipv6,
    ip_to_int,
    ipv6_to_int,
    is_ipv4,
    is_ipv6,
    mac_to_bytes,
)


class TestIpv4:
    def test_roundtrip_basic(self):
        assert int_to_ip(ip_to_int("10.0.0.1")) == "10.0.0.1"

    def test_known_value(self):
        assert ip_to_int("1.2.3.4") == 0x01020304

    def test_extremes(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == (1 << 32) - 1
        assert int_to_ip(0) == "0.0.0.0"
        assert int_to_ip((1 << 32) - 1) == "255.255.255.255"

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x", "01.2.3.4", "", "1..2.3"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(IPAddressError):
            ip_to_int(bad)

    def test_int_out_of_range(self):
        with pytest.raises(IPAddressError):
            int_to_ip(1 << 32)
        with pytest.raises(IPAddressError):
            int_to_ip(-1)

    def test_is_ipv4(self):
        assert is_ipv4("8.8.8.8")
        assert not is_ipv4("8.8.8")
        assert not is_ipv4("::1")


class TestIpv6:
    def test_known_value(self):
        assert ipv6_to_int("::1") == 1

    def test_full_form(self):
        value = ipv6_to_int("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert value == 0x20010DB8000000000000000000000001

    def test_compression_roundtrip(self):
        for text in ["2001:db8::1", "fe80::", "::", "1:2:3:4:5:6:7:8", "ff02::1:2"]:
            assert int_to_ipv6(ipv6_to_int(text)) == text

    def test_canonical_compresses_longest_run(self):
        # RFC 5952: compress the longest zero run.
        assert int_to_ipv6(ipv6_to_int("1:0:0:2:0:0:0:3")) == "1:0:0:2::3"

    @pytest.mark.parametrize(
        "bad", ["1:2:3", ":::", "1::2::3", "12345::", "g::1", ""]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(IPAddressError):
            ipv6_to_int(bad)

    def test_is_ipv6(self):
        assert is_ipv6("2001:db8::1")
        assert not is_ipv6("10.0.0.1")


class TestMac:
    def test_roundtrip(self):
        assert bytes_to_mac(mac_to_bytes("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_rejects_short(self):
        with pytest.raises(IPAddressError):
            mac_to_bytes("aa:bb:cc")
        with pytest.raises(IPAddressError):
            bytes_to_mac(b"\x00\x01")

    def test_rejects_single_digit_groups(self):
        with pytest.raises(IPAddressError):
            mac_to_bytes("a:bb:cc:dd:ee:ff")
