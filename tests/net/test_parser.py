"""Fast pre-parser tests: the pipeline's hot path."""

import pytest

from repro.net.addresses import ip_to_int, ipv6_to_int
from repro.net.ethernet import EthernetFrame
from repro.net.ipv4 import IPv4Header
from repro.net.packet import build_tcp_packet
from repro.net.parser import PacketParser, ParseError
from repro.net.tcp import (
    TCP_FLAG_ACK,
    TCP_FLAG_RST,
    TCP_FLAG_SYN,
    TcpOption,
)


@pytest.fixture()
def fast_parser():
    return PacketParser()


class TestIpv4Parsing:
    def test_extracts_tuple_and_flags(self, fast_parser):
        packet = build_tcp_packet(
            ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), 40000, 443,
            TCP_FLAG_SYN, seq=111, timestamp_ns=999,
        )
        parsed = fast_parser.parse(packet.data, packet.timestamp_ns)
        assert parsed.src_ip == ip_to_int("10.0.0.1")
        assert parsed.dst_ip == ip_to_int("10.0.0.2")
        assert parsed.src_port == 40000
        assert parsed.dst_port == 443
        assert parsed.seq == 111
        assert parsed.is_syn and not parsed.is_synack and not parsed.is_ack
        assert parsed.timestamp_ns == 999
        assert not parsed.is_ipv6

    def test_flag_properties_exclusive(self, fast_parser):
        synack = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_SYN | TCP_FLAG_ACK)
        parsed = fast_parser.parse(synack.data, 0)
        assert parsed.is_synack and not parsed.is_syn and not parsed.is_ack
        rst = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_RST)
        assert fast_parser.parse(rst.data, 0).is_rst

    def test_payload_len(self, fast_parser):
        packet = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_ACK, payload=b"x" * 123)
        assert fast_parser.parse(packet.data, 0).payload_len == 123

    def test_vlan_tagged(self, fast_parser):
        packet = build_tcp_packet(5, 6, 7, 8, TCP_FLAG_SYN, vlan_id=300)
        parsed = fast_parser.parse(packet.data, 0)
        assert parsed.src_ip == 5
        assert parsed.dst_port == 8

    def test_rejects_fragment(self, fast_parser):
        ip = IPv4Header(src=1, dst=2, more_fragments=True, payload=b"\x00" * 20)
        frame = EthernetFrame(payload=ip.pack()).pack()
        with pytest.raises(ParseError) as err:
            fast_parser.parse(frame, 0)
        assert err.value.reason == "fragment"

    def test_rejects_udp(self, fast_parser):
        ip = IPv4Header(src=1, dst=2, protocol=17, payload=b"\x00" * 8)
        frame = EthernetFrame(payload=ip.pack()).pack()
        with pytest.raises(ParseError) as err:
            fast_parser.parse(frame, 0)
        assert err.value.reason == "not-tcp"

    def test_rejects_arp(self, fast_parser):
        frame = EthernetFrame(ethertype=0x0806, payload=b"\x00" * 28).pack()
        with pytest.raises(ParseError) as err:
            fast_parser.parse(frame, 0)
        assert err.value.reason == "not-ip"

    def test_rejects_truncated(self, fast_parser):
        packet = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_SYN)
        with pytest.raises(ParseError) as err:
            fast_parser.parse(packet.data[:30], 0)
        assert err.value.reason == "truncated"


class TestIpv6Parsing:
    def test_extracts_tuple(self, fast_parser):
        src, dst = ipv6_to_int("2001:db8::1"), ipv6_to_int("2001:db8::2")
        packet = build_tcp_packet(src, dst, 1000, 2000, TCP_FLAG_SYN, ipv6=True)
        parsed = fast_parser.parse(packet.data, 0)
        assert parsed.is_ipv6
        assert parsed.src_ip == src
        assert parsed.dst_ip == dst
        assert parsed.src_port == 1000


class TestTimestampExtraction:
    def test_disabled_by_default(self, fast_parser):
        packet = build_tcp_packet(
            1, 2, 3, 4, TCP_FLAG_ACK, options=[TcpOption.timestamp(10, 20)]
        )
        parsed = fast_parser.parse(packet.data, 0)
        assert parsed.tsval is None

    def test_extracted_when_enabled(self):
        ts_parser = PacketParser(extract_timestamps=True)
        packet = build_tcp_packet(
            1, 2, 3, 4, TCP_FLAG_ACK, options=[TcpOption.timestamp(10, 20)]
        )
        parsed = ts_parser.parse(packet.data, 0)
        assert (parsed.tsval, parsed.tsecr) == (10, 20)

    def test_no_option_yields_none(self):
        ts_parser = PacketParser(extract_timestamps=True)
        packet = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_ACK)
        parsed = ts_parser.parse(packet.data, 0)
        assert parsed.tsval is None and parsed.tsecr is None


class TestFourTuple:
    def test_four_tuple_order(self, fast_parser):
        packet = build_tcp_packet(9, 8, 7, 6, TCP_FLAG_SYN)
        parsed = fast_parser.parse(packet.data, 0)
        assert parsed.four_tuple() == (9, 7, 8, 6)
