"""NIC-side triage: policy shedding, displacement, loss attribution."""

from repro.net.packet import build_tcp_packet
from repro.net.tcp import TCP_FLAG_ACK, TCP_FLAG_PSH, TCP_FLAG_SYN
from repro.dpdk.nic import NicPort
from repro.overload import HANDSHAKE, PAYLOAD, OverloadController
from repro.overload.controller import LEVEL_HANDSHAKE_ONLY


def syn(sport=1000):
    return build_tcp_packet(0x0A000001, 0x0A000002, sport, 443, TCP_FLAG_SYN)


def data(sport=1000, size=400):
    return build_tcp_packet(
        0x0A000001,
        0x0A000002,
        sport,
        443,
        TCP_FLAG_PSH | TCP_FLAG_ACK,
        payload=b"x" * size,
    )


def ack(sport=1000):
    return build_tcp_packet(0x0A000001, 0x0A000002, sport, 443, TCP_FLAG_ACK)


def port(capacity=4, controller=None):
    return NicPort(num_queues=1, queue_capacity=capacity, admission=controller)


class TestDisplacement:
    def test_handshake_displaces_newest_payload(self):
        controller = OverloadController()
        nic = port(capacity=4, controller=controller)
        # Two handshakes then two data segments fill the ring.
        for packet in (syn(1), ack(2), data(3), data(4)):
            assert nic.receive(packet)
        ring = nic.queues[0].ring
        assert ring.is_full

        incoming = syn(5)
        assert nic.receive(incoming) is True
        assert len(ring) == 4
        assert controller.ring_displacements == 1
        assert controller.shed_total(klass=PAYLOAD, stage="ring") == 1
        assert ring.displaced == 1
        # Displacement is not a miss: the handshake made it in.
        assert nic.stats.imissed == 0
        assert nic.stats.ipackets == 5
        # The victim was the *newest* payload frame (sport 4); the
        # incoming handshake now sits at the tail.
        queued = list(ring._items)
        assert queued[-1].data == incoming.data
        assert not any(m.data == data(4).data for m in queued)
        assert any(m.data == data(3).data for m in queued)
        # The evicted mbuf went back to the pool.
        assert nic.pool.in_use == 4

    def test_payload_never_displaces(self):
        controller = OverloadController()
        nic = port(capacity=2, controller=controller)
        assert nic.receive(data(1))
        assert nic.receive(data(2))
        assert nic.receive(data(3)) is False
        assert controller.ring_displacements == 0
        assert controller.shed_total(klass=PAYLOAD, stage="ring") == 1
        assert nic.stats.imissed == 1
        # A ring-full loss of an admitted frame is still attributed
        # shed, so the pipeline splits it out of nic_drops.
        assert controller.take_nic_shed() is True

    def test_handshake_drops_when_no_victim(self):
        controller = OverloadController()
        nic = port(capacity=2, controller=controller)
        assert nic.receive(syn(1))
        assert nic.receive(ack(2))
        assert nic.receive(syn(3)) is False
        assert controller.ring_displacements == 0
        assert controller.shed_total(klass=HANDSHAKE, stage="ring") == 1
        assert nic.stats.imissed == 1


class TestPolicyShed:
    def test_ladder_sheds_before_allocation(self):
        controller = OverloadController()
        controller.level = LEVEL_HANDSHAKE_ONLY
        nic = port(capacity=8, controller=controller)
        assert nic.receive(syn(1)) is True
        assert nic.receive(data(2)) is False
        assert nic.stats.imissed == 1
        assert nic.stats.ipackets == 1
        assert controller.shed_total(klass=PAYLOAD, stage="nic") == 1
        assert controller.take_nic_shed() is True
        assert controller.take_nic_shed() is False
        # Nothing was allocated for the shed frame.
        assert nic.pool.in_use == 1

    def test_no_admission_means_plain_drops(self):
        nic = port(capacity=1)
        assert nic.receive(data(1))
        assert nic.receive(data(2)) is False
        assert nic.stats.imissed == 1


class TestConservation:
    def test_offered_splits_into_admitted_plus_shed(self):
        controller = OverloadController(sampled_modulus=2)
        controller.level = LEVEL_HANDSHAKE_ONLY
        nic = port(capacity=2, controller=controller)
        packets = [syn(1), data(2), ack(3), data(4), syn(5), ack(6)]
        queued = sum(1 for p in packets if nic.receive(p))

        offered = sum(controller.offered.values())
        admitted = sum(controller.admitted.values())
        policy_shed = controller.shed_total(stage="nic")
        ring_shed = controller.shed_total(stage="ring")
        assert offered == len(packets)
        assert offered == admitted + policy_shed
        assert queued == admitted - ring_shed + controller.ring_displacements
        assert nic.stats.ipackets == queued
        assert nic.stats.imissed == len(packets) - queued
