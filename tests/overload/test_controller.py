"""The degradation ladder: dwell-timed transitions and admission."""

import pytest

from repro.net.packet import build_tcp_packet
from repro.net.tcp import TCP_FLAG_ACK, TCP_FLAG_PSH, TCP_FLAG_SYN
from repro.overload import (
    HANDSHAKE,
    OTHER,
    PAYLOAD,
    OverloadController,
    WatermarkBand,
)
from repro.overload.controller import (
    LEVEL_FULL,
    LEVEL_HANDSHAKE_ONLY,
    LEVEL_HEADERS_ONLY,
    LEVEL_SAMPLED,
    NS_PER_MS,
)

SYN = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_SYN).data
ACK = build_tcp_packet(1, 2, 3, 4, TCP_FLAG_ACK).data
DATA = build_tcp_packet(
    1, 2, 3, 4, TCP_FLAG_PSH | TCP_FLAG_ACK, payload=b"x" * 400
).data
ARP = b"\xff" * 12 + b"\x08\x06" + b"\x00" * 28


def controlled(pressure, **kwargs):
    """A controller with one synthetic probe driven by a dict."""
    controller = OverloadController(
        band=WatermarkBand(low=0.5, high=0.85),
        up_dwell_ns=50 * NS_PER_MS,
        down_dwell_ns=250 * NS_PER_MS,
        **kwargs,
    )
    controller.watch_stage(
        "synthetic", [lambda: (pressure["peak"], 100)]
    )
    return controller


class TestLadderTransitions:
    def test_first_step_up_is_immediate(self):
        pressure = {"peak": 100}
        controller = controlled(pressure)
        assert controller.update(0) == LEVEL_SAMPLED
        assert len(controller.transitions) == 1
        assert controller.transitions[0].direction == "step-up"

    def test_up_steps_respect_dwell(self):
        pressure = {"peak": 100}
        controller = controlled(pressure)
        controller.update(0)
        # Within the up dwell: held at sampled despite pressure.
        assert controller.update(49 * NS_PER_MS) == LEVEL_SAMPLED
        assert controller.update(50 * NS_PER_MS) == LEVEL_HANDSHAKE_ONLY
        assert controller.update(100 * NS_PER_MS) == LEVEL_HEADERS_ONLY
        # Top rung: no further stepping.
        assert controller.update(999 * NS_PER_MS) == LEVEL_HEADERS_ONLY
        assert controller.level_max == LEVEL_HEADERS_ONLY

    def test_down_needs_continuous_calm_dwell(self):
        pressure = {"peak": 100}
        controller = controlled(pressure)
        for at_ms in (0, 50, 100):
            controller.update(at_ms * NS_PER_MS)
        assert controller.level == LEVEL_HEADERS_ONLY
        pressure["peak"] = 10  # below low: calm begins
        assert controller.update(200 * NS_PER_MS) == LEVEL_HEADERS_ONLY
        assert controller.update(449 * NS_PER_MS) == LEVEL_HEADERS_ONLY
        assert controller.update(450 * NS_PER_MS) == LEVEL_HANDSHAKE_ONLY
        # Each further rung needs its own full calm dwell.
        assert controller.update(451 * NS_PER_MS) == LEVEL_HANDSHAKE_ONLY
        assert controller.update(700 * NS_PER_MS) == LEVEL_SAMPLED
        assert controller.update(950 * NS_PER_MS) == LEVEL_FULL
        assert controller.level_max == LEVEL_HEADERS_ONLY

    def test_in_band_reading_holds_level_and_calm_clock(self):
        pressure = {"peak": 100}
        controller = controlled(pressure)
        controller.update(0)
        pressure["peak"] = 10
        controller.update(100 * NS_PER_MS)  # calm clock starts
        pressure["peak"] = 70  # inside the band: resets the calm clock
        controller.update(200 * NS_PER_MS)
        pressure["peak"] = 10
        controller.update(250 * NS_PER_MS)  # calm restarts here
        # The dwell counts from the restart, not the first calm read.
        assert controller.update(499 * NS_PER_MS) == LEVEL_SAMPLED
        assert controller.update(501 * NS_PER_MS) == LEVEL_FULL

    def test_pressure_resets_calm_clock(self):
        pressure = {"peak": 100}
        controller = controlled(pressure)
        controller.update(0)
        pressure["peak"] = 10
        controller.update(100 * NS_PER_MS)
        pressure["peak"] = 100
        controller.update(200 * NS_PER_MS)  # re-pressured (steps up too)
        pressure["peak"] = 10
        controller.update(300 * NS_PER_MS)
        assert controller.level == LEVEL_HANDSHAKE_ONLY
        assert controller.update(549 * NS_PER_MS) == LEVEL_HANDSHAKE_ONLY
        assert controller.update(551 * NS_PER_MS) == LEVEL_SAMPLED

    def test_no_sensors_means_no_movement(self):
        controller = OverloadController()
        assert controller.update(0) == LEVEL_FULL
        assert controller.transitions == []

    def test_transition_event_rendering(self):
        pressure = {"peak": 100}
        controller = controlled(pressure)
        controller.update(123 * NS_PER_MS)
        text = str(controller.transitions[0])
        assert "step-up" in text and "full -> sampled" in text


class TestAdmission:
    def test_full_admits_everything(self):
        controller = OverloadController()
        for data in (SYN, ACK, DATA, ARP):
            admitted, _, out = controller.admit_frame(data)
            assert admitted and out == data
        assert controller.offered == {PAYLOAD: 1, OTHER: 1, HANDSHAKE: 2}
        assert controller.admitted == controller.offered
        assert controller.shed_total() == 0

    def test_sampled_admits_one_in_n_payload(self):
        controller = OverloadController(sampled_modulus=4)
        controller.level = LEVEL_SAMPLED
        admitted = [controller.admit_frame(DATA)[0] for _ in range(8)]
        assert admitted == [False, False, False, True] * 2
        assert controller.admitted[PAYLOAD] == 2
        assert controller.shed_total(klass=PAYLOAD, stage="nic") == 6
        # Handshake and other still flow at this rung.
        assert controller.admit_frame(SYN)[0]
        assert controller.admit_frame(ARP)[0]

    def test_handshake_only_sheds_payload_samples_other(self):
        controller = OverloadController(sampled_modulus=2)
        controller.level = LEVEL_HANDSHAKE_ONLY
        assert not controller.admit_frame(DATA)[0]
        assert controller.admit_frame(ACK)[0]
        assert [controller.admit_frame(ARP)[0] for _ in range(4)] == [
            False, True, False, True,
        ]

    def test_headers_only_truncates_handshakes(self):
        controller = OverloadController(snap_len=64)
        controller.level = LEVEL_HEADERS_ONLY
        # A small handshake frame passes through untouched...
        admitted, klass, out = controller.admit_frame(SYN)
        assert admitted and klass == HANDSHAKE and out == SYN
        assert controller.truncated == 0
        # ...an oversized one (fast-open SYN) is cut to snap_len.
        big_syn = build_tcp_packet(
            1, 2, 3, 4, TCP_FLAG_SYN, payload=b"x" * 200
        ).data
        admitted, klass, out = controller.admit_frame(big_syn)
        assert admitted and klass == HANDSHAKE
        assert len(out) == 64
        assert controller.truncated == 1
        assert not controller.admit_frame(DATA)[0]
        assert not controller.admit_frame(ARP)[0]

    def test_shed_flag_consumed_once(self):
        controller = OverloadController()
        controller.level = LEVEL_HEADERS_ONLY
        controller.admit_frame(DATA)
        assert controller.take_nic_shed() is True
        assert controller.take_nic_shed() is False

    def test_shed_ratio_excludes_mq_records(self):
        controller = OverloadController()
        controller.level = LEVEL_HANDSHAKE_ONLY
        for _ in range(4):
            controller.admit_frame(DATA)
        for _ in range(4):
            controller.admit_frame(ACK)
        controller.record_shed(HANDSHAKE, "mq")
        assert controller.shed_ratio(PAYLOAD) == 1.0
        assert controller.shed_ratio(HANDSHAKE) == 0.0
        assert controller.shed_total(klass=HANDSHAKE) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadController(up_dwell_ns=-1)
        with pytest.raises(ValueError):
            OverloadController(sampled_modulus=0)
        with pytest.raises(ValueError):
            OverloadController(snap_len=32)


class TestDurability:
    def test_state_round_trip(self):
        pressure = {"peak": 100}
        controller = controlled(pressure, sampled_modulus=4)
        controller.update(0)
        controller.update(60 * NS_PER_MS)
        for _ in range(5):
            controller.admit_frame(DATA)
        controller.admit_frame(SYN)
        controller.record_ring_displacement()
        controller.mq_offered = 17
        controller.record_shed(HANDSHAKE, "mq")

        state = controller.state_dict()
        import json

        restored = OverloadController(sampled_modulus=4)
        restored.load_state(json.loads(json.dumps(state)))

        assert restored.level == controller.level
        assert restored.level_max == controller.level_max
        assert restored.offered == controller.offered
        assert restored.admitted == controller.admitted
        assert restored.shed_counts() == controller.shed_counts()
        assert restored.ring_displacements == 1
        assert restored.mq_offered == 17
        assert len(restored.transitions) == len(controller.transitions)
        # The 1-in-N cursor resumes, keeping replays deterministic.
        assert restored._payload_seq == controller._payload_seq

    def test_restored_ladder_steps_down_after_fresh_calm_dwell(self):
        pressure = {"peak": 100}
        controller = controlled(pressure)
        controller.update(0)
        state = controller.state_dict()

        restored = OverloadController(
            band=WatermarkBand(low=0.5, high=0.85),
            up_dwell_ns=50 * NS_PER_MS,
            down_dwell_ns=250 * NS_PER_MS,
        )
        restored.load_state(state)
        restored.watch_stage("synthetic", [lambda: (0, 100)])
        from repro.overload.controller import LEVEL_SAMPLED as L1

        assert restored.level == L1
        assert restored.update(1000 * NS_PER_MS) == L1
        assert restored.update(1251 * NS_PER_MS) == LEVEL_FULL
