"""The ddos-ramp scenario: overload engages, handshakes survive."""

import pytest

from repro.scenarios import run_scenario
from repro.scenarios.library import get_scenario
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture(scope="module")
def ramp_result():
    return run_scenario(get_scenario("ddos-ramp"))


class TestDdosRampScenario:
    def test_all_gates_pass(self, ramp_result):
        assert ramp_result.ok, ramp_result.render()
        names = {check.name for check in ramp_result.checks}
        assert {
            "survived",
            "ledger-conserves",
            "packet-ledger-conserves",
            "overload-ledger-conserves",
            "handshake-shed-bounded",
            "payload-shed-engaged",
        } <= names

    def test_ladder_engaged_under_the_ramp(self, ramp_result):
        assert ramp_result.metric("overload.level_max") >= 2
        assert ramp_result.metric("overload.transitions") >= 2
        assert ramp_result.metric("overload.shed.payload") > 0

    def test_handshakes_kept_flowing(self, ramp_result):
        # The point of the ladder: RTT measurement stays alive while
        # payload is shed — handshake loss bounded, detectors still fed.
        shed = ramp_result.metric("overload.shed.handshake")
        offered = ramp_result.metric("overload.offered.handshake")
        assert offered > 0
        assert shed / offered <= 0.01
        assert ramp_result.metric("events.latency-spike") >= 1

    def test_extended_ledger_balances(self, ramp_result):
        assert ramp_result.metric("oledger.balance") == 0
        assert ramp_result.metric("oledger.ingested") > 0

    def test_transitions_recorded_in_archive(self, ramp_result):
        transitions = ramp_result.resultset.meta["overload_transitions"]
        assert transitions
        assert any("step-up" in text for text in transitions)
        assert ramp_result.resultset.meta["overload"]["level_max"] >= 2

    def test_render_mentions_overload(self, ramp_result):
        assert "overload" in ramp_result.render()


class TestSpecRoundTrip:
    def test_overload_section_round_trips(self):
        spec = get_scenario("ddos-ramp")
        assert spec.overload.enabled
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.overload == spec.overload
        assert clone.stack.queue_capacity == spec.stack.queue_capacity
        assert clone.stack.feed_window_ms == spec.stack.feed_window_ms
        assert clone.to_dict() == spec.to_dict()

    def test_disabled_overload_adds_no_checks(self):
        spec = get_scenario("auckland-baseline")
        assert not spec.overload.enabled
        result = run_scenario(spec)
        names = {check.name for check in result.checks}
        assert "overload-ledger-conserves" not in names
        assert result.metric("overload.level_max") is None
