"""The MQ admission gate and the extended conservation ledger."""

from repro.faults.chaos import ChaosHarness
from repro.mq.socket import Context
from repro.overload import (
    HANDSHAKE,
    GatedPushSocket,
    OverloadController,
    OverloadLedger,
)
from repro.resilience.invariants import ConservationLedger


class _RefusingSocket:
    """A push socket whose bus never accepts (peerless, buffer full)."""

    def __init__(self):
        self.sent = 0
        self.dropped = 0

    def send(self, message: bytes) -> bool:
        self.dropped += 1
        return False


class TestGatedPushSocket:
    def test_offered_counts_every_send(self):
        context = Context()
        pull = context.pull(hwm=64)
        pull.bind("inproc://gate")
        push = context.push()
        push.connect("inproc://gate")
        controller = OverloadController()
        gate = GatedPushSocket(push, controller)

        for i in range(5):
            assert gate.send(b"record %d" % i)
        assert controller.mq_offered == 5
        assert controller.shed_total(stage="mq") == 0
        # Delegation: the wrapper is transparent to its consumers.
        assert gate.sent == 5
        assert gate.dropped == 0

    def test_refused_send_is_shed_at_mq(self):
        controller = OverloadController()
        gate = GatedPushSocket(_RefusingSocket(), controller)
        assert gate.send(b"r") is False
        assert controller.mq_offered == 1
        assert controller.shed_total(klass=HANDSHAKE, stage="mq") == 1
        # Records are not frames: frame-level ratios ignore this.
        assert controller.shed_ratio(HANDSHAKE) == 0.0


class TestOverloadLedger:
    def test_balances_with_shed_term(self):
        ledger = ConservationLedger(
            ingested=90, processed=80, dropped=6, deadlettered=4
        )
        combined = OverloadLedger.from_parts(100, ledger, shed_mq=10)
        assert combined.balance == 0
        assert combined.ok
        combined.check()

    def test_detects_vanished_records(self):
        ledger = ConservationLedger(
            ingested=90, processed=80, dropped=6, deadlettered=4
        )
        combined = OverloadLedger.from_parts(100, ledger, shed_mq=7)
        assert combined.balance == 3
        assert not combined.ok
        assert "VIOLATED" in str(combined)
        assert combined.as_dict()["balance"] == 3


class TestGateUnderFaults:
    def test_lossy_mq_keeps_extended_ledger_exact(self):
        # Gate-innermost composition: the fault injector wraps *around*
        # the gate, so injected drops never reach `offered` and injected
        # duplicates are offered twice — the four-destiny invariant
        # balances under the profile's full fault mix.
        harness = ChaosHarness(
            "lossy-mq", seed=11, duration_s=4.0, rate=30.0, overload=True
        )
        report = harness.run()
        assert report.ok
        controller = harness.stack.overload
        assert controller is not None
        combined = OverloadLedger.from_parts(
            controller.mq_offered,
            report.ledger,
            controller.shed_total(stage="mq"),
        )
        assert combined.ok, str(combined)
        # Faults really fired; the ledger still reconciled exactly.
        assert sum(report.faults_injected.values()) > 0
