"""The overload metric surface through the shared registry."""

import pytest

from repro.faults.chaos import ChaosHarness


@pytest.fixture(scope="module")
def snapshot():
    harness = ChaosHarness(
        "clean", seed=3, duration_s=3.0, rate=20.0, overload=True
    )
    harness.run()
    # Wedge some shed into the ledger so labelled children exist.
    controller = harness.stack.overload
    controller.record_shed("payload", "nic")
    return harness.telemetry.registry.snapshot()


def value(snapshot, name, **labels):
    for sample in snapshot[name]["samples"]:
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            return sample["value"]
    raise AssertionError(f"no sample of {name} with labels {labels}")


class TestOverloadMetricSurface:
    def test_ladder_gauges_exported(self, snapshot):
        assert "ruru_overload_level" in snapshot
        assert "ruru_overload_level_max" in snapshot
        assert "ruru_overload_transitions_total" in snapshot
        assert value(snapshot, "ruru_overload_level") == 0.0

    def test_shed_counter_labelled_by_class_and_stage(self, snapshot):
        assert value(
            snapshot, "ruru_shed_total", **{"class": "payload", "stage": "nic"}
        ) == 1

    def test_offered_counts_every_class(self, snapshot):
        offered = {
            sample["labels"]["class"]: sample["value"]
            for sample in snapshot["ruru_overload_offered_total"]["samples"]
        }
        assert set(offered) == {"handshake", "payload", "other"}
        assert offered["handshake"] > 0

    def test_pressure_gauge_covers_watched_stages(self, snapshot):
        stages = {
            sample["labels"]["stage"]
            for sample in snapshot["ruru_overload_pressure"]["samples"]
        }
        assert {"nic", "mq"} <= stages

    def test_ring_gauges_exported(self, snapshot):
        assert value(snapshot, "ruru_rx_ring_high_watermark", queue="0") >= 0
        assert value(snapshot, "ruru_rx_ring_capacity", queue="0") > 0
        assert "ruru_rx_ring_drops_total" in snapshot
        assert "ruru_rx_ring_displaced_total" in snapshot

    def test_peerless_drop_counter_exported(self, snapshot):
        assert value(snapshot, "ruru_mq_peerless_dropped_total") == 0
        assert "ruru_mq_peerless_buffered_total" in snapshot

    def test_mq_gate_counter_exported(self, snapshot):
        assert value(snapshot, "ruru_overload_mq_offered_total") > 0
