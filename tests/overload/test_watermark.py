"""Watermark hysteresis and peak-occupancy probes."""

import pytest

from repro.dpdk.ring import Ring
from repro.mq.socket import Context
from repro.overload import WatermarkBand, ring_reader, socket_reader
from repro.overload.watermark import PressureSensor


def make_sensor(band=None):
    """A sensor over one mutable probe: set state['peak'] per update."""
    state = {"peak": 0, "capacity": 100}
    sensor = PressureSensor(
        "test",
        [lambda: (state["peak"], state["capacity"])],
        band or WatermarkBand(low=0.5, high=0.85),
    )
    return sensor, state


class TestWatermarkBand:
    def test_validates_ordering(self):
        with pytest.raises(ValueError):
            WatermarkBand(low=0.9, high=0.5)
        with pytest.raises(ValueError):
            WatermarkBand(low=0.5, high=0.5)
        with pytest.raises(ValueError):
            WatermarkBand(low=-0.1, high=0.5)
        with pytest.raises(ValueError):
            WatermarkBand(low=0.5, high=1.2)


class TestPressureSensorHysteresis:
    def test_exactly_at_high_watermark_pressures(self):
        sensor, state = make_sensor()
        state["peak"] = 85  # fraction == high exactly
        assert sensor.update() is True

    def test_just_below_high_does_not_pressure(self):
        sensor, state = make_sensor()
        state["peak"] = 84
        assert sensor.update() is False

    def test_exactly_at_low_watermark_calms(self):
        sensor, state = make_sensor()
        state["peak"] = 90
        assert sensor.update() is True
        state["peak"] = 50  # fraction == low exactly
        assert sensor.update() is False

    def test_in_band_holds_state_both_directions(self):
        sensor, state = make_sensor()
        state["peak"] = 70  # inside (low, high): starts calm, stays calm
        assert sensor.update() is False
        state["peak"] = 90
        assert sensor.update() is True
        state["peak"] = 70  # back inside the band: stays pressured
        assert sensor.update() is True
        state["peak"] = 51  # one above low: still holding
        assert sensor.update() is True
        state["peak"] = 49
        assert sensor.update() is False

    def test_requires_probes(self):
        with pytest.raises(ValueError):
            PressureSensor("empty", [], WatermarkBand())

    def test_max_over_probes(self):
        sensor = PressureSensor(
            "multi",
            [lambda: (10, 100), lambda: (90, 100)],
            WatermarkBand(low=0.5, high=0.85),
        )
        assert sensor.update() is True
        assert sensor.last_fraction == pytest.approx(0.9)


class TestPeakProbes:
    def test_ring_peak_survives_drain(self):
        ring = Ring(capacity=8)
        ring.enqueue_burst(range(6))
        ring.dequeue_burst(6)  # drained to empty, as every batch does
        peak, capacity = ring_reader(ring)()
        assert (peak, capacity) == (6, 8)
        # The read consumed the peak: next read sees current depth.
        assert ring.take_peak() == 0

    def test_ring_peak_resets_to_current_depth(self):
        ring = Ring(capacity=8)
        ring.enqueue_burst(range(5))
        assert ring.take_peak() == 5
        # The reset is to the depth *at read time* (5), so a drain to 2
        # still reports 5 once more before settling at the new depth.
        ring.dequeue_burst(3)
        assert ring.take_peak() == 5
        assert ring.take_peak() == 2

    def test_socket_peak(self):
        context = Context()
        pull = context.pull(hwm=16)
        pull.bind("inproc://peak")
        push = context.push()
        push.connect("inproc://peak")
        for i in range(4):
            push.send(b"m%d" % i)
        while pull.recv() is not None:
            pass
        peak, hwm = socket_reader(pull)()
        assert (peak, hwm) == (4, 16)
        assert pull.take_peak() == 0
