"""Priority classification of raw frames at NIC admission."""

from repro.net.packet import build_tcp_packet
from repro.net.tcp import (
    TCP_FLAG_ACK,
    TCP_FLAG_FIN,
    TCP_FLAG_PSH,
    TCP_FLAG_SYN,
)
from repro.overload import HANDSHAKE, OTHER, PAYLOAD, classify_frame

SRC, DST = 0x0A000001, 0x0A000002


def frame(flags, payload=b"", **kwargs):
    return build_tcp_packet(
        SRC, DST, 12345, 443, flags, payload=payload, **kwargs
    ).data


class TestClassifyFrame:
    def test_syn_is_handshake(self):
        assert classify_frame(frame(TCP_FLAG_SYN)) == HANDSHAKE

    def test_synack_is_handshake(self):
        assert classify_frame(frame(TCP_FLAG_SYN | TCP_FLAG_ACK)) == HANDSHAKE

    def test_pure_ack_is_handshake(self):
        assert classify_frame(frame(TCP_FLAG_ACK)) == HANDSHAKE

    def test_fin_ack_is_handshake(self):
        assert classify_frame(frame(TCP_FLAG_FIN | TCP_FLAG_ACK)) == HANDSHAKE

    def test_data_segment_is_payload(self):
        data = frame(TCP_FLAG_PSH | TCP_FLAG_ACK, payload=b"x" * 512)
        assert classify_frame(data) == PAYLOAD

    def test_syn_with_payload_stays_handshake(self):
        # TCP fast-open style: the SYN is what the tracker needs.
        data = frame(TCP_FLAG_SYN, payload=b"x" * 64)
        assert classify_frame(data) == HANDSHAKE

    def test_vlan_tagged_payload(self):
        data = frame(TCP_FLAG_PSH | TCP_FLAG_ACK, payload=b"y" * 100, vlan_id=42)
        assert classify_frame(data) == PAYLOAD

    def test_ipv6_segments(self):
        src6 = 0x20010DB8 << 96
        syn = build_tcp_packet(
            src6, src6 + 1, 1, 2, TCP_FLAG_SYN, ipv6=True
        ).data
        data = build_tcp_packet(
            src6, src6 + 1, 1, 2, TCP_FLAG_PSH | TCP_FLAG_ACK,
            payload=b"z" * 80, ipv6=True,
        ).data
        assert classify_frame(syn) == HANDSHAKE
        assert classify_frame(data) == PAYLOAD

    def test_non_ip_is_other(self):
        arp = b"\xff" * 12 + b"\x08\x06" + b"\x00" * 28
        assert classify_frame(arp) == OTHER

    def test_runt_frame_is_other(self):
        assert classify_frame(b"\x00" * 10) == OTHER

    def test_truncated_handshake_still_classifies(self):
        # The headers-only rung truncates admitted handshake frames;
        # a re-classification of the truncated bytes must agree, since
        # payload length is computed from the *captured* frame length.
        data = frame(TCP_FLAG_ACK)
        assert classify_frame(data[:64]) == HANDSHAKE
