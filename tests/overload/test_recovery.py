"""Kill -9 during an active overload episode: the episode survives.

The overload controller's whole ledger (level, per-class counters,
shed attribution, the MQ gate's offered count) lives in the checkpoint
stream, so a crash mid-shed recovers with the extended conservation
invariant reconciling exactly — and the restored ladder steps down
only after a genuine fresh calm dwell, not instantly.
"""

from repro.durability.recovery import recover_runtime
from repro.durability.runtime import DurableRuntime
from repro.faults.crashpoints import CrashSchedule, SimulatedCrash
from repro.overload import OverloadLedger
from repro.overload.controller import LEVEL_HEADERS_ONLY
from repro.resilience.invariants import DurabilityLedger

RUN = dict(profile="clean", seed=7, duration_s=6.0, rate=30.0, queues=2)


def test_crash_during_active_overload_recovers(tmp_path):
    state_dir = str(tmp_path / "state")
    observed = {"count": 0}

    def observe() -> None:
        observed["count"] += 1

    # Arm a kill after the third checkpoint: by then the ladder —
    # wedged at the top by a synthetic always-full probe — has been
    # persisted several times.
    schedule = CrashSchedule().arm("checkpoint.post", hit=3)
    victim = DurableRuntime(
        state_dir, crash_schedule=schedule, overload=True, **RUN
    )
    victim.service.ingest_observer = observe
    victim.overload.watch_stage("synthetic", [lambda: (1, 1)])

    packets = list(victim.injector.packet_stream(victim.generator.packets()))
    feed_batch = victim.pipeline.feed_batch
    batches = [
        packets[i : i + feed_batch]
        for i in range(0, len(packets), feed_batch)
    ]

    crashed = False
    fed = 0
    try:
        for batch in batches:
            fed += 1
            victim.process_batch(batch)
        victim.shutdown()
    except SimulatedCrash:
        crashed = True
    assert crashed, "checkpoint.post never fired"
    # The episode was genuinely active when the process died.
    assert victim.overload.level == LEVEL_HEADERS_ONLY
    assert victim.overload.shed_total() > 0
    observed_at_crash = observed["count"]
    del victim  # dead memory

    survivor = DurableRuntime(state_dir, overload=True, **RUN)
    survivor.service.ingest_observer = observe
    recovery = recover_runtime(survivor, observed_ingested=observed_at_crash)
    assert recovery.ok, recovery.render()
    assert not recovery.cold_start
    # The ladder resumes where the crash left it; sensor hysteresis is
    # deliberately fresh, so it holds until a real calm dwell passes.
    assert survivor.overload.level == LEVEL_HEADERS_ONLY
    assert survivor.overload.shed_total() > 0
    assert survivor.overload.mq_offered > 0

    # Resume the packets the dead process never saw, then drain. No
    # synthetic probe this time: pressure is real (low), so the ladder
    # walks back down over the remaining virtual time.
    for batch in batches[fed:]:
        survivor.process_batch(batch)
    final_drain = survivor.shutdown()
    assert final_drain.ok, final_drain.render()
    # Each rung needs its own full calm dwell, so how far down the
    # ladder walks depends on the remaining virtual time — what must
    # hold is that it *descended* once pressure was genuinely gone.
    assert survivor.overload.level < LEVEL_HEADERS_ONLY
    assert any(
        t.direction == "step-down" for t in survivor.overload.transitions
    )

    # Whole-trial durability equation, with the crash loss explicit.
    final_ledger = DurabilityLedger(
        observed_ingested=observed["count"],
        processed=final_drain.ledger.processed,
        dropped=final_drain.ledger.dropped,
        deadlettered=final_drain.ledger.deadlettered,
        lost_at_crash=recovery.lost_at_crash,
    )
    assert final_ledger.ok, str(final_ledger)

    # And the extended invariant: the gate's offered count and the
    # analytics ledger were restored from the same checkpoint cut, so
    # ingested == processed + dropped + deadlettered + shed(mq) exactly.
    combined = OverloadLedger.from_parts(
        survivor.overload.mq_offered,
        final_drain.ledger,
        survivor.overload.shed_total(stage="mq"),
    )
    assert combined.ok, str(combined)
