"""Scenario spec parsing, validation, overrides, and the library."""

import json

import pytest

from repro.scenarios import (
    get_scenario,
    load_library,
    load_scenario_file,
    scenario_names,
)
from repro.scenarios.spec import (
    AnomalyWindowSpec,
    FaultSpec,
    ScenarioSpec,
    SpecError,
    TrafficSpec,
    apply_overrides,
    parse_override_args,
)
from repro.traffic.scenarios import (
    ConnectionSurgeInjector,
    FirewallGlitchInjector,
    SynFloodInjector,
)

TOML_DOC = """
name = "toml-episode"
description = "parsed from TOML"
seed = 11

[traffic]
duration_s = 5.0
rate = 25.0
diurnal = true
start_hour = 18.5

[faults]
profile = "lossy-mq"

[faults.overrides]
mq_drop_rate = 0.10

[[anomalies]]
kind = "syn-flood"
at_s = 2.0
duration_s = 1.5

[expect.syn-flood]
min = 1
"""


class TestParsing:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "episode.toml"
        path.write_text(TOML_DOC)
        spec = load_scenario_file(str(path))
        assert spec.name == "toml-episode"
        assert spec.seed == 11
        assert spec.traffic.diurnal and spec.traffic.start_hour == 18.5
        assert spec.faults.overrides == {"mq_drop_rate": 0.10}
        assert spec.anomalies[0].kind == "syn-flood"
        assert spec.expect == {"syn-flood": {"min": 1}}
        # Document form reparses to an identical spec.
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_document(self, tmp_path):
        path = tmp_path / "episode.json"
        path.write_text(json.dumps({"name": "json-episode", "seed": 3}))
        spec = load_scenario_file(str(path))
        assert spec.name == "json-episode"
        assert spec.seed == 3

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SpecError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"name": "x", "trafic": {}})

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="bad scenario field"):
            ScenarioSpec.from_dict({"name": "x", "traffic": {"ratee": 10}})

    def test_unknown_anomaly_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown anomaly kind"):
            AnomalyWindowSpec(kind="meteor-strike")

    def test_unknown_fault_override_rejected(self):
        with pytest.raises(SpecError, match="not a FaultProfile rate"):
            FaultSpec(profile="clean", overrides={"banana_rate": 0.5})

    def test_unknown_expect_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown event kind"):
            ScenarioSpec(name="x", expect={"quakes": {"min": 1}})

    def test_filesystem_unsafe_name_rejected(self):
        with pytest.raises(SpecError, match="filesystem-safe"):
            ScenarioSpec(name="a/b")

    def test_traffic_bounds(self):
        with pytest.raises(SpecError):
            TrafficSpec(duration_s=0)
        with pytest.raises(SpecError):
            TrafficSpec(start_hour=24.0)


class TestFaultResolution:
    def test_clean_profile_is_inactive(self):
        assert not FaultSpec(profile="clean").active

    def test_overrides_derive_anonymous_profile(self):
        resolved = FaultSpec(
            profile="clean", overrides={"mq_drop_rate": 0.2}
        ).resolve()
        assert resolved.mq_drop_rate == 0.2
        assert resolved.name == "clean+overrides"
        # The registered base profile is untouched.
        assert FaultSpec(profile="clean").resolve().mq_drop_rate == 0.0


class TestInjectorBuilding:
    def test_each_kind_builds_its_injector(self):
        traffic = TrafficSpec(start_hour=2.0)
        glitch = AnomalyWindowSpec(kind="firewall-glitch", at_s=30.0).build_injector(traffic)
        flood = AnomalyWindowSpec(kind="syn-flood", at_s=5.0).build_injector(traffic)
        surge = AnomalyWindowSpec(kind="connection-surge", at_s=5.0).build_injector(traffic)
        assert isinstance(glitch, FirewallGlitchInjector)
        assert isinstance(flood, SynFloodInjector)
        assert isinstance(surge, ConnectionSurgeInjector)
        # Relative windows are absolute on the virtual clock.
        assert flood.flood_start_ns == traffic.start_ns + 5 * 10**9

    def test_firewall_glitch_anchors_to_time_of_day(self):
        traffic = TrafficSpec(start_hour=2.5)
        injector = AnomalyWindowSpec(
            kind="firewall-glitch",
            params={"window_start_hour": 3.0},
        ).build_injector(traffic)
        assert injector.window_start_offset_ns == 3 * 3600 * 10**9


class TestOverrides:
    def test_dotted_paths_reach_nested_fields(self):
        spec = ScenarioSpec(name="x")
        out = apply_overrides(
            spec,
            {"traffic.rate": 90, "faults.overrides.mq_drop_rate": 0.1},
        )
        assert out.traffic.rate == 90
        assert out.faults.overrides["mq_drop_rate"] == 0.1
        # The input spec is untouched (frozen + document copy).
        assert spec.traffic.rate == 40.0

    def test_overrides_revalidate(self):
        with pytest.raises(SpecError):
            apply_overrides(ScenarioSpec(name="x"), {"traffic.rate": -1})

    def test_parse_override_args_types_values(self):
        parsed = parse_override_args(
            ["traffic.rate=80", "traffic.diurnal=true", "faults.profile=lossy-mq"]
        )
        assert parsed == {
            "traffic.rate": 80,
            "traffic.diurnal": True,
            "faults.profile": "lossy-mq",
        }

    def test_parse_override_args_rejects_bare_words(self):
        with pytest.raises(SpecError):
            parse_override_args(["traffic.rate"])


class TestLibrary:
    def test_library_ships_the_paper_episodes(self):
        names = scenario_names()
        assert len(names) >= 6
        for expected in (
            "auckland-baseline",
            "firewall-glitch-night",
            "syn-flood-burst",
            "flash-crowd-diurnal-peak",
            "lossy-mq-degraded",
            "elephant-mice-mix",
        ):
            assert expected in names

    def test_every_library_spec_has_a_description(self):
        for name, spec in load_library().items():
            assert spec.description, f"{name} is missing a description"

    def test_extra_dir_shadows_builtin(self, tmp_path):
        shadow = tmp_path / "auckland-baseline.toml"
        shadow.write_text(
            'name = "auckland-baseline"\ndescription = "shadowed"\nseed = 99\n'
        )
        spec = get_scenario("auckland-baseline", extra_dirs=[str(tmp_path)])
        assert spec.seed == 99 and spec.description == "shadowed"

    def test_get_scenario_accepts_file_paths(self, tmp_path):
        path = tmp_path / "direct.toml"
        path.write_text('name = "direct"\n')
        assert get_scenario(str(path)).name == "direct"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(SpecError, match="auckland-baseline"):
            get_scenario("no-such-episode")


class TestShardSpec:
    def test_defaults_to_disabled(self):
        from repro.scenarios.spec import ShardScenarioSpec

        spec = ScenarioSpec(name="x")
        assert spec.shard == ShardScenarioSpec()
        assert not spec.shard.enabled

    def test_round_trips_through_the_document_form(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "s",
                "shard": {"shards": 2, "kill_shard": 1, "kill_at_batch": 6},
            }
        )
        assert spec.shard.enabled
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.shard == spec.shard

    def test_kill_fields_come_together(self):
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(
                {"name": "s", "shard": {"shards": 2, "kill_shard": 1}}
            )

    def test_kill_shard_must_exist(self):
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(
                {
                    "name": "s",
                    "shard": {
                        "shards": 2,
                        "kill_shard": 5,
                        "kill_at_batch": 1,
                    },
                }
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(
                {"name": "s", "shard": {"shards": 2, "policy": "yolo"}}
            )

    def test_library_ships_the_failover_episode(self):
        spec = get_scenario("shard-failover")
        assert spec.shard.enabled
        assert spec.shard.kill_shard is not None
