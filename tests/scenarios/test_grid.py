"""The grid batch runner: expansion, archiving, resumable sweeps."""

import json
import os

import pytest

from repro.obs.bench import load_resultset
from repro.scenarios import GridSpec, run_grid
from repro.scenarios.grid import GridCell


@pytest.fixture()
def scenario_dir(tmp_path):
    """Two tiny scenarios so grid runs stay fast."""
    specs = tmp_path / "specs"
    specs.mkdir()
    (specs / "tiny-clean.toml").write_text(
        'name = "tiny-clean"\n[traffic]\nduration_s = 2.0\nrate = 20.0\n'
    )
    (specs / "tiny-faulty.toml").write_text(
        'name = "tiny-faulty"\n[traffic]\nduration_s = 2.0\nrate = 20.0\n'
        '[faults]\nprofile = "lossy-mq"\n'
    )
    return str(specs)


class TestExpansion:
    def test_cells_cover_the_cross_product(self):
        grid = GridSpec(
            scenarios=["a", "b"],
            seeds=[1, 2],
            variants={"base": {}, "hot": {"traffic.rate": 100}},
        )
        cells = grid.expand()
        assert len(cells) == 8
        assert [c.cell_id for c in cells[:3]] == [
            "a--s1", "a--s1--hot", "a--s2",
        ]
        assert cells[1].overrides == {"traffic.rate": 100}

    def test_archive_paths_group_by_scenario(self, tmp_path):
        cell = GridCell(scenario="a", seed=3, variant="hot")
        path = cell.archive_path(str(tmp_path))
        assert path.endswith(os.path.join("a", "a--s3--hot.json"))


class TestRunAndResume:
    def test_grid_archives_every_cell(self, scenario_dir, tmp_path):
        out = str(tmp_path / "grid")
        grid = GridSpec(scenarios=["tiny-clean", "tiny-faulty"], seeds=[5])
        report = run_grid(grid, out, extra_dirs=[scenario_dir])
        assert report.ok and len(report.ran) == 2
        archived = load_resultset(os.path.join(out, "tiny-clean", "tiny-clean--s5.json"))
        assert archived.meta["cell"] == {
            "scenario": "tiny-clean", "seed": 5, "variant": "base",
        }
        assert archived.metrics["ledger.balance"]["value"] == 0.0

    def test_interrupted_grid_resumes_where_it_stopped(self, scenario_dir, tmp_path):
        out = str(tmp_path / "grid")
        grid = GridSpec(scenarios=["tiny-clean", "tiny-faulty"], seeds=[5, 6])
        first = run_grid(grid, out, extra_dirs=[scenario_dir], max_cells=2)
        assert len(first.ran) == 2
        resumed = run_grid(grid, out, extra_dirs=[scenario_dir])
        assert len(resumed.skipped) == 2 and len(resumed.ran) == 2
        done = run_grid(grid, out, extra_dirs=[scenario_dir])
        assert len(done.skipped) == 4 and not done.ran

    def test_torn_archive_reruns(self, scenario_dir, tmp_path):
        out = str(tmp_path / "grid")
        grid = GridSpec(scenarios=["tiny-clean"], seeds=[5])
        run_grid(grid, out, extra_dirs=[scenario_dir])
        path = os.path.join(out, "tiny-clean", "tiny-clean--s5.json")
        with open(path, "w") as handle:
            handle.write('{"schema": 1, "name": "tr')  # killed mid-write
        report = run_grid(grid, out, extra_dirs=[scenario_dir])
        assert len(report.ran) == 1 and not report.skipped
        assert load_resultset(path).meta["scenario"] == "tiny-clean"

    def test_foreign_cell_archive_reruns(self, scenario_dir, tmp_path):
        out = str(tmp_path / "grid")
        grid = GridSpec(scenarios=["tiny-clean"], seeds=[5])
        run_grid(grid, out, extra_dirs=[scenario_dir])
        path = os.path.join(out, "tiny-clean", "tiny-clean--s5.json")
        document = json.load(open(path))
        document["meta"]["cell"]["seed"] = 999  # some other coordinate
        json.dump(document, open(path, "w"))
        report = run_grid(grid, out, extra_dirs=[scenario_dir])
        assert len(report.ran) == 1

    def test_no_resume_forces_rerun(self, scenario_dir, tmp_path):
        out = str(tmp_path / "grid")
        grid = GridSpec(scenarios=["tiny-clean"], seeds=[5])
        run_grid(grid, out, extra_dirs=[scenario_dir])
        report = run_grid(grid, out, resume=False, extra_dirs=[scenario_dir])
        assert len(report.ran) == 1 and not report.skipped

    def test_failing_cell_archives_as_evidence_not_resume(
        self, scenario_dir, tmp_path
    ):
        out = str(tmp_path / "grid")
        grid = GridSpec(
            scenarios=["tiny-clean"],
            seeds=[5],
            # An impossible expectation: the gate fails, so the cell
            # must not count as archived for resume purposes.
            variants={"base": {"expect.latency-spike": {"min": 99}}},
        )
        first = run_grid(grid, out, extra_dirs=[scenario_dir])
        assert not first.ok and len(first.failed) == 1
        path = first.failed[0].path
        assert not os.path.exists(path) and os.path.exists(path + ".failed")
        again = run_grid(grid, out, extra_dirs=[scenario_dir])
        assert len(again.failed) == 1 and not again.skipped

    def test_unknown_scenario_fails_only_its_cells(self, scenario_dir, tmp_path):
        grid = GridSpec(scenarios=["tiny-clean", "no-such"], seeds=[5])
        report = run_grid(grid, str(tmp_path / "grid"), extra_dirs=[scenario_dir])
        assert len(report.ran) == 1 and len(report.failed) == 1
        assert "no-such" in report.failed[0].detail
