"""Baseline regression gating: exact invariants + noise-aware perf."""

import pytest

from repro.scenarios import (
    baseline_path,
    compare_scenario,
    default_baseline_dir,
    run_scenario,
)
from repro.scenarios.spec import FaultSpec, ScenarioSpec, TrafficSpec


@pytest.fixture(scope="module")
def spec():
    return ScenarioSpec(
        name="compare-tiny",
        seed=5,
        traffic=TrafficSpec(duration_s=3.0, rate=25.0),
        faults=FaultSpec(profile="lossy-mq"),
    )


@pytest.fixture(scope="module")
def baseline(spec):
    return run_scenario(spec).resultset


class TestGating:
    def test_unchanged_rerun_passes(self, spec, baseline):
        report = compare_scenario(baseline, run_scenario(spec).resultset)
        assert report.ok and not report.regressions

    def test_doubled_fault_rate_fails(self, spec, baseline):
        doubled = run_scenario(
            spec, overrides={"faults.overrides.mq_drop_rate": 0.10}
        )
        report = compare_scenario(baseline, doubled.resultset)
        assert not report.ok
        # The conservation ledger and fault counters move together.
        assert any(name.startswith("ledger.") for name in report.regressions)
        assert "faults.injected_total" in report.regressions

    def test_exact_gating_catches_small_drift_both_directions(self, baseline):
        import copy

        better = copy.deepcopy(baseline)
        name = "scenario.tsdb_points"
        better.metrics[name] = dict(better.metrics[name])
        better.metrics[name]["value"] += 1  # 1 point is way under 15%
        report = compare_scenario(baseline, better)
        assert name in report.regressions

    def test_profiled_runs_gate_wall_shares(self, spec):
        first = run_scenario(spec, profile_stages=True).resultset
        second = run_scenario(spec, profile_stages=True).resultset
        report = compare_scenario(first, second)
        assert any("wall_share" in name for name, *_ in report.rows)


class TestBaselinePaths:
    def test_committed_baselines_exist_for_the_library(self):
        import os

        from repro.scenarios import load_library

        for name in load_library():
            assert os.path.exists(baseline_path(name)), (
                f"missing committed baseline for {name}; regenerate with "
                "`ruru scenario compare --write`"
            )

    def test_env_var_overrides_baseline_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("RURU_SCENARIO_BASELINES", str(tmp_path))
        assert default_baseline_dir() == str(tmp_path)
        assert baseline_path("x").startswith(str(tmp_path))
