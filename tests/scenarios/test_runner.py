"""The scenario runner: determinism, checks, metric stamping."""

import json

import pytest

from repro.scenarios import run_scenario
from repro.scenarios.spec import AnomalyWindowSpec, ScenarioSpec, TrafficSpec


@pytest.fixture(scope="module")
def small_spec():
    return ScenarioSpec(
        name="runner-small",
        description="tiny clean run",
        seed=5,
        traffic=TrafficSpec(duration_s=4.0, rate=25.0),
    )


@pytest.fixture(scope="module")
def flood_spec():
    return ScenarioSpec(
        name="runner-flood",
        seed=5,
        traffic=TrafficSpec(duration_s=8.0, rate=25.0),
        anomalies=(
            AnomalyWindowSpec(
                kind="syn-flood",
                at_s=3.0,
                duration_s=2.0,
                params={"rate_per_s": 1500.0},
            ),
        ),
        expect={"syn-flood": {"min": 1}},
    )


class TestDeterminism:
    def test_same_seed_is_byte_identical(self, small_spec):
        first = run_scenario(small_spec)
        second = run_scenario(small_spec)
        assert json.dumps(first.resultset.metrics, sort_keys=True) == (
            json.dumps(second.resultset.metrics, sort_keys=True)
        )
        assert first.events == second.events

    def test_seed_changes_the_run(self, small_spec):
        from repro.scenarios.runner import build_scenario_generator

        streams = [
            [(p.timestamp_ns, p.data)
             for p in build_scenario_generator(small_spec, seed).packets()]
            for seed in (5, 6)
        ]
        assert streams[0] != streams[1]

    def test_wall_clock_stays_out_of_metrics(self, small_spec):
        result = run_scenario(small_spec)
        assert "elapsed_s" in str(result.resultset.meta["wall"])
        assert not any("wall" in name for name in result.resultset.metrics)


class TestChecks:
    def test_clean_run_passes_all_gates(self, small_spec):
        result = run_scenario(small_spec)
        assert result.ok
        names = {check.name for check in result.checks}
        assert {"survived", "ledger-conserves"} <= names
        assert result.metric("ledger.balance") == 0.0

    def test_expectation_band_gates(self, flood_spec):
        caught = run_scenario(flood_spec)
        assert caught.ok
        assert caught.metric("events.syn-flood") >= 1
        # The same schedule expected NOT to fire fails its band.
        quiet = ScenarioSpec.from_dict(
            {**flood_spec.to_dict(), "expect": {"syn-flood": {"max": 0}}}
        )
        result = run_scenario(quiet)
        assert not result.ok
        failed = [c for c in result.checks if not c.ok]
        assert failed and failed[0].name == "expect.syn-flood"

    def test_metrics_are_exact_and_portable(self, small_spec):
        result = run_scenario(small_spec)
        ledger = result.resultset.metrics["ledger.ingested"]
        assert ledger.get("exact") is True
        assert ledger.get("portable") is True

    def test_cell_coordinates_stamp_the_archive(self, small_spec):
        result = run_scenario(
            small_spec, cell={"scenario": "runner-small", "seed": 5, "variant": "v"}
        )
        assert result.resultset.meta["cell"]["variant"] == "v"
        assert result.resultset.meta["scenario"] == "runner-small"
        assert result.resultset.meta["spec"]["name"] == "runner-small"

    def test_stage_profile_only_when_requested(self, small_spec):
        assert not run_scenario(small_spec).resultset.stage_profile
        profiled = run_scenario(small_spec, profile_stages=True)
        assert profiled.resultset.stage_profile


class TestShardDispatch:
    """Specs with shard.shards > 0 run through ShardedRuntime."""

    def test_failover_scenario_recovers_and_balances(self):
        from repro.scenarios import get_scenario, run_scenario

        result = run_scenario(get_scenario("shard-failover"))
        assert result.ok, [c.render() for c in result.checks]
        assert result.metric("shard.restarts") == 1
        assert result.metric("shard.ledger.lost_at_crash") > 0
        assert result.metric("ledger.balance") == 0
        names = {check.name for check in result.checks}
        assert "shard-recovered" in names
        assert "crash-was-charged" in names

    def test_shard_metrics_are_deterministic(self):
        from repro.scenarios import get_scenario, run_scenario

        spec = get_scenario("shard-failover")
        first = run_scenario(spec).resultset.metrics
        second = run_scenario(spec).resultset.metrics
        assert first == second
