"""Whole-system integration tests: the paper's Fig 2 deployment."""

import pytest

from repro.analytics.service import AnalyticsService
from repro.anomaly.manager import AnomalyManager
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.frontend.dashboard import build_ruru_dashboard
from repro.frontend.map_view import LiveMapView
from repro.frontend.websocket import WebSocketChannel
from repro.geo.builder import GeoDbBuilder
from repro.mq.codec import decode_enriched
from repro.mq.socket import Context
from repro.tsdb.query import Query
from repro.traffic.scenarios import (
    AucklandLaScenario,
    FirewallGlitchInjector,
    SynFloodInjector,
)

NS_PER_S = 1_000_000_000


def _full_stack(generator, observers=None, num_queues=4):
    """Wire pipeline -> analytics -> (tsdb, frontend feed)."""
    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan, country_accuracy=1.0).build()
    service = AnalyticsService(context, geo, asn)
    sub = service.subscribe_frontend()
    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=num_queues),
        sink=service.make_sink(),
        observers=observers,
    )
    return pipeline, service, sub


class TestFullDeployment:
    def test_measurements_flow_to_every_tier(self):
        generator = AucklandLaScenario(
            duration_ns=5 * NS_PER_S, mean_flows_per_s=30, seed=3, diurnal=False
        ).build()
        pipeline, service, sub = _full_stack(generator)
        stats = pipeline.run_packets(generator.packets())
        service.finish()

        assert stats.measurements > 50
        # TSDB tier.
        count = service.tsdb.query(Query("latency", "total_ms", "count")).scalar()
        assert count == stats.measurements
        # Frontend tier: every measurement streamed.
        messages = sub.recv_all()
        assert len(messages) == stats.measurements

        # Live map renders the feed at 30 fps.
        channel = WebSocketChannel()
        view = LiveMapView(channel=channel, fps=30)
        for message in messages:
            measurement = decode_enriched(message.payload[0])
            view.add_measurement(measurement, measurement.timestamp_ns)
            view.tick(measurement.timestamp_ns)
        view.flush_frame(6 * NS_PER_S)
        assert view.frames_sent >= 1
        frames = channel.client_recv_all_json()
        total_arcs = sum(len(frame["arcs"]) for frame in frames)
        assert total_arcs == stats.measurements

    def test_dashboard_reports_nz_us_latency(self):
        generator = AucklandLaScenario(
            duration_ns=5 * NS_PER_S, mean_flows_per_s=40, seed=4, diurnal=False
        ).build()
        pipeline, service, _ = _full_stack(generator)
        pipeline.run_packets(generator.packets())
        service.finish()

        dashboard = build_ruru_dashboard(interval_ns=5 * NS_PER_S)
        results = dashboard.render(service.tsdb)
        mean_panel = next(r for r in results if r.title.startswith("mean"))
        nz_us = mean_panel.groups.get(
            (("dst_country", "US"), ("src_country", "NZ"))
        )
        assert nz_us, "NZ->US traffic must appear on the dashboard"
        mean_ms = nz_us[-1][1]
        # Auckland-LA total RTT centres around 130-220 ms in the model.
        assert 100 < mean_ms < 400


class TestFirewallGlitchEndToEnd:
    def test_glitch_detected_through_full_stack(self):
        glitch = FirewallGlitchInjector(
            window_start_offset_ns=20 * NS_PER_S, window_ns=10 * NS_PER_S
        )
        generator = AucklandLaScenario(
            duration_ns=60 * NS_PER_S, mean_flows_per_s=30, seed=5, diurnal=False
        ).build(injectors=[glitch])
        manager = AnomalyManager()
        pipeline, service, _ = _full_stack(generator)
        service.filters.append(
            lambda m: (manager.observe_measurement(m), True)[1]
        )
        pipeline.run_packets(generator.packets())
        service.finish()

        assert glitch.affected_flows > 0
        events = manager.finish(now_ns=60 * NS_PER_S)
        spikes = [e for e in events if e.kind == "latency-spike"]
        assert spikes, "the 4000 ms firewall glitch must be detected"
        assert any(e.evidence.get("peak_ms", e.evidence.get("observed_ms", 0)) > 3000
                   for e in spikes)

    def test_glitch_visible_as_red_arcs(self):
        glitch = FirewallGlitchInjector(
            window_start_offset_ns=10 * NS_PER_S, window_ns=5 * NS_PER_S
        )
        generator = AucklandLaScenario(
            duration_ns=40 * NS_PER_S, mean_flows_per_s=30, seed=6, diurnal=False
        ).build(injectors=[glitch])
        pipeline, service, sub = _full_stack(generator)
        pipeline.run_packets(generator.packets())
        service.finish()

        view = LiveMapView(arc_ttl_s=100.0, max_arcs_per_frame=10_000)
        last = 0
        for message in sub.recv_all():
            measurement = decode_enriched(message.payload[0])
            view.add_measurement(measurement, measurement.timestamp_ns)
            last = max(last, measurement.timestamp_ns)
        view.flush_frame(last)
        histogram = view.color_histogram()
        assert histogram["red"] > 0, "glitched flows must render red"
        assert histogram["green"] > histogram["red"], (
            "red lines should stand out against a mostly-green map"
        )


class TestSynFloodEndToEnd:
    def test_flood_detected_via_pipeline_observer(self):
        flood = SynFloodInjector(
            flood_start_ns=5 * NS_PER_S, flood_duration_ns=5 * NS_PER_S,
            rate_per_s=2000,
        )
        generator = AucklandLaScenario(
            duration_ns=15 * NS_PER_S, mean_flows_per_s=20, seed=7, diurnal=False
        ).build(injectors=[flood])
        manager = AnomalyManager()
        pipeline, service, _ = _full_stack(
            generator, observers=[manager.observe_packet]
        )
        pipeline.run_packets(generator.packets())
        service.finish()

        events = manager.finish(now_ns=15 * NS_PER_S)
        floods = [e for e in events if e.kind == "syn-flood"]
        assert len(floods) == 1
        assert floods[0].evidence["syn_rate"] > 1000

    def test_flood_does_not_break_measurement(self):
        """Flow-table eviction must bound memory while real flows
        keep being measured through the flood."""
        flood = SynFloodInjector(
            flood_start_ns=0, flood_duration_ns=10 * NS_PER_S, rate_per_s=3000
        )
        generator = AucklandLaScenario(
            duration_ns=10 * NS_PER_S, mean_flows_per_s=20, seed=8, diurnal=False
        ).build(injectors=[flood], keep_specs=True)
        config = PipelineConfig(num_queues=2, flow_table_size=1024)
        pipeline = RuruPipeline(config=config)
        stats = pipeline.run_packets(generator.packets())

        real_flows = [
            s for s in generator.specs
            if s.completes and not s.rst_after_synack
        ]
        # Under eviction pressure some measurements may be lost, but
        # the vast majority must survive.
        assert stats.measurements > 0.9 * len(real_flows)
        for table_size in pipeline.flow_table_occupancy():
            assert table_size <= 1024
