"""Fuzz the wire codec: damaged payloads must fail as CodecError.

The decoders sit directly behind the message bus, where the chaos
profiles (and real networks) deliver truncated and bit-flipped frames.
The contract under test: for *any* mangling of a valid payload — or
arbitrary junk — decoding either succeeds or raises
:class:`CodecError`. It must never leak ``struct.error``,
``IndexError`` or ``UnicodeDecodeError``, because the analytics
service's DLQ routing catches codec failures, not implementation
details.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.enricher import EnrichedMeasurement
from repro.core.latency import LatencyRecord
from repro.mq.codec import (
    CodecError,
    decode_enriched,
    decode_latency_record,
    encode_enriched,
    encode_latency_record,
)

VALID_RECORD = encode_latency_record(
    LatencyRecord(
        src_ip=0x0A010203,
        dst_ip=0x14040506,
        src_port=40000,
        dst_port=443,
        internal_ns=10_000_000,
        external_ns=140_000_000,
        syn_ns=1_000_000_000,
        synack_ns=1_140_000_000,
        ack_ns=1_150_000_000,
        queue_id=3,
        rss_hash=0xDEADBEEF,
    )
)

VALID_ENRICHED = encode_enriched(
    EnrichedMeasurement(
        timestamp_ns=123_456_789,
        internal_ns=5_000_000,
        external_ns=130_000_000,
        src_country="NZ",
        src_city="Auckland",
        src_lat=-36.85,
        src_lon=174.76,
        src_asn=9500,
        dst_country="US",
        dst_city="Los Angeles",
        dst_lat=34.05,
        dst_lon=-118.24,
        dst_asn=7018,
        degraded=True,
    )
)


def _decode_must_be_clean(decoder, data):
    """Decode; any failure must be CodecError, never a leaked internal."""
    try:
        decoder(data)
    except CodecError:
        pass
    # Anything else (struct.error, IndexError, UnicodeDecodeError, ...)
    # propagates and fails the test.


class TestLatencyRecordFuzz:
    @given(cut=st.integers(min_value=0, max_value=len(VALID_RECORD) - 1))
    @settings(max_examples=100)
    def test_every_truncation_point(self, cut):
        _decode_must_be_clean(decode_latency_record, VALID_RECORD[:cut])

    @given(
        position=st.integers(min_value=0, max_value=len(VALID_RECORD) - 1),
        mask=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=200)
    def test_single_bit_flips(self, position, mask):
        mangled = bytearray(VALID_RECORD)
        mangled[position] ^= mask
        _decode_must_be_clean(decode_latency_record, bytes(mangled))

    @given(junk=st.binary(max_size=128))
    @settings(max_examples=200)
    def test_arbitrary_junk(self, junk):
        _decode_must_be_clean(decode_latency_record, junk)

    @given(tail=st.binary(min_size=1, max_size=32))
    @settings(max_examples=100)
    def test_trailing_garbage(self, tail):
        _decode_must_be_clean(decode_latency_record, VALID_RECORD + tail)


class TestEnrichedFuzz:
    @given(cut=st.integers(min_value=0, max_value=len(VALID_ENRICHED) - 1))
    @settings(max_examples=100)
    def test_every_truncation_point(self, cut):
        _decode_must_be_clean(decode_enriched, VALID_ENRICHED[:cut])

    @given(
        position=st.integers(min_value=0, max_value=len(VALID_ENRICHED) - 1),
        mask=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=200)
    def test_single_bit_flips(self, position, mask):
        mangled = bytearray(VALID_ENRICHED)
        mangled[position] ^= mask
        _decode_must_be_clean(decode_enriched, bytes(mangled))

    @given(junk=st.binary(max_size=128))
    @settings(max_examples=200)
    def test_arbitrary_junk(self, junk):
        _decode_must_be_clean(decode_enriched, junk)

    @given(
        cut=st.integers(min_value=1, max_value=len(VALID_ENRICHED) - 1),
        position=st.integers(min_value=0, max_value=len(VALID_ENRICHED) - 2),
        mask=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=200)
    def test_truncate_then_flip(self, cut, position, mask):
        mangled = bytearray(VALID_ENRICHED[:cut])
        mangled[position % len(mangled)] ^= mask
        _decode_must_be_clean(decode_enriched, bytes(mangled))
