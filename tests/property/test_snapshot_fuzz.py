"""Fuzz the snapshot envelope: damage must fail as SnapshotError.

The recovery path trusts :func:`decode_snapshot` completely: whatever
it returns is loaded into flow tables, aggregators and the resilience
ledger. The contract under test mirrors the wire-codec fuzz suite —
for *any* truncation, bit flip or arbitrary junk, decoding either
returns the exact original dictionary or raises
:class:`SnapshotError`. Never partial state, never a leaked
``struct.error`` / ``UnicodeDecodeError`` / ``json.JSONDecodeError``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.codec import SnapshotError, decode_snapshot, encode_snapshot

VALID_STATE = {
    "format": 1,
    "meta": {"profile": "lossy-mq", "seed": 42, "queues": 2},
    "pipeline": {"workers": [{"flows": [[1, 2], [3, 4]]}, {"flows": []}]},
    "service": {"records_in": 120, "now_ns": 4_811_568_885},
    "tsdb_lines": ["latency,pair=NZ-US total_ms=148.2 123456789"],
    "frontend": {"received": 99, "degraded": 3},
}

VALID_BLOB = encode_snapshot(VALID_STATE)


def _decode_must_be_clean(data):
    """Decode; success must be exact, failure must be SnapshotError."""
    try:
        state = decode_snapshot(data)
    except SnapshotError:
        return
    # Anything that decodes must be the genuine article — a mangled
    # blob that "succeeds" into different state would corrupt recovery.
    assert state == VALID_STATE


class TestTruncation:
    @given(cut=st.integers(min_value=0, max_value=len(VALID_BLOB) - 1))
    @settings(max_examples=100)
    def test_every_truncation_point(self, cut):
        _decode_must_be_clean(VALID_BLOB[:cut])


class TestBitFlips:
    @given(
        position=st.integers(min_value=0, max_value=len(VALID_BLOB) - 1),
        mask=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=200)
    def test_single_bit_flips(self, position, mask):
        mangled = bytearray(VALID_BLOB)
        mangled[position] ^= mask
        _decode_must_be_clean(bytes(mangled))

    @given(
        positions=st.lists(
            st.integers(min_value=0, max_value=len(VALID_BLOB) - 1),
            min_size=2,
            max_size=8,
        ),
        mask=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=100)
    def test_multi_byte_corruption(self, positions, mask):
        mangled = bytearray(VALID_BLOB)
        for position in positions:
            mangled[position] ^= mask
        _decode_must_be_clean(bytes(mangled))


class TestJunk:
    @given(junk=st.binary(max_size=256))
    @settings(max_examples=200)
    def test_arbitrary_junk(self, junk):
        _decode_must_be_clean(junk)

    @given(tail=st.binary(min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_trailing_garbage(self, tail):
        _decode_must_be_clean(VALID_BLOB + tail)

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=100)
    def test_junk_behind_valid_header(self, junk):
        _decode_must_be_clean(VALID_BLOB[:17] + junk)


class TestRoundTripProperty:
    @given(
        state=st.dictionaries(
            keys=st.text(min_size=1, max_size=12),
            values=st.recursive(
                st.one_of(
                    st.none(),
                    st.booleans(),
                    st.integers(min_value=-(2**53), max_value=2**53),
                    st.floats(allow_nan=False, allow_infinity=False, width=32),
                    st.text(max_size=24),
                ),
                lambda children: st.one_of(
                    st.lists(children, max_size=4),
                    st.dictionaries(
                        st.text(min_size=1, max_size=8), children, max_size=4
                    ),
                ),
                max_leaves=12,
            ),
            max_size=6,
        )
    )
    @settings(max_examples=150)
    def test_any_json_state_round_trips(self, state):
        assert decode_snapshot(encode_snapshot(state)) == state
