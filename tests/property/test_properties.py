"""Property-based tests on core invariants (hypothesis)."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow_table import canonical_flow_key
from repro.core.latency import LatencyRecord
from repro.dpdk.rss import SYMMETRIC_RSS_KEY, RssHasher, toeplitz_hash
from repro.mq.codec import decode_latency_record, encode_latency_record
from repro.net.addresses import int_to_ip, int_to_ipv6, ip_to_int, ipv6_to_int
from repro.net.packet import build_tcp_packet
from repro.net.parser import PacketParser
from repro.net.tcp import TcpHeader
from repro.tsdb.functions import percentile
from repro.tsdb.line_protocol import format_point, parse_line
from repro.tsdb.point import Point

ipv4_ints = st.integers(min_value=0, max_value=(1 << 32) - 1)
ipv6_ints = st.integers(min_value=0, max_value=(1 << 128) - 1)
ports = st.integers(min_value=0, max_value=65535)
u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestAddressRoundtrips:
    @given(ipv4_ints)
    def test_ipv4_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @given(ipv6_ints)
    def test_ipv6_roundtrip(self, value):
        assert ipv6_to_int(int_to_ipv6(value)) == value


class TestRssProperties:
    @given(ipv4_ints, ipv4_ints, ports, ports)
    @settings(max_examples=50)
    def test_symmetric_hash_invariant(self, src, dst, sport, dport):
        hasher = RssHasher(key=SYMMETRIC_RSS_KEY)
        assert hasher.hash_ipv4_tuple(src, dst, sport, dport) == hasher.hash_ipv4_tuple(
            dst, src, dport, sport
        )

    @given(st.binary(min_size=1, max_size=36))
    @settings(max_examples=50)
    def test_table_hash_matches_reference(self, data):
        hasher = RssHasher(key=SYMMETRIC_RSS_KEY)
        key = (SYMMETRIC_RSS_KEY * 3)[: len(data) + 4]
        assert hasher.hash_bytes(data) == toeplitz_hash(key, data)


class TestFlowKeyProperties:
    @given(ipv4_ints, ports, ipv4_ints, ports, st.booleans())
    def test_canonical_symmetry(self, a_ip, a_port, b_ip, b_port, is_v6):
        forward = canonical_flow_key(a_ip, a_port, b_ip, b_port, is_v6)
        reverse = canonical_flow_key(b_ip, b_port, a_ip, a_port, is_v6)
        assert forward == reverse

    @given(ipv4_ints, ports, ipv4_ints, ports)
    def test_canonical_is_deterministic_orientation(self, a_ip, a_port, b_ip, b_port):
        key = canonical_flow_key(a_ip, a_port, b_ip, b_port)
        assert (key[0], key[1]) <= (key[2], key[3])


class TestCodecProperties:
    @given(
        src=ipv4_ints, dst=ipv4_ints, sport=ports, dport=ports,
        internal=st.integers(min_value=0, max_value=10**12),
        external=st.integers(min_value=0, max_value=10**12),
        base=st.integers(min_value=0, max_value=10**15),
        queue=st.integers(min_value=0, max_value=255),
        rss=u32,
    )
    @settings(max_examples=100)
    def test_latency_record_roundtrip(
        self, src, dst, sport, dport, internal, external, base, queue, rss
    ):
        record = LatencyRecord(
            src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
            internal_ns=internal, external_ns=external,
            syn_ns=base, synack_ns=base + external, ack_ns=base + external + internal,
            queue_id=queue, rss_hash=rss,
        )
        assert decode_latency_record(encode_latency_record(record)) == record


class TestParserTotality:
    @given(st.binary(max_size=128))
    @settings(max_examples=200)
    def test_parser_never_crashes_on_junk(self, data):
        """The hot path must raise ParseError, never anything else."""
        from repro.net.parser import ParseError

        parser = PacketParser(extract_timestamps=True)
        try:
            parser.parse(data, 0)
        except ParseError:
            pass

    @given(
        src=ipv4_ints, dst=ipv4_ints, sport=ports, dport=ports,
        seq=u32, ack=u32,
        flags=st.integers(min_value=0, max_value=255),
        payload=st.binary(max_size=64),
    )
    @settings(max_examples=100)
    def test_build_then_parse_identity(
        self, src, dst, sport, dport, seq, ack, flags, payload
    ):
        packet = build_tcp_packet(
            src, dst, sport, dport, flags, seq=seq, ack=ack,
            payload=payload, timestamp_ns=7, compute_checksum=False,
        )
        parsed = PacketParser().parse(packet.data, 7)
        assert parsed.src_ip == src
        assert parsed.dst_ip == dst
        assert parsed.src_port == sport
        assert parsed.dst_port == dport
        assert parsed.seq == seq
        assert parsed.ack == ack
        assert parsed.flags == flags
        assert parsed.payload_len == len(payload)


class TestTcpHeaderProperties:
    @given(
        sport=ports, dport=ports, seq=u32, ack=u32,
        flags=st.integers(min_value=0, max_value=255),
        window=st.integers(min_value=0, max_value=65535),
        payload=st.binary(max_size=64),
    )
    @settings(max_examples=100)
    def test_pack_unpack_roundtrip(self, sport, dport, seq, ack, flags, window, payload):
        header = TcpHeader(
            src_port=sport, dst_port=dport, seq=seq, ack=ack,
            flags=flags, window=window, payload=payload,
        )
        parsed = TcpHeader.unpack(header.pack())
        assert (parsed.src_port, parsed.dst_port) == (sport, dport)
        assert (parsed.seq, parsed.ack) == (seq, ack)
        assert parsed.flags == flags
        assert parsed.payload == payload


class TestLineProtocolProperties:
    tag_text = st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="\n"),
        min_size=1, max_size=20,
    )

    @given(
        # A leading '#' makes the formatted line a comment, and
        # leading/trailing unicode whitespace is eaten by the line
        # strip — the text format genuinely cannot represent either.
        measurement=tag_text.filter(
            lambda s: not s.startswith("#") and s == s.strip()
        ),
        tag_key=tag_text, tag_value=tag_text,
        field_key=tag_text,
        value=st.floats(allow_nan=False, allow_infinity=False, width=32),
        timestamp=st.integers(min_value=0, max_value=10**18),
    )
    @settings(max_examples=100)
    def test_roundtrip(self, measurement, tag_key, tag_value, field_key, value, timestamp):
        point = Point(
            measurement, timestamp,
            tags={tag_key: tag_value}, fields={field_key: float(value)},
        )
        assert parse_line(format_point(point)) == point


class TestPercentileProperties:
    values = st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1, max_size=50,
    )

    @given(values, st.floats(min_value=0, max_value=100))
    def test_bounded_by_min_max(self, data, q):
        result = percentile(data, q)
        assert min(data) <= result <= max(data)

    @given(values)
    def test_monotone_in_q(self, data):
        qs = [0, 25, 50, 75, 100]
        results = [percentile(data, q) for q in qs]
        assert results == sorted(results)


class TestHandshakeProperty:
    @given(
        external_ms=st.integers(min_value=1, max_value=5000),
        internal_ms=st.integers(min_value=1, max_value=500),
        isn_c=u32, isn_s=u32,
    )
    @settings(max_examples=50)
    def test_measured_equals_constructed(self, external_ms, internal_ms, isn_c, isn_s):
        """For any handshake timing, Ruru recovers exactly the gaps."""
        from repro.core.handshake import HandshakeTracker
        from repro.net.parser import ParsedPacket

        MS = 1_000_000

        def packet(src, dst, sport, dport, flags, t, seq, ack):
            return ParsedPacket(
                src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                flags=flags, seq=seq, ack=ack, payload_len=0, timestamp_ns=t,
            )

        tracker = HandshakeTracker()
        tracker.process(packet(1, 2, 10, 20, 0x02, 0, isn_c, 0))
        tracker.process(packet(
            2, 1, 20, 10, 0x12, external_ms * MS, isn_s, (isn_c + 1) % (1 << 32)
        ))
        record = tracker.process(packet(
            1, 2, 10, 20, 0x10, (external_ms + internal_ms) * MS,
            (isn_c + 1) % (1 << 32), (isn_s + 1) % (1 << 32),
        ))
        assert record is not None
        assert record.external_ns == external_ms * MS
        assert record.internal_ns == internal_ms * MS
