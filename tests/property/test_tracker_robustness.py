"""Adversarial tracker properties: arbitrary packet orderings.

Whatever order, duplication, or interleaving the capture delivers,
two invariants must hold: the tracker never raises, and never emits
more than one measurement per flow — with any emitted measurement
matching the first-SYN/first-SYN-ACK/first-valid-ACK arithmetic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.handshake import HandshakeTracker
from repro.net.parser import ParsedPacket

MS = 1_000_000

SYN, SYNACK, ACK, RST = 0x02, 0x12, 0x10, 0x04


def _packet(flow_id, kind, t_ns):
    src = 0x0A000000 + flow_id
    dst = 0x14000000 + flow_id
    sport, dport = 10_000 + flow_id, 443
    if kind == "syn":
        return ParsedPacket(src_ip=src, dst_ip=dst, src_port=sport,
                            dst_port=dport, flags=SYN, seq=100, ack=0,
                            payload_len=0, timestamp_ns=t_ns)
    if kind == "synack":
        return ParsedPacket(src_ip=dst, dst_ip=src, src_port=dport,
                            dst_port=sport, flags=SYNACK, seq=500, ack=101,
                            payload_len=0, timestamp_ns=t_ns)
    if kind == "ack":
        return ParsedPacket(src_ip=src, dst_ip=dst, src_port=sport,
                            dst_port=dport, flags=ACK, seq=101, ack=501,
                            payload_len=0, timestamp_ns=t_ns)
    return ParsedPacket(src_ip=src, dst_ip=dst, src_port=sport,
                        dst_port=dport, flags=RST, seq=101, ack=0,
                        payload_len=0, timestamp_ns=t_ns)


packet_kinds = st.sampled_from(["syn", "synack", "ack", "rst"])


class TestArbitraryOrderings:
    @given(
        sequence=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # flow id
                packet_kinds,
                st.integers(min_value=0, max_value=10_000),  # time (ms)
            ),
            max_size=60,
        )
    )
    @settings(max_examples=200)
    def test_never_crashes_never_double_counts(self, sequence):
        tracker = HandshakeTracker()
        emitted = {}
        for flow_id, kind, t_ms in sequence:
            record = tracker.process(_packet(flow_id, kind, t_ms * MS))
            if record is not None:
                key = (record.src_ip, record.src_port)
                emitted[key] = emitted.get(key, 0) + 1
                # Components are the documented differences and can
                # never be negative or over the sanity cap.
                assert record.external_ns >= 0
                assert record.internal_ns >= 0
        assert all(count == 1 for count in emitted.values()), (
            "a flow must be measured at most once per tracked handshake"
        )

    @given(
        # Capture-card duplication: each handshake packet repeated
        # 1..4 times, duplicates adjacent to their original (how span
        # ports and merge buffers actually duplicate).
        copies=st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=4),
        ),
        t_synack_ms=st.integers(min_value=2, max_value=1000),
        t_ack_extra_ms=st.integers(min_value=2, max_value=500),
    )
    @settings(max_examples=100)
    def test_adjacent_duplicates_never_change_the_measurement(
        self, copies, t_synack_ms, t_ack_extra_ms
    ):
        t_ack_ms = t_synack_ms + t_ack_extra_ms
        base = [
            ("syn", 0),
            ("synack", t_synack_ms),
            ("ack", t_ack_ms),
        ]
        stream = []
        for (kind, t_ms), count in zip(base, copies):
            for copy in range(count):
                # Duplicates land within a millisecond of the original.
                stream.append(_packet(0, kind, t_ms * MS + copy * 1000))

        tracker = HandshakeTracker()
        records = [
            record for packet in stream
            if (record := tracker.process(packet)) is not None
        ]
        assert len(records) == 1
        record = records[0]
        # The FIRST copy's timestamps define the measurement.
        assert record.external_ns == t_synack_ms * MS
        assert record.internal_ns == (t_ack_ms - t_synack_ms) * MS

    def test_replayed_whole_handshake_counts_as_tuple_reuse(self):
        """A complete duplicated trio *after* completion is
        indistinguishable from 4-tuple reuse and re-measures — the
        documented (and correct) tuple-keyed behaviour."""
        tracker = HandshakeTracker()
        records = []
        for offset_ms in (0, 100):
            for kind, t_ms in (("syn", 0), ("synack", 10), ("ack", 20)):
                record = tracker.process(
                    _packet(0, kind, (offset_ms + t_ms) * MS)
                )
                if record is not None:
                    records.append(record)
        assert len(records) == 2
        assert all(record.external_ns == 10 * MS for record in records)
