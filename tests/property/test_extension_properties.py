"""Property tests for the extension modules (QL, pseudonymizer, tap,
heatmap, CDF)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCdf, ks_distance
from repro.analytics.pseudonymize import PrefixPreservingAnonymizer
from repro.frontend.heatmap import LatencyBuckets
from repro.tsdb.ql import format_query, parse_query
from repro.tsdb.query import Query

identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)
tag_values = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 .-", min_size=1, max_size=12
)
aggregators = st.sampled_from(
    ["mean", "median", "min", "max", "count", "sum", "p95", "p99", "stddev"]
)


class TestQlRoundtrip:
    @given(
        measurement=identifiers,
        field=identifiers,
        aggregator=aggregators,
        tags=st.dictionaries(identifiers, st.lists(tag_values, min_size=1,
                                                   max_size=3), max_size=3),
        group_tags=st.lists(identifiers, max_size=3, unique=True),
        start=st.one_of(st.none(), st.integers(min_value=0, max_value=10**15)),
        window=st.one_of(st.none(), st.integers(min_value=1, max_value=10**12)),
        fill=st.sampled_from(["none", "zero", "previous"]),
    )
    @settings(max_examples=100)
    def test_format_parse_identity(
        self, measurement, field, aggregator, tags, group_tags, start, window, fill
    ):
        original = Query(
            measurement=measurement,
            field=field,
            aggregator=aggregator,
            tag_filters={k: list(v) for k, v in tags.items()},
            group_by_tags=sorted(group_tags),
            start_ns=start,
            end_ns=None if start is None else start + 1000,
            group_by_time_ns=window,
            fill=fill,
        )
        original.validate()
        reparsed = parse_query(format_query(original))
        assert reparsed.measurement == original.measurement
        assert reparsed.field == original.field
        assert reparsed.aggregator == original.aggregator
        assert reparsed.tag_filters == original.tag_filters
        assert sorted(reparsed.group_by_tags) == sorted(original.group_by_tags)
        assert reparsed.start_ns == original.start_ns
        assert reparsed.end_ns == original.end_ns
        assert reparsed.group_by_time_ns == original.group_by_time_ns
        assert reparsed.fill == original.fill


class TestPseudonymizerProperties:
    @given(
        a=st.integers(min_value=0, max_value=(1 << 32) - 1),
        b=st.integers(min_value=0, max_value=(1 << 32) - 1),
        key=st.binary(min_size=1, max_size=16),
    )
    @settings(max_examples=50)
    def test_prefix_preservation_universal(self, a, b, key):
        anonymizer = PrefixPreservingAnonymizer(key=key)
        assert anonymizer.verify_prefix_preservation(a, b)

    @given(
        address=st.integers(min_value=0, max_value=(1 << 32) - 1),
        key=st.binary(min_size=1, max_size=16),
    )
    @settings(max_examples=50)
    def test_deterministic(self, address, key):
        a = PrefixPreservingAnonymizer(key=key)
        b = PrefixPreservingAnonymizer(key=key)
        assert a.anonymize(address) == b.anonymize(address)


class TestHeatmapBucketProperties:
    @given(value=st.floats(min_value=0.0001, max_value=10**6))
    def test_index_always_in_range(self, value):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=10000, count=20)
        assert 0 <= buckets.index_of(value) < 20

    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=10**5), min_size=2, max_size=30
        )
    )
    def test_monotone_indexing(self, values):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=10000, count=16)
        ordered = sorted(values)
        indices = [buckets.index_of(v) for v in ordered]
        assert indices == sorted(indices)


class TestCdfProperties:
    samples = st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1, max_size=50,
    )

    @given(samples)
    def test_cdf_monotone(self, data):
        cdf = EmpiricalCdf(data)
        points = sorted(set(data))
        values = [cdf.evaluate(p) for p in points]
        assert values == sorted(values)
        assert values[-1] == 1.0

    @given(samples, samples)
    def test_ks_bounds(self, a, b):
        distance = ks_distance(a, b)
        assert 0.0 <= distance <= 1.0

    @given(samples)
    def test_ks_identity(self, data):
        assert ks_distance(data, data) == 0.0
