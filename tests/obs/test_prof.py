"""Stage profiler: deterministic accounting, sampling, exports."""

import sys

import pytest

from repro.obs import Telemetry
from repro.obs.prof import DEFAULT_CALL_SAMPLE, StageProfile, StageProfiler


class FakeClock:
    """Advances a fixed step per read, so accounting is exact."""

    def __init__(self, step_ns=1000):
        self.now = 0
        self.step = step_ns

    def __call__(self):
        self.now += self.step
        return self.now


def make_profiler(sample_every=0):
    return StageProfiler(
        sample_every=sample_every, wall=FakeClock(), cpu=FakeClock(step_ns=10)
    )


class TestStageAccounting:
    def test_timer_accumulates_all_planes(self):
        profiler = make_profiler()
        virtual = iter([100, 350])
        with profiler.stage("workers", items=32, now_fn=lambda: next(virtual)):
            pass
        profile = profiler.stages["workers"]
        assert profile.calls == 1
        assert profile.items == 32
        assert profile.wall_ns == 1000  # one fake-clock step inside the timer
        assert profile.cpu_ns == 10
        assert profile.virtual_ns == 250

    def test_repeat_calls_accumulate(self):
        profiler = make_profiler()
        for _ in range(3):
            with profiler.stage("nic", items=8):
                pass
        profile = profiler.stages["nic"]
        assert profile.calls == 3
        assert profile.items == 24
        assert profile.wall_ns == 3000

    def test_derived_rates(self):
        profile = StageProfile("x")
        profile.wall_ns = 2_000_000_000  # 2 s
        profile.items = 1000
        assert profile.packets_per_s == 500.0
        assert profile.ns_per_packet == 2_000_000.0

    def test_rates_zero_safe(self):
        profile = StageProfile("x")
        assert profile.packets_per_s == 0.0
        assert profile.ns_per_packet == 0.0

    def test_summary_is_json_shaped(self):
        profiler = make_profiler()
        with profiler.stage("nic", items=4):
            pass
        summary = profiler.summary()
        assert set(summary) == {"nic"}
        assert summary["nic"]["calls"] == 1
        assert summary["nic"]["items"] == 4
        assert "ns_per_packet" in summary["nic"]

    def test_total_wall_sums_stages(self):
        profiler = make_profiler()
        with profiler.stage("a"):
            pass
        with profiler.stage("b"):
            pass
        assert profiler.total_wall_ns() == 2000


class TestBatchSampling:
    def test_deterministic_batch_selection(self):
        profiler = make_profiler(sample_every=3)
        sampled = []
        for _ in range(9):
            flag = profiler.batch_begin()
            profiler.batch_end(flag)
            sampled.append(flag)
        assert sampled == [False, False, True] * 3
        assert profiler.batches == 9
        assert profiler.batches_sampled == 3

    def test_zero_disables_sampling(self):
        profiler = make_profiler(sample_every=0)
        for _ in range(5):
            assert profiler.batch_begin() is False
            profiler.batch_end(False)
        assert profiler.batches_sampled == 0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            StageProfiler(sample_every=-1)

    def test_rotation_cycles_target_across_sampled_batches(self):
        profiler = make_profiler(sample_every=1)
        targets = []
        for _ in range(6):
            profiler.batch_begin()
            for name in ("a", "b", "c"):
                with profiler.stage(name):
                    pass
            targets.append(profiler._target_index)
            profiler.batch_end(True)
        # First sampled batch defaults to stage 0 (stage count unknown),
        # then the rotation cycles through the three stages.
        assert targets[0] == 0
        assert targets[1:] == [1, 2, 0, 1, 2]

    def test_hook_removed_after_batch(self):
        profiler = StageProfiler(sample_every=1)
        profiler.batch_begin()
        with profiler.stage("only"):
            pass
        profiler.batch_end(True)
        assert sys.getprofile() is None


def _leaf():
    return sum(range(5))


def _mid():
    return _leaf()


class TestCallAttribution:
    def run_sampled_stage(self, profiler, name="workers", fn=_mid):
        profiler.batch_begin()
        with profiler.stage(name):
            fn()
        profiler.batch_end(True)

    def test_self_time_keyed_by_stage_and_stack(self):
        profiler = StageProfiler(sample_every=1)
        self.run_sampled_stage(profiler)
        flat = ["/".join(key) for key in profiler.call_self_ns]
        assert any("workers" in key and "_mid" in key for key in flat)
        assert any("_mid" in key and "_leaf" in key for key in flat)
        assert all(ns >= 0 for ns in profiler.call_self_ns.values())

    def test_attribution_is_deterministic_across_runs(self):
        keys = []
        for _ in range(2):
            profiler = StageProfiler(sample_every=1)
            self.run_sampled_stage(profiler)
            keys.append(sorted(profiler.call_self_ns))
        assert keys[0] == keys[1]

    def test_unsampled_batches_attribute_nothing(self):
        profiler = StageProfiler(sample_every=0)
        flag = profiler.batch_begin()
        with profiler.stage("workers"):
            _mid()
        profiler.batch_end(flag)
        assert profiler.call_self_ns == {}

    def test_only_target_stage_hooked_per_sampled_batch(self):
        profiler = StageProfiler(sample_every=1)
        # Prime the stage count so the rotation has a modulus.
        profiler.batch_begin()
        for name in ("a", "b"):
            with profiler.stage(name):
                _mid()
        profiler.batch_end(True)
        # Next sampled batch targets index 1 -> only "b" attributes.
        before = {k for k in profiler.call_self_ns if k[0] == "a"}
        profiler.batch_begin()
        for name in ("a", "b"):
            with profiler.stage(name):
                _mid()
        profiler.batch_end(True)
        after = {k for k in profiler.call_self_ns if k[0] == "a"}
        assert after == before
        assert any(k[0] == "b" for k in profiler.call_self_ns)


class TestExports:
    def profiled(self):
        profiler = StageProfiler(sample_every=1)
        profiler.batch_begin()
        with profiler.stage("workers", items=10):
            _mid()
        profiler.batch_end(True)
        return profiler

    def test_collapsed_stage_roots_and_calls(self):
        profiler = self.profiled()
        lines = profiler.collapsed().splitlines()
        assert any(line.startswith("ruru;workers ") for line in lines)
        assert any(";_mid_" in line for line in lines)
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack
            assert int(count) >= 1

    def test_collapsed_frames_never_contain_separators(self):
        profiler = StageProfiler()
        with profiler.stage("weird name;stage"):
            pass
        line = profiler.collapsed().splitlines()[0]
        assert line.count(" ") == 1  # frames joined; single count separator
        assert ";stage" not in line.split(" ")[0].removeprefix("ruru;weird")

    def test_render_mentions_stages_and_hot_calls(self):
        profiler = self.profiled()
        text = profiler.render()
        assert "workers" in text
        assert "hot call sites" in text
        assert "_mid" in text

    def test_bookkeeping_pseudo_stage_filtered_from_exports(self):
        profiler = self.profiled()
        profiler.call_self_ns[("(between stages)", "noise (x.py)")] = 10**9
        assert "(between" not in profiler.collapsed()
        assert "(between" not in profiler.render()


class TestRegistryBinding:
    def test_collect_publishes_per_stage_series(self):
        telemetry = Telemetry()
        profiler = telemetry.enable_profiler()
        with profiler.stage("workers", items=100):
            pass
        snapshot = telemetry.registry.snapshot()
        wall = snapshot["ruru_stage_wall_ns_total"]["samples"]
        assert any(entry["labels"] == {"stage": "workers"} for entry in wall)
        rates = snapshot["ruru_stage_packets_per_s"]["samples"]
        assert any(entry["value"] > 0 for entry in rates)
        assert "ruru_prof_batches_sampled_total" in snapshot

    def test_enable_profiler_is_idempotent(self):
        telemetry = Telemetry()
        first = telemetry.enable_profiler(sample_every=4)
        second = telemetry.enable_profiler(sample_every=8)
        assert first is second
        assert first.sample_every == 4

    def test_default_sample_rate(self):
        assert Telemetry().enable_profiler().sample_every == DEFAULT_CALL_SAMPLE
