"""Golden test for the Prometheus text exposition format."""

from repro.obs.registry import MetricsRegistry


def build_fixture_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    offered = registry.counter(
        "ruru_packets_offered_total", help="Frames offered to the NIC."
    )
    offered.inc(1234)
    events = registry.counter(
        "ruru_tracker_events_total", help="Tracker events.", labels=("event",)
    )
    events.labels("syn").inc(10)
    events.labels("synack").inc(9)
    occupancy = registry.gauge(
        "ruru_flow_table_entries", help="Resident handshakes.", labels=("queue",)
    )
    occupancy.labels("0").set(3)
    duration = registry.histogram(
        "ruru_stage_duration_ns",
        help="Stage durations.",
        labels=("stage",),
        buckets=(1000, 1000000),
    )
    duration.labels("worker.poll").observe(500)
    duration.labels("worker.poll").observe(2000)
    return registry


GOLDEN = """\
# HELP ruru_packets_offered_total Frames offered to the NIC.
# TYPE ruru_packets_offered_total counter
ruru_packets_offered_total 1234
# HELP ruru_tracker_events_total Tracker events.
# TYPE ruru_tracker_events_total counter
ruru_tracker_events_total{event="syn"} 10
ruru_tracker_events_total{event="synack"} 9
# HELP ruru_flow_table_entries Resident handshakes.
# TYPE ruru_flow_table_entries gauge
ruru_flow_table_entries{queue="0"} 3
# HELP ruru_stage_duration_ns Stage durations.
# TYPE ruru_stage_duration_ns histogram
ruru_stage_duration_ns_bucket{stage="worker.poll",le="1000"} 1
ruru_stage_duration_ns_bucket{stage="worker.poll",le="1000000"} 2
ruru_stage_duration_ns_bucket{stage="worker.poll",le="+Inf"} 2
ruru_stage_duration_ns_sum{stage="worker.poll"} 2500
ruru_stage_duration_ns_count{stage="worker.poll"} 2
"""


class TestExposition:
    def test_golden(self):
        assert build_fixture_registry().exposition() == GOLDEN

    def test_empty_registry_is_empty_text(self):
        assert MetricsRegistry().exposition() == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("reason",))
        family.labels('quote " slash \\ newline \n').inc()
        line = registry.exposition().splitlines()[-1]
        assert line == 'x_total{reason="quote \\" slash \\\\ newline \\n"} 1'

    def test_help_newlines_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", help="line one\nline two")
        assert "# HELP x_total line one\\nline two" in registry.exposition()

    def test_float_values_preserved(self):
        registry = MetricsRegistry()
        registry.gauge("share").set(0.25)
        assert "share 0.25" in registry.exposition()
