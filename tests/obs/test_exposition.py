"""Golden test for the Prometheus text exposition format."""

from repro.obs.registry import MetricsRegistry


def build_fixture_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    offered = registry.counter(
        "ruru_packets_offered_total", help="Frames offered to the NIC."
    )
    offered.inc(1234)
    events = registry.counter(
        "ruru_tracker_events_total", help="Tracker events.", labels=("event",)
    )
    events.labels("syn").inc(10)
    events.labels("synack").inc(9)
    occupancy = registry.gauge(
        "ruru_flow_table_entries", help="Resident handshakes.", labels=("queue",)
    )
    occupancy.labels("0").set(3)
    duration = registry.histogram(
        "ruru_stage_duration_ns",
        help="Stage durations.",
        labels=("stage",),
        buckets=(1000, 1000000),
    )
    duration.labels("worker.poll").observe(500)
    duration.labels("worker.poll").observe(2000)
    return registry


GOLDEN = """\
# HELP ruru_packets_offered_total Frames offered to the NIC.
# TYPE ruru_packets_offered_total counter
ruru_packets_offered_total 1234
# HELP ruru_tracker_events_total Tracker events.
# TYPE ruru_tracker_events_total counter
ruru_tracker_events_total{event="syn"} 10
ruru_tracker_events_total{event="synack"} 9
# HELP ruru_flow_table_entries Resident handshakes.
# TYPE ruru_flow_table_entries gauge
ruru_flow_table_entries{queue="0"} 3
# HELP ruru_stage_duration_ns Stage durations.
# TYPE ruru_stage_duration_ns histogram
ruru_stage_duration_ns_bucket{stage="worker.poll",le="1000"} 1
ruru_stage_duration_ns_bucket{stage="worker.poll",le="1000000"} 2
ruru_stage_duration_ns_bucket{stage="worker.poll",le="+Inf"} 2
ruru_stage_duration_ns_sum{stage="worker.poll"} 2500
ruru_stage_duration_ns_count{stage="worker.poll"} 2
"""


class TestExposition:
    def test_golden(self):
        assert build_fixture_registry().exposition() == GOLDEN

    def test_empty_registry_is_empty_text(self):
        assert MetricsRegistry().exposition() == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("reason",))
        family.labels('quote " slash \\ newline \n').inc()
        line = registry.exposition().splitlines()[-1]
        assert line == 'x_total{reason="quote \\" slash \\\\ newline \\n"} 1'

    def test_help_newlines_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", help="line one\nline two")
        assert "# HELP x_total line one\\nline two" in registry.exposition()

    def test_float_values_preserved(self):
        registry = MetricsRegistry()
        registry.gauge("share").set(0.25)
        assert "share 0.25" in registry.exposition()


def _parse_labels(line):
    """Parse one exposition line's label block back into a dict,
    honouring the text-format escapes (\\\\, \\", \\n)."""
    import re

    body = line[line.index("{") + 1 : line.rindex("}")]
    labels = {}
    for match in re.finditer(r'(\w+)="((?:\\.|[^"\\])*)"', body):
        raw = match.group(2)
        value = (
            raw.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        labels[match.group(1)] = value
    return labels


class TestEscapingRoundTrip:
    """Regression net for the label escaping rules: every value a
    scraper could parse back must equal what was recorded."""

    HOSTILE = [
        'plain',
        'with "quotes"',
        "back\\slash",
        "new\nline",
        'all \\ of " them \n at once',
        "trailing backslash \\",
        '{"json": "value"}',
    ]

    def test_hostile_values_round_trip(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("reason",))
        for value in self.HOSTILE:
            family.labels(value).inc()
        lines = [
            line
            for line in registry.exposition().splitlines()
            if line.startswith("x_total{")
        ]
        assert len(lines) == len(self.HOSTILE)
        parsed = [_parse_labels(line)["reason"] for line in lines]
        assert parsed == self.HOSTILE

    def test_escaped_lines_stay_single_line(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("r",)).labels("a\nb\nc").inc()
        exposition = registry.exposition()
        for line in exposition.splitlines():
            if line.startswith("x_total{"):
                assert '\\n' in line

    def test_histogram_label_values_escaped_too(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_ns", labels=("stage",), buckets=(10,))
        hist.labels('s"1"').observe(5)
        for line in registry.exposition().splitlines():
            if "h_ns" in line and "{" in line:
                assert '\\"' in line
