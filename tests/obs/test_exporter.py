"""Self-monitoring exporter tests."""

import pytest

from repro.obs import Telemetry
from repro.obs.exporter import TelemetryExporter
from repro.obs.registry import MetricsRegistry
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.query import Query

NS_PER_S = 1_000_000_000


def make_registry():
    registry = MetricsRegistry()
    registry.counter("ruru_demo_total", help="demo").inc(5)
    registry.gauge("ruru_demo_depth", labels=("queue",)).labels("0").set(2)
    return registry


class TestExport:
    def test_counters_become_points(self):
        tsdb = TimeSeriesDatabase()
        exporter = TelemetryExporter(make_registry(), tsdb)
        written = exporter.export(now_ns=NS_PER_S)
        assert written == 2
        assert tsdb.query(Query("ruru_demo_total", "value", "last")).scalar() == 5
        assert sorted(tsdb.measurements()) == ["ruru_demo_depth", "ruru_demo_total"]

    def test_labels_become_tags(self):
        tsdb = TimeSeriesDatabase()
        TelemetryExporter(make_registry(), tsdb).export(now_ns=0)
        assert tsdb.tag_values("ruru_demo_depth", "queue") == ["0"]

    def test_histogram_exports_sum_and_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("ruru_demo_ns", buckets=(10, 100))
        hist.observe(7)
        hist.observe(70)
        tsdb = TimeSeriesDatabase()
        TelemetryExporter(registry, tsdb).export(now_ns=0)
        assert tsdb.query(Query("ruru_demo_ns", "count", "last")).scalar() == 2
        assert tsdb.query(Query("ruru_demo_ns", "sum", "last")).scalar() == 77

    def test_series_distinct_from_latency_measurements(self):
        tsdb = TimeSeriesDatabase()
        from repro.tsdb.point import Point

        tsdb.write(Point("latency", 0, fields={"total_ms": 1.0}))
        exporter = TelemetryExporter(make_registry(), tsdb)
        exporter.export(now_ns=0)
        assert "latency" not in exporter.series_names()
        assert set(exporter.series_names()) == {"ruru_demo_depth", "ruru_demo_total"}


class TestInterval:
    def test_maybe_export_respects_interval(self):
        tsdb = TimeSeriesDatabase()
        exporter = TelemetryExporter(make_registry(), tsdb, interval_ns=NS_PER_S)
        assert exporter.maybe_export(0) > 0
        assert exporter.maybe_export(NS_PER_S // 2) == 0
        assert exporter.maybe_export(NS_PER_S) > 0
        assert exporter.exports == 2

    def test_interval_is_configurable(self):
        tsdb = TimeSeriesDatabase()
        exporter = TelemetryExporter(
            make_registry(), tsdb, interval_ns=10 * NS_PER_S
        )
        exporter.maybe_export(0)
        for second in range(1, 10):
            assert exporter.maybe_export(second * NS_PER_S) == 0
        assert exporter.maybe_export(10 * NS_PER_S) > 0

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetryExporter(make_registry(), TimeSeriesDatabase(), interval_ns=0)


class TestTelemetryBundle:
    def test_tick_and_flush_drive_exporter(self):
        telemetry = Telemetry()
        telemetry.registry.counter("ruru_demo_total").inc()
        tsdb = TimeSeriesDatabase()
        telemetry.export_to(tsdb, interval_ns=NS_PER_S)
        assert telemetry.tick(0) > 0
        assert telemetry.tick(1) == 0
        assert telemetry.flush(2) > 0  # flush exports unconditionally
        assert telemetry.exporter.exports == 2

    def test_tick_without_exporter_is_noop(self):
        assert Telemetry().tick(0) == 0
        assert Telemetry().flush(0) == 0


class TestEdgeCases:
    def test_empty_registry_scrape_writes_nothing(self):
        tsdb = TimeSeriesDatabase()
        exporter = TelemetryExporter(MetricsRegistry(), tsdb)
        assert exporter.export(now_ns=0) == 0
        assert tsdb.measurements() == []
        assert exporter.exports == 1  # the (empty) export still counted

    def test_zero_observation_histogram_exports_zero_counts(self):
        registry = MetricsRegistry()
        registry.histogram("ruru_empty_ns", buckets=(10, 100))
        tsdb = TimeSeriesDatabase()
        TelemetryExporter(registry, tsdb).export(now_ns=0)
        assert tsdb.query(Query("ruru_empty_ns", "count", "last")).scalar() == 0
        assert tsdb.query(Query("ruru_empty_ns", "sum", "last")).scalar() == 0

    def test_concurrent_scrape_during_mutation(self):
        """Scrapes racing metric updates (the checkpoint path snapshots
        state while stages keep counting) must never crash or observe
        torn families."""
        import threading

        registry = MetricsRegistry()
        tsdb = TimeSeriesDatabase()
        exporter = TelemetryExporter(registry, tsdb)
        events = registry.counter("ruru_events_total", labels=("kind",))
        errors = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                try:
                    exporter.export(now_ns=0)
                    registry.exposition()
                    registry.snapshot()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        thread = threading.Thread(target=scrape)
        thread.start()
        try:
            for index in range(2000):
                events.labels(f"kind{index % 50}").inc()
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
        registry.collect()
        total = sum(
            child.value
            for _, child in registry.family("ruru_events_total").samples()
        )
        assert total == 2000
