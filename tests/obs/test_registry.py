"""Metrics registry primitives: counters, gauges, histograms, labels."""

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(3)
        gauge.dec(5)
        assert gauge.value == 8


class TestHistogram:
    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram([1, 1, 2])
        with pytest.raises(ValueError):
            Histogram([])

    def test_bucket_boundaries_are_inclusive(self):
        # Prometheus `le` semantics: a sample equal to a bound counts
        # into that bound's bucket.
        hist = Histogram([10, 100])
        hist.observe(10)
        hist.observe(11)
        hist.observe(100)
        hist.observe(101)
        assert hist.bucket_counts == [1, 2, 1]
        assert hist.cumulative_counts() == [1, 3, 4]
        assert hist.count == 4
        assert hist.sum == 10 + 11 + 100 + 101

    def test_underflow_lands_in_first_bucket(self):
        hist = Histogram([10, 100])
        hist.observe(0)
        assert hist.bucket_counts == [1, 0, 0]


class TestLabels:
    def test_same_values_resolve_same_child(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("queue",))
        a = family.labels("0")
        b = family.labels(queue="0")
        assert a is b
        a.inc()
        assert family.labels("0").value == 1

    def test_cardinality_grows_per_distinct_label_set(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("queue", "dir"))
        for queue in range(4):
            for direction in ("in", "out"):
                family.labels(str(queue), direction).inc()
        assert family.cardinality() == 8

    def test_wrong_label_count_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("queue",))
        with pytest.raises(ValueError):
            family.labels("0", "extra")
        with pytest.raises(ValueError):
            family.labels()

    def test_unknown_keyword_label_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("queue",))
        with pytest.raises(ValueError):
            family.labels(qeueu="0")

    def test_label_values_coerced_to_strings(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("queue",))
        assert family.labels(3) is family.labels("3")


class TestRegistry:
    def test_unlabeled_family_returns_child_directly(self):
        registry = MetricsRegistry()
        counter = registry.counter("plain_total")
        counter.inc()
        assert registry.family("plain_total").unlabeled.value == 1

    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", help="first")
        b = registry.counter("x_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("queue",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("reason",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("1starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("has space")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels=("bad-label",))

    def test_collector_runs_on_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live_value")
        source = {"v": 7}
        registry.register_collector(lambda: gauge.set(source["v"]))
        assert registry.snapshot()["live_value"]["samples"][0]["value"] == 7
        source["v"] = 9
        assert registry.snapshot()["live_value"]["samples"][0]["value"] == 9

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help="a counter").inc(2)
        registry.histogram("h", buckets=(1, 2)).observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["c_total"] == {
            "type": "counter",
            "help": "a counter",
            "samples": [{"labels": {}, "value": 2}],
        }
        hist = snapshot["h"]["samples"][0]
        assert hist["count"] == 1
        assert hist["sum"] == 1.5
        assert hist["buckets"] == {"1": 0, "2": 1, "+Inf": 1}
