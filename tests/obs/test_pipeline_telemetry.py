"""End-to-end telemetry: the wired pipeline reports through one registry."""

from repro.analytics.service import AnalyticsService
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.geo.builder import GeoDbBuilder
from repro.mq.socket import Context
from repro.obs import Telemetry
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.query import Query

NS_PER_S = 1_000_000_000


def run_instrumented(packets, export_interval_ns=NS_PER_S):
    telemetry = Telemetry()
    tsdb = TimeSeriesDatabase()
    telemetry.export_to(tsdb, interval_ns=export_interval_ns)
    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=4), telemetry=telemetry
    )
    stats = pipeline.run_packets(packets)
    telemetry.flush(pipeline.clock.now_ns)
    return telemetry, pipeline, stats, tsdb


class TestRegistryIsSourceOfTruth:
    def test_counters_match_pipeline_stats(self, small_workload):
        _, packets = small_workload
        telemetry, pipeline, stats, _ = run_instrumented(packets)
        snapshot = telemetry.registry.snapshot()

        def value(name):
            return snapshot[name]["samples"][0]["value"]

        assert value("ruru_packets_offered_total") == stats.packets_offered
        assert value("ruru_packets_queued_total") == stats.packets_queued
        assert value("ruru_nic_drops_total") == stats.nic_drops
        assert value("ruru_measurements_total") == stats.measurements
        assert value("ruru_nic_rx_packets_total") == pipeline.nic.stats.ipackets

    def test_tracker_events_cover_every_stats_field(self, small_workload):
        _, packets = small_workload
        telemetry, pipeline, stats, _ = run_instrumented(packets)
        family = telemetry.registry.family("ruru_tracker_events_total")
        telemetry.registry.collect()
        by_event = {
            labels[0]: child.value for labels, child in family.samples()
        }
        for field_name in stats.tracker.__dataclass_fields__:
            assert by_event[field_name] == getattr(stats.tracker, field_name)

    def test_per_queue_worker_counters(self, small_workload):
        _, packets = small_workload
        telemetry, pipeline, stats, _ = run_instrumented(packets)
        telemetry.registry.collect()
        family = telemetry.registry.family("ruru_worker_packets_processed_total")
        total = sum(child.value for _, child in family.samples())
        assert total == stats.packets_processed == stats.packets_queued

    def test_exposition_has_at_least_fifteen_series(self, small_workload):
        _, packets = small_workload
        telemetry, _, _, _ = run_instrumented(packets)
        text = telemetry.registry.exposition()
        sample_lines = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert len(sample_lines) >= 15
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert len(type_lines) >= 15


class TestDeterministicTraces:
    def test_same_workload_same_spans(self, small_workload):
        _, packets = small_workload

        def trace_shape(telemetry):
            return [
                (span.name, span.start_ns, span.end_ns)
                for root in telemetry.tracer.recent()
                for span in root.walk()
            ]

        first, _, _, _ = run_instrumented(packets)
        second, _, _, _ = run_instrumented(packets)
        shape = trace_shape(first)
        assert shape == trace_shape(second)
        assert shape  # traces were actually recorded

    def test_expected_stages_traced(self, small_workload):
        _, packets = small_workload
        telemetry, _, _, _ = run_instrumented(packets)
        stages = set(telemetry.tracer.stage_names())
        assert {
            "nic.receive",
            "pipeline.drain",
            "worker.poll",
            "worker.parse",
            "worker.track",
            "flow_table.sweep",
        } <= stages


class TestSelfMonitoringExport:
    def test_snapshots_written_on_interval(self, small_workload):
        # The 5 s workload at a 1 s interval gives multiple snapshots.
        _, packets = small_workload
        telemetry, _, _, tsdb = run_instrumented(packets)
        assert telemetry.exporter.exports >= 3
        result = tsdb.query(Query("ruru_packets_offered_total", "value", "last"))
        assert result.scalar() > 0

    def test_interval_configurable(self, small_workload):
        _, packets = small_workload
        coarse, _, _, _ = run_instrumented(
            packets, export_interval_ns=100 * NS_PER_S
        )
        fine, _, _, _ = run_instrumented(packets, export_interval_ns=NS_PER_S)
        assert coarse.exporter.exports < fine.exporter.exports


class TestAnalyticsTelemetry:
    def test_full_deployment_shares_one_registry(self, small_workload):
        generator, packets = small_workload
        context = Context()
        geo, asn = GeoDbBuilder(plan=generator.plan).build()
        # A deep ring so early mq.publish roots survive the analytics
        # spans emitted later by service.finish().
        telemetry = Telemetry(max_traces=1 << 16)
        service = AnalyticsService(context, geo, asn, telemetry=telemetry)
        telemetry.export_to(service.tsdb)
        pipeline = RuruPipeline(
            config=PipelineConfig(num_queues=4),
            sink=service.make_sink(),
            telemetry=telemetry,
        )
        # Use the fixture's materialized list: calling packets() again
        # would grow the session-scoped generator's spec history.
        stats = pipeline.run_packets(packets)
        service.finish()
        telemetry.flush(pipeline.clock.now_ns)

        snapshot = telemetry.registry.snapshot()

        def value(name):
            return snapshot[name]["samples"][0]["value"]

        assert value("ruru_mq_push_sent_total") == stats.measurements
        assert value("ruru_analytics_records_in_total") == stats.measurements
        assert value("ruru_analytics_enriched_total") == service.enriched_count
        assert value("ruru_tsdb_points") == service.tsdb.total_points()
        stages = set(telemetry.tracer.stage_names())
        assert {"mq.publish", "analytics.enrich", "analytics.write"} <= stages
