"""Resultset archive: metadata stamping, round-trip, noise-aware diff."""

import json

import pytest

from repro.obs.bench import (
    RESULTSET_SCHEMA,
    Resultset,
    collect_meta,
    compare,
    load_resultset,
    stage_profile_metrics,
)
from repro.obs.prof import StageProfiler


def make_resultset(value=100.0, platform_name="linux-a", **entry):
    rs = Resultset("bench", meta={"git_rev": "abc", "platform": platform_name})
    rs.record("pipeline.packets_per_s", value, unit="packets/s", **entry)
    return rs


class TestMeta:
    def test_collect_meta_stamps_environment(self, monkeypatch):
        monkeypatch.setenv("RURU_GIT_REV", "deadbeef")
        meta = collect_meta(seed=17, config={"rate": 60})
        assert meta["git_rev"] == "deadbeef"
        assert meta["seed"] == 17
        assert meta["config"] == {"rate": 60}
        assert meta["platform"]
        assert meta["python"]

    def test_git_rev_falls_back_to_repo(self, monkeypatch):
        monkeypatch.delenv("RURU_GIT_REV", raising=False)
        rev = collect_meta()["git_rev"]
        # Either a real rev (in a checkout) or the explicit sentinel.
        assert rev == "unknown" or len(rev) == 40


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        rs = make_resultset(noise=0.2)
        rs.stage_profile = {"nic": {"wall_ns": 10}}
        path = rs.write(str(tmp_path / "deep" / "out.json"))
        loaded = load_resultset(path)
        assert loaded.name == "bench"
        assert loaded.meta["git_rev"] == "abc"
        assert loaded.metrics["pipeline.packets_per_s"]["noise"] == 0.2
        assert loaded.stage_profile == {"nic": {"wall_ns": 10}}

    def test_schema_is_stamped(self, tmp_path):
        path = make_resultset().write(str(tmp_path / "out.json"))
        with open(path) as handle:
            assert json.load(handle)["schema"] == RESULTSET_SCHEMA

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            Resultset.from_dict({"schema": 999, "name": "x"})

    def test_rerecording_overwrites(self):
        rs = make_resultset(value=1.0)
        rs.record("pipeline.packets_per_s", 2.0)
        assert rs.metrics["pipeline.packets_per_s"]["value"] == 2.0


class TestStageProfileMetrics:
    def summary(self):
        return {
            "workers": {"wall_ns": 900_000, "ns_per_packet": 9000.0},
            "mq": {"wall_ns": 100, "ns_per_packet": 10.0},
            "idle": {"wall_ns": 99_900, "ns_per_packet": 0.0},
        }

    def test_cost_and_share_per_stage(self):
        metrics = stage_profile_metrics(self.summary())
        assert metrics["stage.workers.ns_per_packet"]["value"] == 9000.0
        assert not metrics["stage.workers.ns_per_packet"]["higher_is_better"]
        share = metrics["stage.workers.wall_share"]
        assert share["portable"] is True
        assert share["value"] == pytest.approx(0.9, abs=0.001)
        # Zero-cost stages get a share but no cost metric.
        assert "stage.idle.ns_per_packet" not in metrics
        assert "stage.idle.wall_share" in metrics

    def test_noise_floors(self):
        metrics = stage_profile_metrics(self.summary())
        # Sub-100ns cost: timer granularity, wide noise.
        assert metrics["stage.mq.ns_per_packet"]["noise"] == 0.5
        assert "noise" not in metrics["stage.workers.ns_per_packet"]
        # Tiny share: the ±2pp absolute floor dominates relative noise.
        assert metrics["stage.mq.wall_share"]["noise"] > 1.0
        assert metrics["stage.workers.wall_share"]["noise"] < 0.05

    def test_record_stage_profile_attaches_and_flattens(self):
        rs = Resultset("bench", meta={})
        rs.record_stage_profile(self.summary())
        assert rs.stage_profile["workers"]["wall_ns"] == 900_000
        assert "stage.workers.wall_share" in rs.metrics


class TestCompare:
    def test_identical_resultsets_pass(self):
        report = compare(make_resultset(), make_resultset())
        assert report.ok
        assert report.rows[0][4] == "ok"

    def test_small_drift_within_threshold_passes(self):
        report = compare(make_resultset(100), make_resultset(92))
        assert report.ok

    def test_regression_beyond_threshold_fails(self):
        report = compare(make_resultset(100), make_resultset(80))
        assert not report.ok
        assert report.regressions == ["pipeline.packets_per_s"]

    def test_improvement_is_reported_not_failed(self):
        report = compare(make_resultset(100), make_resultset(150))
        assert report.ok
        assert report.improvements == ["pipeline.packets_per_s"]

    def test_lower_is_better_direction(self):
        base = Resultset("b", meta={"platform": "p"})
        base.record("cost", 100, higher_is_better=False)
        worse = Resultset("c", meta={"platform": "p"})
        worse.record("cost", 200, higher_is_better=False)
        assert not compare(base, worse).ok
        assert compare(worse, base).ok  # cheaper is an improvement

    def test_per_metric_noise_widens_tolerance(self):
        base = make_resultset(100, noise=0.5)
        report = compare(base, make_resultset(60))
        assert report.ok  # -40% inside the metric's own 50% noise

    def test_added_and_removed_metrics_are_informational(self):
        base, current = make_resultset(), make_resultset()
        current.record("new.metric", 1.0)
        base.record("old.metric", 1.0)
        report = compare(base, current)
        statuses = {row[0]: row[4] for row in report.rows}
        assert statuses["old.metric"] == "removed"
        assert statuses["new.metric"] == "added"
        assert report.ok

    def test_cross_platform_absolute_metric_is_advisory(self):
        base = make_resultset(100, platform_name="linux-a")
        current = make_resultset(50, platform_name="linux-b")
        report = compare(base, current)
        assert report.ok
        assert report.advisories == ["pipeline.packets_per_s"]

    def test_cross_platform_portable_metric_still_gates(self):
        base = Resultset("b", meta={"platform": "linux-a"})
        base.metrics["stage.w.wall_share"] = {
            "value": 0.4, "higher_is_better": False, "portable": True,
        }
        current = Resultset("c", meta={"platform": "linux-b"})
        current.metrics["stage.w.wall_share"] = {
            "value": 0.8, "higher_is_better": False, "portable": True,
        }
        assert not compare(base, current).ok

    def test_zero_baseline_never_divides(self):
        base = make_resultset(0.0)
        assert compare(base, make_resultset(0.0)).ok
        # A jump off a zero baseline of a higher-is-better metric is an
        # improvement, not a regression (and must not divide by zero).
        report = compare(base, make_resultset(5.0))
        assert report.ok
        assert report.improvements == ["pipeline.packets_per_s"]

    def test_render_shows_verdict_and_platforms(self):
        report = compare(make_resultset(100), make_resultset(80))
        text = report.render()
        assert "REGRESSED" in text
        assert "abc" in text
        assert "pipeline.packets_per_s" in text


class TestEndToEnd:
    def profiled_summary(self, slow=1):
        profiler = StageProfiler(sample_every=0, wall=self.clock(200_000 * slow))
        for _ in range(4):
            with profiler.stage("workers", items=100):
                pass
        profiler._wall = self.clock(50_000)
        for _ in range(4):
            with profiler.stage("nic", items=100):
                pass
        return profiler.summary()

    @staticmethod
    def clock(step):
        state = {"now": 0}

        def read():
            state["now"] += step
            return state["now"]

        return read

    def test_detects_injected_stage_slowdown(self):
        base = Resultset("base", meta={"platform": "p"})
        base.record_stage_profile(self.profiled_summary())
        slowed = Resultset("cur", meta={"platform": "p"})
        slowed.record_stage_profile(self.profiled_summary(slow=2))
        report = compare(base, slowed)
        assert not report.ok
        assert "stage.workers.ns_per_packet" in report.regressions

    def test_unchanged_rerun_passes(self):
        base = Resultset("base", meta={"platform": "p"})
        base.record_stage_profile(self.profiled_summary())
        rerun = Resultset("cur", meta={"platform": "p"})
        rerun.record_stage_profile(self.profiled_summary())
        assert compare(base, rerun).ok
