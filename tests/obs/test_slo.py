"""Declarative SLO evaluation against the metrics registry."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    Slo,
    evaluate_slos,
    slos_from_dict,
    summarize_slos,
)


def ratio_slo(bound=0.01, kind="max"):
    return Slo(
        name="drop-rate",
        description="drops per offered frame",
        source=("ratio", "drops_total", "offered_total"),
        bound=bound,
        kind=kind,
    )


class TestEvaluation:
    def test_ratio_within_bound_is_ok(self):
        registry = MetricsRegistry()
        registry.counter("offered_total").inc(1000)
        registry.counter("drops_total").inc(5)
        (result,) = evaluate_slos(registry, [ratio_slo()])
        assert result.status == "ok"
        assert result.observed == pytest.approx(0.005)
        assert result.ok

    def test_ratio_over_bound_is_violated(self):
        registry = MetricsRegistry()
        registry.counter("offered_total").inc(100)
        registry.counter("drops_total").inc(50)
        (result,) = evaluate_slos(registry, [ratio_slo()])
        assert result.status == "violated"
        assert not result.ok

    def test_missing_series_is_skipped_not_violated(self):
        (result,) = evaluate_slos(MetricsRegistry(), [ratio_slo()])
        assert result.status == "skipped"
        assert result.observed is None
        assert result.ok  # skipped never fails a gate

    def test_zero_denominator_reads_as_zero(self):
        registry = MetricsRegistry()
        registry.counter("offered_total")
        registry.counter("drops_total")
        (result,) = evaluate_slos(registry, [ratio_slo()])
        assert result.observed == 0.0
        assert result.status == "ok"

    def test_min_kind_enforces_floor(self):
        registry = MetricsRegistry()
        registry.gauge("rate").set(5)
        slo = Slo("floor", "", ("sum", "rate"), bound=10, kind="min")
        (result,) = evaluate_slos(registry, [slo])
        assert result.status == "violated"

    def test_sum_with_label_filter(self):
        registry = MetricsRegistry()
        family = registry.gauge("rate", labels=("stage",))
        family.labels("workers").set(100)
        family.labels("nic").set(900)
        slo = Slo("w", "", ("sum", "rate", {"stage": "workers"}), bound=50, kind="min")
        (result,) = evaluate_slos(registry, [slo])
        assert result.observed == 100.0

    def test_label_filter_without_match_is_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("rate", labels=("stage",)).labels("nic").set(900)
        slo = Slo("w", "", ("sum", "rate", {"stage": "workers"}), bound=50, kind="min")
        (result,) = evaluate_slos(registry, [slo])
        assert result.status == "skipped"

    def test_quantile_interpolates_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(100, 200, 400))
        for value in (50, 150, 150, 390):
            hist.observe(value)
        slo = Slo("p50", "", ("quantile", "lat", 0.5), bound=200)
        (result,) = evaluate_slos(registry, [slo])
        assert 100 <= result.observed <= 200
        assert result.status == "ok"

    def test_quantile_on_empty_histogram_is_skipped(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(100,))
        slo = Slo("p99", "", ("quantile", "lat", 0.99), bound=100)
        (result,) = evaluate_slos(registry, [slo])
        assert result.status == "skipped"

    def test_collectors_run_before_evaluation(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("rate")
        registry.register_collector(lambda: gauge.set(42))
        slo = Slo("r", "", ("sum", "rate"), bound=1, kind="min")
        (result,) = evaluate_slos(registry, [slo])
        assert result.observed == 42.0

    def test_default_slos_all_skip_on_empty_registry(self):
        results = evaluate_slos(MetricsRegistry(), DEFAULT_SLOS)
        assert len(results) == len(DEFAULT_SLOS)
        assert all(r.status == "skipped" for r in results)


class TestValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Slo("x", "", ("sum", "m"), bound=1, kind="exactly")

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError):
            Slo("x", "", ("median", "m"), bound=1)


class TestFromDict:
    def test_parses_all_source_kinds(self):
        slos = slos_from_dict(
            {
                "a": {"ratio": ["n", "d"], "max": 0.1},
                "b": {"sum": "m", "min": 5, "unit": "pkt/s"},
                "c": {"sum": ["m", {"stage": "workers"}], "min": 1},
                "d": {"quantile": ["h", 0.99], "max": 100},
            }
        )
        by_name = {slo.name: slo for slo in slos}
        assert by_name["a"].source == ("ratio", "n", "d")
        assert by_name["b"].kind == "min"
        assert by_name["b"].unit == "pkt/s"
        assert by_name["c"].source == ("sum", "m", {"stage": "workers"})
        assert by_name["d"].source == ("quantile", "h", 0.99)

    def test_missing_source_or_bound_rejected(self):
        with pytest.raises(ValueError):
            slos_from_dict({"x": {"max": 1}})
        with pytest.raises(ValueError):
            slos_from_dict({"x": {"sum": "m"}})
        with pytest.raises(ValueError):
            slos_from_dict({"x": {"sum": "m", "ratio": ["a", "b"], "max": 1}})


class TestReporting:
    def test_summary_keys_and_values(self):
        registry = MetricsRegistry()
        registry.counter("offered_total").inc(10)
        registry.counter("drops_total").inc(5)
        results = evaluate_slos(
            registry,
            [ratio_slo(bound=0.01), Slo("absent", "", ("sum", "nope"), bound=1)],
        )
        summary = summarize_slos(results)
        assert summary["slo.drop-rate"].startswith("violated")
        assert summary["slo.absent"] == "skipped"

    def test_render_is_operator_readable(self):
        registry = MetricsRegistry()
        registry.counter("offered_total").inc(100)
        registry.counter("drops_total").inc(0)
        (result,) = evaluate_slos(registry, [ratio_slo()])
        text = result.render()
        assert "drop-rate" in text
        assert "ok" in text
        (skipped,) = evaluate_slos(MetricsRegistry(), [ratio_slo()])
        assert "skipped" in skipped.render()
