"""Tracer tests: nesting, determinism, the ring buffer."""

import pytest

from repro.dpdk.clock import VirtualClock
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


class TestSpans:
    def test_span_times_read_the_virtual_clock(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("stage") as span:
            clock.advance(150)
        assert span.start_ns == 0
        assert span.end_ns == 150
        assert span.duration_ns == 150

    def test_deterministic_across_runs(self):
        def run():
            clock = VirtualClock()
            tracer = Tracer(clock)
            with tracer.span("outer"):
                clock.advance(10)
                with tracer.span("inner"):
                    clock.advance(5)
                clock.advance(1)
            return [
                (s.name, s.start_ns, s.end_ns)
                for root in tracer.recent()
                for s in root.walk()
            ]

        assert run() == run()
        assert run() == [("outer", 0, 16), ("inner", 10, 15)]

    def test_nesting_attaches_children(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("parent"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                pass
        (root,) = tracer.recent()
        assert [child.name for child in root.children] == ["child-a", "child-b"]
        # Only root spans enter the ring.
        assert len(tracer.recent()) == 1

    def test_attrs_recorded(self):
        tracer = Tracer(VirtualClock())
        with tracer.span("poll", queue=3, burst=32) as span:
            pass
        assert span.attrs == {"queue": 3, "burst": 32}

    def test_unclosed_children_close_with_parent(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        parent = tracer.span("parent")
        tracer.span("orphan")
        clock.advance(7)
        parent.finish()
        (root,) = tracer.recent()
        assert root.children[0].end_ns == 7

    def test_no_clock_is_an_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            tracer.span("x")


class TestRingBuffer:
    def test_ring_keeps_most_recent(self):
        clock = VirtualClock()
        tracer = Tracer(clock, max_traces=3)
        for index in range(5):
            with tracer.span(f"t{index}"):
                clock.advance(1)
        assert [span.name for span in tracer.recent()] == ["t2", "t3", "t4"]
        assert tracer.spans_dropped == 2
        assert tracer.spans_started == 5

    def test_recent_limit_and_clear(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        for index in range(4):
            with tracer.span(f"t{index}"):
                pass
        assert [span.name for span in tracer.recent(2)] == ["t2", "t3"]
        tracer.clear()
        assert tracer.recent() == []

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(VirtualClock(), max_traces=0)


class TestRegistryMirror:
    def test_durations_feed_stage_histogram(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        tracer = Tracer(clock, registry=registry)
        with tracer.span("worker.poll"):
            clock.advance(5000)
        family = registry.family("ruru_stage_duration_ns")
        child = family.labels("worker.poll")
        assert child.count == 1
        assert child.sum == 5000

    def test_stage_names_collected(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("b"):
            with tracer.span("a"):
                pass
        assert tracer.stage_names() == ["a", "b"]

    def test_span_totals_published_as_counters(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        tracer = Tracer(clock, max_traces=2, registry=registry)
        for _ in range(5):
            with tracer.span("stage"):
                clock.advance(1)
        registry.collect()
        started = registry.family("ruru_trace_spans_started_total").unlabeled
        dropped = registry.family("ruru_trace_spans_dropped_total").unlabeled
        assert started.value == 5
        # Ring holds 2, so 3 root spans were evicted before read-out.
        assert dropped.value == 3
        assert tracer.spans_dropped == 3

    def test_drop_counter_zero_while_ring_has_room(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        tracer = Tracer(clock, max_traces=8, registry=registry)
        with tracer.span("stage"):
            clock.advance(1)
        registry.collect()
        assert registry.family("ruru_trace_spans_dropped_total").unlabeled.value == 0

    def test_drop_counter_in_exposition(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        tracer = Tracer(clock, max_traces=1, registry=registry)
        for _ in range(3):
            with tracer.span("stage"):
                clock.advance(1)
        assert "ruru_trace_spans_dropped_total 2" in registry.exposition()
