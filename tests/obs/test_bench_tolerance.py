"""Lenient resultset loading: future schemas, missing keys, torn files.

The grid runner resumes by probing archive paths that may hold
documents written by any revision — or by a process that died
mid-write. None of that may raise; it degrades to "whatever was
readable" (or ``None`` from :func:`try_load_resultset`).
"""

import json

import pytest

from repro.obs.bench import (
    RESULTSET_SCHEMA,
    Resultset,
    compare,
    load_resultset,
    try_load_resultset,
)


class TestLenientFromDict:
    def test_strict_still_rejects_future_schema(self):
        with pytest.raises(ValueError, match="schema"):
            Resultset.from_dict({"schema": RESULTSET_SCHEMA + 1, "name": "x"})

    def test_lenient_accepts_future_schema_and_keeps_it(self):
        rs = Resultset.from_dict(
            {
                "schema": RESULTSET_SCHEMA + 1,
                "name": "future",
                "metrics": {"a": {"value": 1.0}},
            },
            lenient=True,
        )
        assert rs.schema == RESULTSET_SCHEMA + 1
        assert rs.metrics["a"]["value"] == 1.0

    def test_lenient_tolerates_missing_meta_and_metrics(self):
        rs = Resultset.from_dict({"schema": RESULTSET_SCHEMA}, lenient=True)
        assert rs.meta == {} and rs.metrics == {}
        assert rs.name == "bench"

    def test_lenient_skips_malformed_metric_entries(self):
        rs = Resultset.from_dict(
            {
                "schema": RESULTSET_SCHEMA,
                "metrics": {
                    "good": {"value": 2.0},
                    "not_a_table": 7,
                    "no_value": {"unit": "ms"},
                    "non_numeric": {"value": "fast"},
                },
            },
            lenient=True,
        )
        assert sorted(rs.metrics) == ["good"]

    def test_lenient_tolerates_non_dict_document(self):
        rs = Resultset.from_dict(["not", "a", "table"], lenient=True)
        assert rs.metrics == {}

    def test_strict_rejects_malformed_metric(self):
        with pytest.raises(ValueError, match="no numeric value"):
            Resultset.from_dict(
                {"schema": RESULTSET_SCHEMA, "metrics": {"m": {"unit": "ms"}}}
            )

    def test_fresh_instances_carry_this_builds_schema(self):
        assert Resultset("x", meta={}).schema == RESULTSET_SCHEMA


class TestTryLoad:
    def test_missing_file_is_none(self, tmp_path):
        assert try_load_resultset(str(tmp_path / "nope.json")) is None

    def test_torn_json_is_none(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"schema": 1, "name": "tr')
        assert try_load_resultset(str(path)) is None

    def test_alien_but_valid_json_loads_leniently(self, tmp_path):
        path = tmp_path / "alien.json"
        path.write_text(json.dumps({"schema": 99, "metrics": {"m": {"value": 3}}}))
        rs = try_load_resultset(str(path))
        assert rs is not None and rs.schema == 99
        assert rs.metrics["m"]["value"] == 3.0

    def test_load_resultset_lenient_flag(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 0, "name": "old"}))
        with pytest.raises(ValueError):
            load_resultset(str(path))
        assert load_resultset(str(path), lenient=True).name == "old"


class TestExactMetrics:
    @staticmethod
    def pair(base_value, cur_value, **record_kw):
        meta = {"git_rev": "r", "platform": "p"}
        base, cur = Resultset("b", meta=meta), Resultset("b", meta=meta)
        base.record("events.total", base_value, **record_kw)
        cur.record("events.total", cur_value, **record_kw)
        return base, cur

    def test_exact_metric_fails_on_any_drift(self):
        base, cur = self.pair(10, 11, exact=True)
        report = compare(base, cur, threshold=0.5)
        assert "events.total" in report.regressions

    def test_exact_metric_fails_even_on_improvement(self):
        # "Improved" invariants are drift too: fewer events than the
        # baseline means the run changed, not that it got better.
        base, cur = self.pair(10, 9, exact=True)
        assert "events.total" in compare(base, cur).regressions

    def test_exact_metric_equal_passes(self):
        base, cur = self.pair(10, 10, exact=True)
        assert compare(base, cur).ok

    def test_non_exact_metric_keeps_threshold(self):
        base, cur = self.pair(10, 11)
        assert compare(base, cur, threshold=0.5).ok

    def test_exact_portable_gates_across_platforms(self):
        base, _ = self.pair(10, 10)
        cur = Resultset("b", meta={"git_rev": "r", "platform": "other"})
        cur.record("events.total", 11, exact=True, portable=True)
        base.metrics["events.total"].update(exact=True, portable=True)
        assert "events.total" in compare(base, cur).regressions
