"""Retention policy and downsampler tests."""

import pytest

from repro.tsdb.point import Point
from repro.tsdb.retention import Downsampler, RetentionPolicy
from repro.tsdb.storage import SeriesStorage

S = 1_000_000_000


def _filled_storage():
    storage = SeriesStorage()
    for i in range(10):
        storage.write(Point("latency", i * S, tags={"c": "NZ"},
                            fields={"total_ms": float(i)}))
        storage.write(Point("other", i * S, fields={"v": float(i)}))
    return storage


class TestRetentionPolicy:
    def test_drops_old_points(self):
        storage = _filled_storage()
        policy = RetentionPolicy(duration_ns=4 * S, measurement="latency")
        dropped = policy.enforce(storage, now_ns=10 * S)
        assert dropped == 6  # t=0..5 are older than now-4s
        remaining = storage.series_for("latency")[0]
        assert remaining.first_timestamp == 6 * S

    def test_scoped_to_measurement(self):
        storage = _filled_storage()
        RetentionPolicy(duration_ns=S, measurement="latency").enforce(storage, 100 * S)
        assert len(storage.series_for("other")[0]) == 10

    def test_global_policy(self):
        storage = _filled_storage()
        RetentionPolicy(duration_ns=S).enforce(storage, 100 * S)
        assert storage.total_points() == 0

    def test_emptied_series_dropped(self):
        storage = _filled_storage()
        RetentionPolicy(duration_ns=S).enforce(storage, 100 * S)
        assert storage.series_count() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetentionPolicy(duration_ns=0)


class TestDownsampler:
    def test_rollup_preserves_tags(self):
        storage = _filled_storage()
        downsampler = Downsampler(
            source="latency", target="latency_5s", field="total_ms",
            aggregator="mean", interval_ns=5 * S,
        )
        written = downsampler.run(storage, 0, 10 * S)
        assert len(written) == 2
        assert written[0].tags == {"c": "NZ"}
        assert written[0].fields["total_ms"] == pytest.approx(2.0)  # mean 0..4
        assert written[1].fields["total_ms"] == pytest.approx(7.0)  # mean 5..9
        assert "latency_5s" in storage.measurements()

    def test_rollup_respects_range(self):
        storage = _filled_storage()
        downsampler = Downsampler(
            source="latency", target="rollup", field="total_ms",
            aggregator="count", interval_ns=5 * S,
        )
        written = downsampler.run(storage, 0, 5 * S)
        assert len(written) == 1
        assert written[0].fields["total_ms"] == 5.0

    def test_empty_source_writes_nothing(self):
        downsampler = Downsampler(source="none", target="t", field="v")
        assert downsampler.run(SeriesStorage(), 0, S) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Downsampler(source="a", target="a", field="v")
        with pytest.raises(ValueError):
            Downsampler(source="a", target="b", field="v", interval_ns=0)
        with pytest.raises(KeyError):
            Downsampler(source="a", target="b", field="v", aggregator="bogus")
