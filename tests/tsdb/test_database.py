"""TimeSeriesDatabase facade tests."""

from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.point import Point
from repro.tsdb.query import Query
from repro.tsdb.retention import Downsampler, RetentionPolicy

S = 1_000_000_000


def _db():
    db = TimeSeriesDatabase()
    for i in range(6):
        db.write(Point("latency", i * S, tags={"src": "NZ"},
                       fields={"total_ms": 100.0 + i}))
    return db


class TestFacade:
    def test_write_and_query(self):
        db = _db()
        assert db.total_points() == 6
        result = db.query(Query("latency", "total_ms", "mean"))
        assert result.scalar() == 102.5

    def test_write_batch(self):
        db = TimeSeriesDatabase()
        count = db.write_batch(
            Point("m", i, fields={"v": 1.0}) for i in range(5)
        )
        assert count == 5

    def test_measurements_and_tag_values(self):
        db = _db()
        assert db.measurements() == ["latency"]
        assert db.tag_values("latency", "src") == ["NZ"]

    def test_cardinality(self):
        db = _db()
        db.write(Point("latency", 0, tags={"src": "AU"}, fields={"total_ms": 1.0}))
        assert db.cardinality() == {"latency": 2}

    def test_retention_integration(self):
        db = _db()
        db.add_retention_policy(RetentionPolicy(duration_ns=2 * S))
        dropped = db.enforce_retention(now_ns=6 * S)
        assert dropped == 4
        assert db.total_points() == 2

    def test_downsampler_integration(self):
        db = _db()
        db.add_downsampler(Downsampler(
            source="latency", target="latency_3s", field="total_ms",
            interval_ns=3 * S,
        ))
        written = db.run_downsamplers(0, 6 * S)
        assert written == 2
        assert "latency_3s" in db.measurements()


class TestImportExport:
    def test_line_protocol_roundtrip(self):
        db = _db()
        lines = list(db.dump_lines())
        assert len(lines) == 6
        restored = TimeSeriesDatabase()
        assert restored.load_lines(lines) == 6
        original = db.query(Query("latency", "total_ms", "sum")).scalar()
        reloaded = restored.query(Query("latency", "total_ms", "sum")).scalar()
        assert original == reloaded

    def test_dump_single_measurement(self):
        db = _db()
        db.write(Point("other", 0, fields={"v": 1.0}))
        assert all(line.startswith("latency") for line in db.dump_lines("latency"))
