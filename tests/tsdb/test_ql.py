"""InfluxQL-subset parser tests."""

import pytest

from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.point import Point
from repro.tsdb.ql import QLError, parse_duration, parse_query, tokenize

S = 1_000_000_000


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize("SELECT mean(total_ms) FROM latency")
        assert tokens == ["SELECT", "mean", "(", "total_ms", ")", "FROM", "latency"]

    def test_strings_and_operators(self):
        tokens = tokenize("a != 'x y' AND time >= 10s")
        assert tokens == ["a", "!=", "'x y'", "AND", "time", ">=", "10s"]

    def test_junk_rejected(self):
        with pytest.raises(QLError):
            tokenize("SELECT @ FROM x")


class TestDurations:
    @pytest.mark.parametrize("text,expected", [
        ("7ns", 7),
        ("3us", 3_000),
        ("250ms", 250_000_000),
        ("10s", 10 * S),
        ("5m", 300 * S),
        ("2h", 7200 * S),
        ("1d", 86400 * S),
        ("12345", 12345),
    ])
    def test_units(self, text, expected):
        assert parse_duration(text) == expected

    def test_unknown_unit(self):
        with pytest.raises(QLError):
            parse_duration("5weeks")


class TestParseQuery:
    def test_minimal(self):
        query = parse_query("SELECT mean(total_ms) FROM latency")
        assert query.measurement == "latency"
        assert query.field == "total_ms"
        assert query.aggregator == "mean"

    def test_percentile_aggregator(self):
        query = parse_query("SELECT p99(total_ms) FROM latency")
        assert query.aggregator == "p99"

    def test_where_tag_equality(self):
        query = parse_query(
            "SELECT max(total_ms) FROM latency WHERE src_country = 'NZ'"
        )
        assert query.tag_filters == {"src_country": ["NZ"]}

    def test_where_in_list(self):
        query = parse_query(
            "SELECT max(v) FROM m WHERE dst_country IN ('US', 'AU')"
        )
        assert query.tag_filters == {"dst_country": ["US", "AU"]}

    def test_where_time_range(self):
        query = parse_query(
            "SELECT count(v) FROM m WHERE time >= 10s AND time < 5m"
        )
        assert query.start_ns == 10 * S
        assert query.end_ns == 300 * S

    def test_where_strict_operators(self):
        query = parse_query("SELECT count(v) FROM m WHERE time > 9 AND time <= 19")
        assert query.start_ns == 10
        assert query.end_ns == 20

    def test_group_by_tags_and_time(self):
        query = parse_query(
            "SELECT median(total_ms) FROM latency "
            "GROUP BY src_country, dst_country, time(10s)"
        )
        assert query.group_by_tags == ["src_country", "dst_country"]
        assert query.group_by_time_ns == 10 * S

    def test_fill(self):
        query = parse_query(
            "SELECT mean(v) FROM m GROUP BY time(1s) FILL(zero)"
        )
        assert query.fill == "zero"

    def test_full_grafana_shape(self):
        query = parse_query(
            "SELECT mean(total_ms) FROM latency "
            "WHERE src_country = 'NZ' AND time >= 0s AND time < 15m "
            "GROUP BY dst_country, time(10s) FILL(previous)"
        )
        assert query.measurement == "latency"
        assert query.tag_filters == {"src_country": ["NZ"]}
        assert query.group_by_tags == ["dst_country"]
        assert query.group_by_time_ns == 10 * S
        assert query.fill == "previous"

    @pytest.mark.parametrize("bad", [
        "",
        "SELECT FROM latency",
        "SELECT mean(v) latency",
        "SELECT mean(v) FROM m WHERE tag ~ 'x'",
        "SELECT mean(v) FROM m GROUP BY *",
        "SELECT mean(v) FROM m trailing garbage",
        "SELECT nosuchagg(v) FROM m",
        "SELECT mean(v) FROM m WHERE time @ 5s",
        "SELECT mean(v) FROM m FILL(interpolate)",
    ])
    def test_malformed_rejected(self, bad):
        from repro.tsdb.query import QueryError

        with pytest.raises((QueryError, KeyError)):
            parse_query(bad)

    def test_keywords_case_insensitive(self):
        query = parse_query(
            "select mean(v) from m where a = 'b' group by time(1s) fill(none)"
        )
        assert query.tag_filters == {"a": ["b"]}


class TestStatements:
    def _db(self):
        db = TimeSeriesDatabase()
        db.write(Point("latency", 0, tags={"src_country": "NZ"},
                       fields={"total_ms": 100.0}))
        db.write(Point("latency", 1, tags={"src_country": "US"},
                       fields={"total_ms": 200.0}))
        db.write(Point("other", 0, fields={"v": 1.0}))
        return db

    def test_show_measurements(self):
        from repro.tsdb.ql import execute_statement

        assert execute_statement(self._db(), "SHOW MEASUREMENTS") == [
            "latency", "other"
        ]

    def test_show_tag_values(self):
        from repro.tsdb.ql import execute_statement

        values = execute_statement(
            self._db(), "SHOW TAG VALUES FROM latency WITH KEY = src_country"
        )
        assert values == ["NZ", "US"]

    def test_select_through_statement(self):
        from repro.tsdb.ql import execute_statement

        result = execute_statement(
            self._db(), "SELECT max(total_ms) FROM latency"
        )
        assert result.scalar() == 200.0

    @pytest.mark.parametrize("bad", [
        "SHOW EVERYTHING",
        "SHOW MEASUREMENTS now",
        "SHOW TAG VALUES FROM m",
        "DROP MEASUREMENT latency",
        "",
    ])
    def test_bad_statements_rejected(self, bad):
        from repro.tsdb.ql import execute_statement

        with pytest.raises(QLError):
            execute_statement(self._db(), bad)


class TestExecutionThroughDatabase:
    def test_text_query_end_to_end(self):
        db = TimeSeriesDatabase()
        for i in range(10):
            db.write(Point(
                "latency", i * S,
                tags={"src_country": "NZ", "dst_country": "US"},
                fields={"total_ms": 100.0 + i},
            ))
        query = parse_query(
            "SELECT mean(total_ms) FROM latency "
            "WHERE src_country = 'NZ' AND time >= 0s AND time < 10s "
            "GROUP BY dst_country, time(5s)"
        )
        result = db.query(query)
        rows = result.group(dst_country="US")
        assert [value for _, value in rows] == [102.0, 107.0]
