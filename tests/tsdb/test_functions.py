"""Aggregation function tests."""

import pytest

from repro.tsdb.functions import AGGREGATORS, percentile, resolve


class TestBasicAggregators:
    DATA = [4.0, 1.0, 3.0, 2.0, 5.0]

    @pytest.mark.parametrize("name,expected", [
        ("count", 5.0),
        ("sum", 15.0),
        ("min", 1.0),
        ("max", 5.0),
        ("mean", 3.0),
        ("median", 3.0),
        ("first", 4.0),
        ("last", 5.0),
        ("spread", 4.0),
    ])
    def test_known_values(self, name, expected):
        assert AGGREGATORS[name](self.DATA) == expected

    def test_stddev(self):
        assert AGGREGATORS["stddev"]([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == 2.0
        assert AGGREGATORS["stddev"]([5.0]) == 0.0

    def test_single_sample(self):
        for name in ("mean", "median", "min", "max"):
            assert AGGREGATORS[name]([7.5]) == 7.5


class TestPercentile:
    def test_median_even(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_interpolation(self):
        assert percentile([10.0, 20.0], 25) == 12.5

    def test_extremes(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0

    def test_p95_large(self):
        data = [float(i) for i in range(1, 101)]
        assert abs(percentile(data, 95) - 95.05) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestResolve:
    def test_named(self):
        assert resolve("mean")([2.0, 4.0]) == 3.0

    def test_dynamic_percentile(self):
        p90 = resolve("p90")
        assert p90([float(i) for i in range(1, 11)]) == pytest.approx(9.1)

    def test_fractional_percentile(self):
        resolve("p99.9")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            resolve("harmonic-mean")
        with pytest.raises(KeyError):
            resolve("pxx")
