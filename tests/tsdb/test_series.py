"""Columnar series tests."""

from repro.tsdb.point import Point
from repro.tsdb.series import Series


def _series(values, measurement="m", field="v"):
    series = Series(measurement, ())
    for timestamp, value in values:
        series.append(Point(measurement, timestamp, fields={field: value}))
    return series


class TestSeries:
    def test_append_in_order(self):
        series = _series([(1, 10.0), (2, 20.0), (3, 30.0)])
        assert series.values("v") == [(1, 10.0), (2, 20.0), (3, 30.0)]

    def test_out_of_order_insert_sorted(self):
        series = _series([(5, 50.0), (1, 10.0), (3, 30.0)])
        assert [t for t, _ in series.values("v")] == [1, 3, 5]

    def test_duplicate_timestamps_kept(self):
        series = _series([(1, 1.0), (1, 2.0)])
        assert len(series) == 2

    def test_window_slicing(self):
        series = _series([(i * 10, float(i)) for i in range(10)])
        rows = series.values("v", start_ns=20, end_ns=50)
        assert [t for t, _ in rows] == [20, 30, 40]

    def test_open_ended_windows(self):
        series = _series([(1, 1.0), (2, 2.0), (3, 3.0)])
        assert len(series.values("v", start_ns=2)) == 2
        assert len(series.values("v", end_ns=2)) == 1
        assert len(series.values("v")) == 3

    def test_unknown_field_empty(self):
        series = _series([(1, 1.0)])
        assert series.values("nope") == []

    def test_sparse_fields_padded(self):
        series = Series("m", ())
        series.append(Point("m", 1, fields={"a": 1.0}))
        series.append(Point("m", 2, fields={"b": 2.0}))
        series.append(Point("m", 3, fields={"a": 3.0, "b": 4.0}))
        assert series.values("a") == [(1, 1.0), (3, 3.0)]
        assert series.values("b") == [(2, 2.0), (3, 4.0)]

    def test_new_field_backfilled(self):
        series = Series("m", ())
        series.append(Point("m", 1, fields={"a": 1.0}))
        series.append(Point("m", 2, fields={"z": 9.0}))
        # 'z' column must align: absent at t=1.
        assert series.values("z") == [(2, 9.0)]

    def test_truncate_before(self):
        series = _series([(i, float(i)) for i in range(10)])
        dropped = series.truncate_before(5)
        assert dropped == 5
        assert series.first_timestamp == 5
        assert len(series) == 5

    def test_truncate_noop(self):
        series = _series([(10, 1.0)])
        assert series.truncate_before(5) == 0

    def test_first_last_timestamps(self):
        series = _series([(3, 1.0), (9, 2.0)])
        assert series.first_timestamp == 3
        assert series.last_timestamp == 9
        assert Series("m", ()).first_timestamp is None

    def test_tags_stored(self):
        series = Series("m", (("a", "1"),))
        assert series.tags == {"a": "1"}
