"""Series storage and tag index tests."""

from repro.tsdb.point import Point
from repro.tsdb.storage import SeriesStorage


def _point(measurement="latency", src="NZ", dst="US", value=100.0, t=1):
    return Point(
        measurement, t,
        tags={"src_country": src, "dst_country": dst},
        fields={"total_ms": value},
    )


class TestSeriesStorage:
    def test_write_routes_to_series(self):
        storage = SeriesStorage()
        storage.write(_point(t=1))
        storage.write(_point(t=2))
        storage.write(_point(src="AU", t=1))
        assert storage.series_count() == 2
        assert storage.total_points() == 3

    def test_measurements_listing(self):
        storage = SeriesStorage()
        storage.write(_point(measurement="b"))
        storage.write(_point(measurement="a"))
        assert storage.measurements() == ["a", "b"]

    def test_tag_values(self):
        storage = SeriesStorage()
        for src in ("NZ", "AU", "NZ"):
            storage.write(_point(src=src))
        assert storage.tag_values("latency", "src_country") == ["AU", "NZ"]
        assert storage.tag_values("latency", "missing") == []

    def test_select_series_by_single_filter(self):
        storage = SeriesStorage()
        storage.write(_point(src="NZ"))
        storage.write(_point(src="AU"))
        selected = storage.select_series("latency", {"src_country": ["NZ"]})
        assert len(selected) == 1
        assert selected[0].tags["src_country"] == "NZ"

    def test_select_series_or_within_key(self):
        storage = SeriesStorage()
        for src in ("NZ", "AU", "JP"):
            storage.write(_point(src=src))
        selected = storage.select_series("latency", {"src_country": ["NZ", "JP"]})
        assert len(selected) == 2

    def test_select_series_and_across_keys(self):
        storage = SeriesStorage()
        storage.write(_point(src="NZ", dst="US"))
        storage.write(_point(src="NZ", dst="AU"))
        storage.write(_point(src="JP", dst="US"))
        selected = storage.select_series(
            "latency", {"src_country": ["NZ"], "dst_country": ["US"]}
        )
        assert len(selected) == 1

    def test_select_no_match(self):
        storage = SeriesStorage()
        storage.write(_point())
        assert storage.select_series("latency", {"src_country": ["XX"]}) == []
        assert storage.select_series("nothing") == []

    def test_select_all(self):
        storage = SeriesStorage()
        storage.write(_point(src="NZ"))
        storage.write(_point(src="AU"))
        assert len(storage.select_series("latency")) == 2

    def test_drop_empty_cleans_index(self):
        storage = SeriesStorage()
        storage.write(_point(src="NZ", t=1))
        for series in storage.series_for("latency"):
            series.truncate_before(100)
        assert storage.drop_empty() == 1
        assert storage.select_series("latency", {"src_country": ["NZ"]}) == []
