"""Point model tests."""

import pytest

from repro.tsdb.point import Point


class TestPoint:
    def test_series_key_sorted_tags(self):
        a = Point("m", 1, tags={"b": "2", "a": "1"}, fields={"v": 1})
        b = Point("m", 2, tags={"a": "1", "b": "2"}, fields={"v": 2})
        assert a.series_key() == b.series_key()

    def test_different_tags_different_series(self):
        a = Point("m", 1, tags={"a": "1"}, fields={"v": 1})
        b = Point("m", 1, tags={"a": "2"}, fields={"v": 1})
        assert a.series_key() != b.series_key()

    def test_empty_measurement_rejected(self):
        with pytest.raises(ValueError):
            Point("", 1, fields={"v": 1})

    def test_no_fields_rejected(self):
        with pytest.raises(ValueError):
            Point("m", 1)

    def test_non_numeric_field_rejected(self):
        with pytest.raises(TypeError):
            Point("m", 1, fields={"v": "text"})
        with pytest.raises(TypeError):
            Point("m", 1, fields={"v": True})

    def test_int_and_float_fields_allowed(self):
        Point("m", 1, fields={"count": 3, "ratio": 0.5})
