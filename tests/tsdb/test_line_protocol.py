"""Influx line protocol tests."""

import pytest

from repro.tsdb.line_protocol import (
    LineProtocolError,
    format_point,
    parse_line,
    parse_lines,
)
from repro.tsdb.point import Point


class TestFormat:
    def test_basic(self):
        point = Point("latency", 1465839830100400200,
                      tags={"src": "NZ"}, fields={"total_ms": 148.5})
        assert format_point(point) == "latency,src=NZ total_ms=148.5 1465839830100400200"

    def test_int_field_suffix(self):
        point = Point("m", 7, fields={"count": 42})
        assert format_point(point) == "m count=42i 7"

    def test_escaping(self):
        point = Point("my measurement", 1,
                      tags={"city name": "Los Angeles"}, fields={"v": 1.0})
        line = format_point(point)
        assert "my\\ measurement" in line
        assert "Los\\ Angeles" in line

    def test_tags_sorted(self):
        point = Point("m", 1, tags={"z": "1", "a": "2"}, fields={"v": 1.0})
        assert format_point(point).startswith("m,a=2,z=1 ")


class TestParse:
    def test_roundtrip(self):
        original = Point(
            "latency", 1234567890,
            tags={"src_city": "Auckland", "dst_city": "Los Angeles"},
            fields={"total_ms": 132.25, "connections": 9},
        )
        parsed = parse_line(format_point(original))
        assert parsed == original

    def test_escaped_roundtrip(self):
        original = Point(
            "m,with=chars", 5,
            tags={"k ey": "v,al=ue"}, fields={"f": 1.5},
        )
        assert parse_line(format_point(original)) == original

    def test_no_timestamp_defaults_zero(self):
        parsed = parse_line("m v=1.0")
        assert parsed.timestamp_ns == 0

    def test_multiple_fields(self):
        parsed = parse_line("m a=1i,b=2.5 9")
        assert parsed.fields == {"a": 1, "b": 2.5}

    @pytest.mark.parametrize("bad", [
        "",
        "# comment",
        "measurement-only",
        "m v=notanumber 1",
        "m v=1 notatime",
        "m v=1 2 3 4",
        "m,badtag v=1",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(LineProtocolError):
            parse_line(bad)

    def test_parse_lines_skips_blanks_and_comments(self):
        lines = ["# header", "", "m v=1 1", "   ", "m v=2 2"]
        points = list(parse_lines(lines))
        assert len(points) == 2
        assert points[1].fields["v"] == 2.0
