"""Query executor tests."""

import pytest

from repro.tsdb.point import Point
from repro.tsdb.query import Query, QueryError, execute
from repro.tsdb.storage import SeriesStorage

S = 1_000_000_000


def _storage():
    storage = SeriesStorage()
    # NZ->US: values 100..104 at t=0..4s; NZ->AU: values 30..34.
    for i in range(5):
        storage.write(Point(
            "latency", i * S,
            tags={"src_country": "NZ", "dst_country": "US"},
            fields={"total_ms": 100.0 + i},
        ))
        storage.write(Point(
            "latency", i * S,
            tags={"src_country": "NZ", "dst_country": "AU"},
            fields={"total_ms": 30.0 + i},
        ))
    return storage


class TestScalarQueries:
    def test_ungrouped_mean(self):
        result = execute(_storage(), Query("latency", "total_ms", "mean"))
        assert result.scalar() == pytest.approx((102 + 32) / 2)

    def test_filtered_mean(self):
        query = Query("latency", "total_ms", "mean",
                      tag_filters={"dst_country": ["US"]})
        assert execute(_storage(), query).scalar() == 102.0

    def test_time_range_half_open(self):
        query = Query("latency", "total_ms", "count",
                      start_ns=1 * S, end_ns=3 * S,
                      tag_filters={"dst_country": ["US"]})
        assert execute(_storage(), query).scalar() == 2.0

    def test_empty_result(self):
        query = Query("latency", "total_ms", "mean",
                      tag_filters={"dst_country": ["XX"]})
        result = execute(_storage(), query)
        assert result.is_empty()
        assert result.scalar() is None


class TestGroupByTags:
    def test_groups_split_by_tag(self):
        query = Query("latency", "total_ms", "max", group_by_tags=["dst_country"])
        result = execute(_storage(), query)
        assert result.group(dst_country="US")[0][1] == 104.0
        assert result.group(dst_country="AU")[0][1] == 34.0
        assert len(result.group_keys()) == 2

    def test_group_by_multiple_tags(self):
        query = Query("latency", "total_ms", "count",
                      group_by_tags=["src_country", "dst_country"])
        result = execute(_storage(), query)
        assert result.group(src_country="NZ", dst_country="US")[0][1] == 5.0


class TestGroupByTime:
    def test_windows_aligned_to_start(self):
        query = Query("latency", "total_ms", "mean",
                      start_ns=0, end_ns=5 * S, group_by_time_ns=2 * S,
                      tag_filters={"dst_country": ["US"]})
        rows = execute(_storage(), query).groups[()]
        assert [t for t, _ in rows] == [0, 2 * S, 4 * S]
        assert rows[0][1] == pytest.approx(100.5)
        assert rows[2][1] == 104.0

    def test_fill_none_drops_empty(self):
        storage = SeriesStorage()
        storage.write(Point("m", 0, fields={"v": 1.0}))
        storage.write(Point("m", 9 * S, fields={"v": 2.0}))
        query = Query("m", "v", "mean", start_ns=0, end_ns=10 * S,
                      group_by_time_ns=S)
        rows = execute(storage, query).groups[()]
        assert len(rows) == 2

    def test_fill_zero(self):
        storage = SeriesStorage()
        storage.write(Point("m", 0, fields={"v": 1.0}))
        storage.write(Point("m", 3 * S, fields={"v": 2.0}))
        query = Query("m", "v", "mean", start_ns=0, end_ns=4 * S,
                      group_by_time_ns=S, fill="zero")
        rows = execute(storage, query).groups[()]
        assert [value for _, value in rows] == [1.0, 0.0, 0.0, 2.0]

    def test_fill_previous(self):
        storage = SeriesStorage()
        storage.write(Point("m", 0, fields={"v": 5.0}))
        storage.write(Point("m", 3 * S, fields={"v": 7.0}))
        query = Query("m", "v", "mean", start_ns=0, end_ns=4 * S,
                      group_by_time_ns=S, fill="previous")
        rows = execute(storage, query).groups[()]
        assert [value for _, value in rows] == [5.0, 5.0, 5.0, 7.0]

    def test_unaligned_origin_uses_floor(self):
        storage = SeriesStorage()
        storage.write(Point("m", int(2.5 * S), fields={"v": 1.0}))
        query = Query("m", "v", "mean", group_by_time_ns=S)
        rows = execute(storage, query).groups[()]
        assert rows[0][0] == 2 * S


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(measurement="", field="v"),
        dict(measurement="m", field=""),
        dict(measurement="m", field="v", group_by_time_ns=0),
        dict(measurement="m", field="v", fill="interpolate"),
        dict(measurement="m", field="v", start_ns=10, end_ns=5),
    ])
    def test_bad_queries_rejected(self, kwargs):
        with pytest.raises(QueryError):
            Query(**kwargs).validate()

    def test_unknown_aggregator_rejected(self):
        with pytest.raises(KeyError):
            Query("m", "v", aggregator="nope").validate()
