"""Snapshot envelope tests: exact round trip or a typed failure."""

import pytest

from repro.durability.codec import (
    SNAPSHOT_MAGIC,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
)

STATE = {
    "format": 1,
    "meta": {"profile": "clean", "seed": 42},
    "nested": {"list": [1, 2.5, "three", None, True], "empty": {}},
    "unicode": "tēnā koe",
}


class TestRoundTrip:
    def test_exact_round_trip(self):
        assert decode_snapshot(encode_snapshot(STATE)) == STATE

    def test_empty_dict(self):
        assert decode_snapshot(encode_snapshot({})) == {}

    def test_magic_leads_the_envelope(self):
        assert encode_snapshot(STATE).startswith(SNAPSHOT_MAGIC)


class TestRejection:
    def test_truncated_header(self):
        with pytest.raises(SnapshotError):
            decode_snapshot(encode_snapshot(STATE)[:10])

    def test_truncated_payload(self):
        blob = encode_snapshot(STATE)
        with pytest.raises(SnapshotError):
            decode_snapshot(blob[: len(blob) - 3])

    def test_bad_magic(self):
        blob = bytearray(encode_snapshot(STATE))
        blob[0] ^= 0xFF
        with pytest.raises(SnapshotError, match="magic"):
            decode_snapshot(bytes(blob))

    def test_unknown_version(self):
        blob = bytearray(encode_snapshot(STATE))
        blob[8] = 99
        with pytest.raises(SnapshotError, match="version"):
            decode_snapshot(bytes(blob))

    def test_payload_bit_flip_fails_checksum(self):
        blob = bytearray(encode_snapshot(STATE))
        blob[-1] ^= 0x01
        with pytest.raises(SnapshotError):
            decode_snapshot(bytes(blob))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SnapshotError):
            decode_snapshot(encode_snapshot(STATE) + b"xx")

    def test_empty_bytes(self):
        with pytest.raises(SnapshotError):
            decode_snapshot(b"")


class TestEncodeValidation:
    def test_non_json_state_fails_typed(self):
        with pytest.raises(SnapshotError):
            encode_snapshot({"bad": object()})

    def test_nan_fails_typed(self):
        with pytest.raises(SnapshotError):
            encode_snapshot({"bad": float("nan")})

    def test_infinity_fails_typed(self):
        # Components map ±inf to None in their state_dicts; the codec
        # enforces that nobody forgets.
        with pytest.raises(SnapshotError):
            encode_snapshot({"bad": float("inf")})
