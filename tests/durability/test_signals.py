"""GracefulShutdown tests: flag semantics, handler hygiene, and the
signal → drain path through a real run."""

import signal

import pytest

from repro.durability.runtime import DurableRuntime
from repro.durability.signals import GracefulShutdown
from repro.faults import ChaosHarness

RUN = dict(duration_s=4.0, rate=30.0, queues=2)


class TestFlagSemantics:
    def test_no_signal_no_request(self):
        with GracefulShutdown() as stop:
            assert not stop.requested()
            assert stop.signal_name is None

    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_sets_flag_without_raising(self, signum):
        with GracefulShutdown() as stop:
            signal.raise_signal(signum)
            assert stop.requested()
            assert stop.signal_name == signal.Signals(signum).name

    def test_second_sigint_falls_through(self):
        with GracefulShutdown() as stop:
            signal.raise_signal(signal.SIGINT)
            assert stop.requested()
            # The operator means it: the second signal reaches the
            # previous disposition (KeyboardInterrupt for SIGINT).
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)


class TestHandlerHygiene:
    def test_previous_handlers_restored(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before

    def test_restored_even_on_exception(self):
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(RuntimeError):
            with GracefulShutdown():
                raise RuntimeError("boom")
        assert signal.getsignal(signal.SIGTERM) is before


class TestSignalDrivenDrain:
    def test_sigterm_mid_run_drains_gracefully(self, tmp_path):
        runtime = DurableRuntime(str(tmp_path / "s"), profile="clean", seed=7, **RUN)
        batches = {"n": 0}

        def flag_that_signals_itself():
            batches["n"] += 1
            if batches["n"] == 2:
                signal.raise_signal(signal.SIGTERM)
            return stop.requested()

        with GracefulShutdown() as stop:
            report = runtime.run(shutdown_flag=flag_that_signals_itself)
        assert stop.requested()
        assert stop.signal_name == "SIGTERM"
        assert report.ok, report.render()
        assert report.stages[-1] == "clean-checkpoint"

    def test_sigint_mid_chaos_still_reconciles(self):
        harness = ChaosHarness("lossy-mq", seed=42, **{
            "duration_s": 4.0, "rate": 30.0, "queues": 2
        })
        ticks = {"n": 0}

        def flag():
            ticks["n"] += 1
            if ticks["n"] == 2:
                signal.raise_signal(signal.SIGINT)
            return stop.requested()

        with GracefulShutdown() as stop:
            report = harness.run(shutdown_flag=flag)
        assert stop.requested()
        assert report.unhandled == []
        assert report.ledger.ok
