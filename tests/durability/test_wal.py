"""WAL tests: framing, torn tails, abort records, idempotent replay,
and the retention-at-replay rule (expired points stay gone)."""

import pytest

from repro.durability.wal import DurableTsdb, WalError, WriteAheadLog
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.point import Point
from repro.tsdb.retention import RetentionPolicy

NS_PER_S = 1_000_000_000


def pt(ts_ns, value=1.0, tag="NZ-US"):
    return Point(
        measurement="latency",
        timestamp_ns=ts_ns,
        tags={"pair": tag},
        fields={"total_ms": value},
    )


class TestFraming:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(1, [pt(10), pt(20)])
        wal.append(2, [pt(30)])
        wal.close()
        replay = wal.replay()
        assert [bid for bid, _ in replay.batches] == [1, 2]
        assert [len(points) for _, points in replay.batches] == [2, 1]
        assert not replay.torn_tail
        assert replay.max_batch_id == 2

    def test_missing_file_is_empty(self, tmp_path):
        replay = WriteAheadLog(str(tmp_path / "absent.wal")).replay()
        assert replay.batches == [] and not replay.torn_tail

    @pytest.mark.parametrize("cut", [1, 5, 10, 21])
    def test_torn_tail_tolerated(self, tmp_path, cut):
        path = tmp_path / "t.wal"
        wal = WriteAheadLog(str(path))
        wal.append(1, [pt(10)])
        wal.append(2, [pt(20)])
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - cut])
        replay = WriteAheadLog(str(path)).replay()
        assert replay.torn_tail
        # The torn frame never reached the store either, so losing it
        # is correct; everything before it survives intact.
        assert [bid for bid, _ in replay.batches] == [1]

    def test_structural_damage_raises(self, tmp_path):
        path = tmp_path / "t.wal"
        path.write_bytes(b"NOTAWALFILE-----" * 4)
        with pytest.raises(WalError):
            WriteAheadLog(str(path)).replay()

    def test_truncate_drops_everything(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(1, [pt(10)])
        wal.truncate()
        assert wal.replay().batches == []


class TestAbortRecords:
    def test_aborted_batch_never_replays(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append(1, [pt(10)])
        wal.append(2, [pt(20)])
        wal.append_abort(2)
        wal.append(3, [pt(30)])
        wal.close()
        replay = wal.replay()
        assert replay.aborted_ids == {2}
        assert [bid for bid, _ in replay.live_batches(0)] == [1, 3]

    def test_live_batches_respects_high_water_mark(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        for batch_id in (1, 2, 3, 4):
            wal.append(batch_id, [pt(batch_id * 10)])
        replay = wal.replay()
        assert [bid for bid, _ in replay.live_batches(2)] == [3, 4]


class _RejectingStore:
    """Inner store that rejects every Nth batch, like the brownout."""

    def __init__(self, inner, reject_every=2):
        self.inner = inner
        self.reject_every = reject_every
        self.calls = 0

    def write_batch(self, points):
        self.calls += 1
        if self.calls % self.reject_every == 0:
            raise IOError("injected outage")
        return self.inner.write_batch(points)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestDurableTsdb:
    def test_monotonic_batch_ids(self, tmp_path):
        db = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(str(tmp_path / "t.wal")))
        db.write_batch([pt(10)])
        db.write_batch([pt(20)])
        assert db.last_applied_batch_id == 2
        assert db.next_batch_id == 3

    def test_replay_restores_uncovered_batches(self, tmp_path):
        path = str(tmp_path / "t.wal")
        first = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(path))
        first.write_batch([pt(10), pt(20)])
        first.write_batch([pt(30)])
        first.wal.close()

        # "Restart": fresh store, checkpoint knew about batch 1 only.
        second = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(path))
        second.inner.write_batch([pt(10), pt(20)])
        second.last_applied_batch_id = 1
        second.replay_wal()
        assert second.replayed_batches == 1
        assert second.duplicates_skipped == 1
        assert second.inner.total_points() == 3
        assert second.next_batch_id == 3

    def test_replay_is_idempotent(self, tmp_path):
        path = str(tmp_path / "t.wal")
        first = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(path))
        first.write_batch([pt(10)])
        first.write_batch([pt(20)])
        first.wal.close()

        second = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(path))
        second.replay_wal()
        points_after_first = second.inner.total_points()
        second.replay_wal()  # must be a no-op
        assert second.inner.total_points() == points_after_first
        assert second.replayed_batches == 2
        assert second.duplicates_skipped == 2

    def test_rejected_write_appends_abort_and_raises(self, tmp_path):
        path = str(tmp_path / "t.wal")
        store = _RejectingStore(TimeSeriesDatabase(), reject_every=2)
        db = DurableTsdb(store, WriteAheadLog(path))
        db.write_batch([pt(10)])
        with pytest.raises(IOError):
            db.write_batch([pt(20)])
        db.wal.close()
        # The retry machinery re-submits the rejected points under a
        # fresh id; replay must not ALSO apply the logged original.
        db.write_batch([pt(20)])
        db.wal.close()

        recovered = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(path))
        recovered.replay_wal()
        assert recovered.inner.total_points() == 2  # not 3

    def test_state_round_trip(self, tmp_path):
        db = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(str(tmp_path / "t.wal")))
        db.write_batch([pt(10)])
        state = db.state_dict()
        fresh = DurableTsdb(
            TimeSeriesDatabase(), WriteAheadLog(str(tmp_path / "u.wal"))
        )
        fresh.load_state(state)
        assert fresh.last_applied_batch_id == db.last_applied_batch_id
        assert fresh.next_batch_id == db.next_batch_id


class TestRetentionAtReplay:
    """Satellite: WAL replay must not resurrect expired points."""

    def test_expired_points_dropped_not_resurrected(self, tmp_path):
        path = str(tmp_path / "t.wal")
        first = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(path))
        first.write_batch([pt(1 * NS_PER_S), pt(2 * NS_PER_S)])  # will expire
        first.write_batch([pt(59 * NS_PER_S)])  # still in window
        first.wal.close()

        store = TimeSeriesDatabase()
        store.add_retention_policy(RetentionPolicy(duration_ns=30 * NS_PER_S))
        recovered = DurableTsdb(store, WriteAheadLog(path))
        recovered.replay_wal(now_ns=60 * NS_PER_S)
        assert recovered.expired_dropped == 2
        assert store.total_points() == 1
        timestamps = [
            int(line.rsplit(" ", 1)[1]) for line in store.dump_lines()
        ]
        assert all(ts >= 30 * NS_PER_S for ts in timestamps)

    def test_replay_without_clock_skips_retention(self, tmp_path):
        path = str(tmp_path / "t.wal")
        first = DurableTsdb(TimeSeriesDatabase(), WriteAheadLog(path))
        first.write_batch([pt(1 * NS_PER_S)])
        first.wal.close()
        store = TimeSeriesDatabase()
        store.add_retention_policy(RetentionPolicy(duration_ns=30 * NS_PER_S))
        recovered = DurableTsdb(store, WriteAheadLog(path))
        recovered.replay_wal()
        assert recovered.expired_dropped == 0
        assert store.total_points() == 1
