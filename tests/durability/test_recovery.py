"""Kill-anywhere acceptance: every crash point, two profiles.

Each trial kills the durable runtime at one registered stage boundary,
recovers a fresh stack from the same state directory, resumes the
workload, and must end with (a) the reconciled ledger balanced with a
non-negative ``lost_at_crash``, (b) an idempotent WAL (a second replay
applies zero batches — the no-double-write proof), and (c) a clean
final checkpoint. Same triple → identical counts.
"""

import pytest

from repro.durability.harness import RecoveryHarness, run_recovery_trial
from repro.durability.recovery import recover_runtime
from repro.durability.runtime import DurableRuntime
from repro.faults.crashpoints import CRASH_POINTS

NS_PER_S = 1_000_000_000

# Small-but-busy: several checkpoints and a few hundred records per
# run, so every crash point lands in interesting state.
RUN = dict(duration_s=6.0, rate=30.0, queues=2)

PROFILES = ("clean", "lossy-mq")


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("point", sorted(CRASH_POINTS))
def test_kill_anywhere(tmp_path, profile, point):
    harness = RecoveryHarness(str(tmp_path / "state"), profile=profile, seed=7, **RUN)
    trial = harness.run_trial(point, hit=3)
    if not trial.crashed:
        # Boundaries crossed fewer than three times in this workload
        # (e.g. drain.mid runs once); the first pass must still fire.
        trial = harness.run_trial(point, hit=1)
    assert trial.crashed, f"{point} never fired"
    assert trial.ok, trial.render()
    assert trial.recovery.lost_at_crash >= 0
    assert trial.double_replay_applied == 0
    assert trial.final_ledger.ok
    assert trial.final_drain.ok


def test_trials_are_deterministic(tmp_path):
    harness = RecoveryHarness(
        str(tmp_path / "state"), profile="lossy-mq", seed=11, **RUN
    )
    first = harness.run_trial("analytics.ingest", hit=2)
    second = harness.run_trial("analytics.ingest", hit=2)
    assert first.ok and second.ok
    assert first.counts() == second.counts()


def test_crash_before_any_checkpoint_cold_starts(tmp_path):
    trial = run_recovery_trial(
        str(tmp_path / "state"), "nic.rx", profile="clean", seed=3, hit=1, **RUN
    )
    assert trial.crashed
    assert trial.recovery.cold_start
    assert trial.ok, trial.render()


def test_stale_wal_after_checkpoint_post_crash_dedups(tmp_path):
    """The crash between checkpoint write and WAL truncate: every WAL
    frame is already covered, so replay must skip them all."""
    trial = run_recovery_trial(
        str(tmp_path / "state"), "checkpoint.post", profile="clean", seed=7,
        hit=2, **RUN
    )
    assert trial.crashed
    assert trial.recovery.duplicates_skipped > 0
    assert trial.recovery.replayed_batches == 0
    assert trial.ok, trial.render()


def test_torn_checkpoint_falls_back(tmp_path):
    """checkpoint.mid leaves a torn blob at the final path; recovery
    must skip it and use the previous checkpoint."""
    trial = run_recovery_trial(
        str(tmp_path / "state"), "checkpoint.mid", profile="clean", seed=7,
        hit=2, **RUN
    )
    assert trial.crashed
    assert trial.recovery.corrupt_skipped >= 1
    assert not trial.recovery.cold_start
    assert trial.ok, trial.render()


def test_clean_shutdown_then_recover_is_lossless(tmp_path):
    state_dir = str(tmp_path / "state")
    runtime = DurableRuntime(state_dir, profile="clean", seed=5, **RUN)
    drain = runtime.run()
    assert drain.ok
    processed = drain.ledger.processed
    lines = sorted(runtime.tsdb.inner.dump_lines())

    restarted = DurableRuntime(state_dir, profile="clean", seed=5, **RUN)
    report = recover_runtime(restarted, observed_ingested=drain.ledger.ingested)
    assert report.ok, report.render()
    assert report.clean_shutdown
    assert report.lost_at_crash == 0
    assert report.replayed_batches == 0  # clean drain truncated the WAL
    assert restarted.service.conservation_ledger().processed == processed
    # Every sample survives, byte for byte — nothing lost, nothing
    # doubled. (Counted as line-protocol samples: the restore path
    # round-trips through dump_lines, which splits multi-field points.)
    assert sorted(restarted.tsdb.inner.dump_lines()) == lines


def test_recovery_with_retention_does_not_resurrect(tmp_path):
    """Integration flavour of the retention satellite: a runtime with a
    short retention window recovers without points older than the
    window at the recovered clock."""
    harness = RecoveryHarness(
        str(tmp_path / "state"), profile="clean", seed=9,
        retention_ns=2 * NS_PER_S, **RUN
    )
    trial = harness.run_trial("tsdb.applied", hit=20)
    if not trial.crashed:
        trial = harness.run_trial("tsdb.applied", hit=1)
    assert trial.ok, trial.render()


def test_unknown_crash_point_rejected(tmp_path):
    harness = RecoveryHarness(str(tmp_path / "state"))
    with pytest.raises(ValueError, match="unknown crash point"):
        harness.run_trial("no.such.point")
