"""Per-component snapshot round trips.

Every ``state_dict`` must (a) survive the snapshot codec — pure JSON,
no tuples, no infinities — and (b) rebuild a component that behaves
identically, not just one that compares equal. The flow-table test is
the sharpest: a handshake snapshotted between SYN-ACK and ACK must
complete into a correct measurement after restore.
"""

from repro.analytics.aggregator import PairAggregator
from repro.analytics.enricher import EnrichedMeasurement
from repro.analytics.topk import SpaceSaving
from repro.anomaly.baseline import EwmaBaseline, WindowedRate
from repro.anomaly.manager import AnomalyManager
from repro.core.handshake import HandshakeTracker
from repro.durability.codec import decode_snapshot, encode_snapshot
from repro.net.parser import ParsedPacket
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.dlq import DeadLetterQueue
from repro.resilience.layer import ResilienceLayer
from repro.resilience.retry import RetryPolicy, RetryQueue

MS = 1_000_000
SYN, SYNACK, ACK = 0x02, 0x12, 0x10


def codec_round_trip(state):
    """The canonical check: encode → decode must be the identity."""
    return decode_snapshot(encode_snapshot(state))


def pkt(src, dst, flags, t_ns, seq=0, ack=0):
    return ParsedPacket(
        src_ip=src[0], dst_ip=dst[0], src_port=src[1], dst_port=dst[1],
        flags=flags, seq=seq, ack=ack, payload_len=0, timestamp_ns=t_ns,
    )


def enriched(ts_ns=1_000 * MS, external_ns=140 * MS, src="NZ", dst="US"):
    return EnrichedMeasurement(
        timestamp_ns=ts_ns, internal_ns=10 * MS, external_ns=external_ns,
        src_country=src, src_city="Auckland", src_lat=-36.85, src_lon=174.76,
        src_asn=9500, dst_country=dst, dst_city="Los Angeles", dst_lat=34.05,
        dst_lon=-118.24, dst_asn=7018,
    )


class TestFlowTableMidHandshake:
    """The tentpole's sharpest restore: measurement completes across it."""

    CLIENT = (0x0A000001, 40000)
    SERVER = (0x14000001, 443)

    def test_restored_tracker_completes_measurement(self):
        tracker = HandshakeTracker()
        tracker.process(pkt(self.CLIENT, self.SERVER, SYN, 0, seq=1000))
        tracker.process(
            pkt(self.SERVER, self.CLIENT, SYNACK, 140 * MS, seq=9000, ack=1001)
        )
        state = codec_round_trip(tracker.state_dict())

        restored = HandshakeTracker()
        restored.load_state(state)
        record = restored.process(
            pkt(self.CLIENT, self.SERVER, ACK, 150 * MS, seq=1001, ack=9001)
        )
        assert record is not None
        assert record.external_ns == 140 * MS
        assert record.internal_ns == 10 * MS
        assert restored.stats.measurements == tracker.stats.measurements + 1

    def test_state_dict_stable_across_round_trip(self):
        tracker = HandshakeTracker()
        tracker.process(pkt(self.CLIENT, self.SERVER, SYN, 0, seq=1000))
        restored = HandshakeTracker()
        restored.load_state(codec_round_trip(tracker.state_dict()))
        assert restored.state_dict() == tracker.state_dict()


class TestAggregator:
    def test_open_window_survives(self):
        agg = PairAggregator(window_ns=1_000 * MS, track_p99=True)
        for step in range(5):
            agg.add(enriched(ts_ns=step * 100 * MS, external_ns=(100 + step) * MS))
        state = codec_round_trip(agg.state_dict())

        restored = PairAggregator(window_ns=1_000 * MS, track_p99=True)
        restored.load_state(state)
        # Both continue identically: same later adds, same flush points.
        late = enriched(ts_ns=2_500 * MS)
        agg.add(late)
        restored.add(late)
        assert [str(p) for p in agg.flush()] == [str(p) for p in restored.flush()]

    def test_empty_aggregator_round_trips(self):
        agg = PairAggregator()
        restored = PairAggregator()
        restored.load_state(codec_round_trip(agg.state_dict()))
        assert restored.state_dict() == agg.state_dict()


class TestTopK:
    def test_tuple_keys_survive_json(self):
        topk = SpaceSaving(capacity=4)
        for _ in range(5):
            topk.add(("NZ", "US"))
        topk.add(("NZ", "GB"))
        restored = SpaceSaving(capacity=4)
        restored.load_state(codec_round_trip(topk.state_dict()))
        assert restored.state_dict() == topk.state_dict()
        assert [entry.key for entry in restored.top(1)] == [("NZ", "US")]


class TestAnomalyState:
    def test_ewma_baseline_round_trip(self):
        baseline = EwmaBaseline(alpha=0.1, warmup=3)
        for value in (10.0, 11.0, 12.0, 50.0):
            baseline.observe(("NZ", "US"), value)
        restored = EwmaBaseline(alpha=0.1, warmup=3)
        restored.load_state(codec_round_trip(baseline.state_dict()))
        assert restored.state_dict() == baseline.state_dict()
        assert restored.mean(("NZ", "US")) == baseline.mean(("NZ", "US"))

    def test_windowed_rate_round_trip(self):
        rate = WindowedRate(window_ns=1_000 * MS)
        rate.add("syn", 100 * MS, count=3)
        restored = WindowedRate(window_ns=1_000 * MS)
        restored.load_state(codec_round_trip(rate.state_dict()))
        assert restored.state_dict() == rate.state_dict()

    def test_manager_round_trip(self):
        manager = AnomalyManager()
        for step in range(40):
            manager.observe_measurement(enriched(ts_ns=step * 50 * MS))
        restored = AnomalyManager()
        restored.load_state(codec_round_trip(manager.state_dict()))
        assert restored.state_dict() == manager.state_dict()


class TestResilienceState:
    def test_dlq_payload_bytes_survive(self):
        dlq = DeadLetterQueue(capacity=8)
        dlq.push("analytics.decode", "codec_error", b"\x00\xffbinary", 123)
        restored = DeadLetterQueue(capacity=8)
        restored.load_state(codec_round_trip(dlq.state_dict()))
        assert restored.state_dict() == dlq.state_dict()
        assert restored.entries()[0].payload == b"\x00\xffbinary"
        assert restored.summary() == dlq.summary()

    def test_breaker_round_trip(self):
        breaker = CircuitBreaker(name="tsdb", failure_threshold=2)
        breaker.record_failure(1)
        breaker.record_failure(2)  # opens
        restored = CircuitBreaker(name="tsdb", failure_threshold=2)
        restored.load_state(codec_round_trip(breaker.state_dict()))
        assert restored.state_dict() == breaker.state_dict()
        assert restored.state_name == breaker.state_name

    def test_retry_queue_round_trip_with_encoders(self):
        policy = RetryPolicy(seed=7)
        queue = RetryQueue(policy)
        queue.schedule("payload-a", now_ns=0, attempt=1)
        queue.schedule("payload-b", now_ns=0, attempt=2)
        state = codec_round_trip(queue.state_dict(encode_item=str))
        restored = RetryQueue(RetryPolicy(seed=99))
        restored.load_state(state, decode_item=str)
        assert restored.state_dict(encode_item=str) == queue.state_dict(
            encode_item=str
        )
        assert len(restored) == 2

    def test_retry_policy_rng_continuity(self):
        policy = RetryPolicy(seed=7)
        policy.delay_ns(1)  # advance the jitter RNG (attempts are 1-based)
        restored = RetryPolicy(seed=0)
        restored.load_state(codec_round_trip(policy.state_dict()))
        assert restored.delay_ns(2) == policy.delay_ns(2)

    def test_layer_round_trip(self):
        layer = ResilienceLayer()
        layer.dlq.push("mq", "lost", b"x", 5)
        state = codec_round_trip(layer.state_dict())
        restored = ResilienceLayer()
        restored.load_state(state)
        assert restored.state_dict() == layer.state_dict()
