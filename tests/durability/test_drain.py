"""Graceful drain tests: stage order, quiesced rejection accounting,
the clean checkpoint, and early shutdown mid-workload."""

from repro.durability.recovery import recover_runtime
from repro.durability.runtime import DurableRuntime

RUN = dict(duration_s=4.0, rate=30.0, queues=2)

EXPECTED_STAGES = [
    "quiesce",
    "drain-rings",
    "flush-mq",
    "flush-analytics",
    "flush-frontend",
    "flush-telemetry",
    "sync-wal",
    "clean-checkpoint",
]


def test_drain_runs_stages_in_dependency_order(tmp_path):
    runtime = DurableRuntime(str(tmp_path / "s"), profile="clean", seed=7, **RUN)
    report = runtime.run()
    assert report.stages == EXPECTED_STAGES
    assert report.ok, report.render()


def test_drain_leaves_clean_checkpoint(tmp_path):
    runtime = DurableRuntime(str(tmp_path / "s"), profile="clean", seed=7, **RUN)
    report = runtime.run()
    assert report.final_checkpoint is not None
    found = runtime.checkpointer.latest_valid()
    assert found is not None
    assert found[1]["checkpoint"]["clean"] is True


def test_offers_after_quiesce_are_rejected_and_counted(tmp_path):
    runtime = DurableRuntime(str(tmp_path / "s"), profile="clean", seed=7, **RUN)
    packets = list(
        runtime.injector.packet_stream(runtime.generator.packets())
    )
    runtime.process_batch(packets[:200])
    runtime.pipeline.quiesce()
    for packet in packets[200:220]:
        assert not runtime.pipeline.offer(packet)
    report = runtime.shutdown()
    assert report.rejected_while_quiesced == 20
    assert report.ok, report.render()


def test_shutdown_flag_stops_feeding_and_drains(tmp_path):
    calls = {"n": 0}

    def stop_after_two():
        calls["n"] += 1
        return calls["n"] >= 2

    runtime = DurableRuntime(str(tmp_path / "s"), profile="clean", seed=7, **RUN)
    report = runtime.run(shutdown_flag=stop_after_two)
    assert report.ok, report.render()
    # Interrupted early: strictly less traffic than the full scenario.
    full = DurableRuntime(str(tmp_path / "full"), profile="clean", seed=7, **RUN)
    full_report = full.run()
    assert report.ledger.ingested < full_report.ledger.ingested


def test_interrupted_run_recovers_cleanly(tmp_path):
    state_dir = str(tmp_path / "s")
    runtime = DurableRuntime(state_dir, profile="clean", seed=7, **RUN)
    report = runtime.run(shutdown_flag=lambda: True)
    assert report.ok

    restarted = DurableRuntime(state_dir, profile="clean", seed=7, **RUN)
    recovery = recover_runtime(
        restarted, observed_ingested=report.ledger.ingested
    )
    assert recovery.ok, recovery.render()
    assert recovery.clean_shutdown
    assert recovery.lost_at_crash == 0
