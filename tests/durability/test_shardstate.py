"""Per-shard checkpoint + ack-WAL namespacing (repro.durability.shardstate)."""

import os

import pytest

from repro.durability.shardstate import (
    SHARD_STATE_FORMAT,
    ShardRecovery,
    ShardStateStore,
)


def _state(last_seq):
    return {"shard_id": 0, "last_seq": last_seq, "packets_processed": 10}


class TestLayout:
    def test_each_shard_gets_its_own_directory(self, tmp_path):
        a = ShardStateStore(str(tmp_path), "shard-0")
        b = ShardStateStore(str(tmp_path), "shard-1")
        assert a.dir != b.dir
        assert os.path.isdir(a.dir) and os.path.isdir(b.dir)
        a.close()
        b.close()

    def test_empty_store_recovers_to_nothing(self, tmp_path):
        store = ShardStateStore(str(tmp_path), "shard-0")
        recovery = store.load()
        assert recovery.state is None
        assert recovery.deltas == []
        assert recovery.last_acked_seq == 0
        assert not recovery.from_checkpoint
        store.close()


class TestRoundTrip:
    def test_checkpoint_then_load(self, tmp_path):
        store = ShardStateStore(str(tmp_path), "shard-0")
        store.checkpoint(_state(5), now_ns=100, last_acked_seq=5)
        store.close()
        recovery = ShardStateStore(str(tmp_path), "shard-0").load()
        assert recovery.from_checkpoint
        assert recovery.state == _state(5)
        assert recovery.last_acked_seq == 5
        assert recovery.deltas == []

    def test_wal_deltas_replay_above_the_checkpoint_mark(self, tmp_path):
        store = ShardStateStore(str(tmp_path), "shard-0")
        store.append_ack(1, processed=64, parse_errors=0, records=3)
        store.checkpoint(_state(1), now_ns=100, last_acked_seq=1)
        store.append_ack(2, processed=64, parse_errors=1, records=2)
        store.append_ack(3, processed=32, parse_errors=0, records=1)
        store.close()

        recovery = ShardStateStore(str(tmp_path), "shard-0").load()
        assert [d["seq"] for d in recovery.deltas] == [2, 3]
        assert recovery.deltas[0] == {
            "seq": 2,
            "processed": 64,
            "parse_errors": 1,
            "records": 2,
        }
        assert recovery.last_acked_seq == 3

    def test_checkpoint_truncates_the_wal(self, tmp_path):
        store = ShardStateStore(str(tmp_path), "shard-0")
        for seq in range(1, 5):
            store.append_ack(seq, processed=1, parse_errors=0, records=0)
        store.checkpoint(_state(4), now_ns=100, last_acked_seq=4)
        store.close()
        recovery = ShardStateStore(str(tmp_path), "shard-0").load()
        assert recovery.deltas == []
        assert recovery.last_acked_seq == 4

    def test_stale_wal_rows_below_the_mark_are_deduped(self, tmp_path):
        """A crash between checkpoint write and WAL truncate leaves
        covered deltas behind; replay must skip them."""
        store = ShardStateStore(str(tmp_path), "shard-0")
        store.append_ack(1, processed=10, parse_errors=0, records=0)
        store.append_ack(2, processed=10, parse_errors=0, records=0)
        # Checkpoint covering seq<=2 but keep the WAL rows (simulated
        # crash before truncate): write through a second store whose
        # checkpointer shares the directory.
        store.checkpoint(_state(2), now_ns=50, last_acked_seq=2)
        store.append_ack(1, processed=10, parse_errors=0, records=0)
        store.append_ack(3, processed=7, parse_errors=0, records=0)
        store.close()
        recovery = ShardStateStore(str(tmp_path), "shard-0").load()
        assert [d["seq"] for d in recovery.deltas] == [3]

    def test_torn_wal_tail_is_flagged_not_fatal(self, tmp_path):
        store = ShardStateStore(str(tmp_path), "shard-0")
        store.append_ack(1, processed=5, parse_errors=0, records=0)
        store.close()
        wal_path = os.path.join(store.dir, "acks.wal")
        with open(wal_path, "ab") as f:
            f.write(b"\x01\x02torn")
        recovery = ShardStateStore(str(tmp_path), "shard-0").load()
        assert recovery.torn_tail
        assert [d["seq"] for d in recovery.deltas] == [1]

    def test_unsupported_format_is_rejected(self, tmp_path):
        store = ShardStateStore(str(tmp_path), "shard-0")
        store.checkpoint(_state(1), now_ns=10, last_acked_seq=1)
        store.close()
        reopened = ShardStateStore(str(tmp_path), "shard-0")
        # A newer snapshot claiming a future format version must be
        # refused loudly, not silently misread.
        reopened._pending_state = {
            "format": SHARD_STATE_FORMAT + 99,
            "shard": {"name": "shard-0", "last_acked_seq": 2},
            "worker": {},
        }
        reopened.checkpointer.checkpoint(20)
        with pytest.raises(ValueError):
            reopened.load()
        reopened.close()


class TestRecoveryDataclass:
    def test_from_checkpoint_property(self):
        assert not ShardRecovery(state=None).from_checkpoint
        assert ShardRecovery(state={"x": 1}).from_checkpoint
