"""Checkpointer tests: cadence, atomicity, pruning, corruption fallback."""

import os

import pytest

from repro.durability.checkpoint import Checkpointer
from repro.durability.codec import decode_snapshot
from repro.faults.crashpoints import CrashSchedule, SimulatedCrash

NS_PER_S = 1_000_000_000


def make(tmp_path, state=None, **kwargs):
    state = state if state is not None else {"value": 7}
    return Checkpointer(str(tmp_path / "state"), capture=lambda: dict(state), **kwargs)


class TestCadence:
    def test_first_checkpoint_is_due_immediately(self, tmp_path):
        ckpt = make(tmp_path, interval_ns=NS_PER_S)
        assert ckpt.due(0)
        assert ckpt.maybe_checkpoint(0) is not None

    def test_interval_respected(self, tmp_path):
        ckpt = make(tmp_path, interval_ns=NS_PER_S)
        ckpt.checkpoint(0)
        assert ckpt.maybe_checkpoint(NS_PER_S // 2) is None
        assert ckpt.maybe_checkpoint(NS_PER_S) is not None
        assert ckpt.checkpoints_written == 2

    def test_invalid_args_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make(tmp_path, interval_ns=0)
        with pytest.raises(ValueError):
            make(tmp_path, keep=0)


class TestAtomicity:
    def test_no_tmp_left_behind(self, tmp_path):
        ckpt = make(tmp_path)
        ckpt.checkpoint(123)
        names = os.listdir(ckpt.state_dir)
        assert len(names) == 1
        assert not any(name.endswith(".tmp") for name in names)

    def test_file_decodes_to_captured_state(self, tmp_path):
        ckpt = make(tmp_path, state={"flows": [1, 2, 3]})
        info = ckpt.checkpoint(5 * NS_PER_S, clean=True)
        with open(info.path, "rb") as handle:
            state = decode_snapshot(handle.read())
        assert state["flows"] == [1, 2, 3]
        assert state["checkpoint"] == {
            "now_ns": 5 * NS_PER_S,
            "clean": True,
            "seq": 1,
        }

    def test_on_written_called_with_info(self, tmp_path):
        seen = []
        ckpt = Checkpointer(
            str(tmp_path / "s"), capture=dict, on_written=seen.append
        )
        info = ckpt.checkpoint(0)
        assert seen == [info]


class TestPruning:
    def test_keep_bounds_files(self, tmp_path):
        ckpt = make(tmp_path, keep=2)
        for step in range(5):
            ckpt.checkpoint(step * NS_PER_S)
        infos = ckpt.list_checkpoints()
        assert [info.seq for info in infos] == [5, 4]

    def test_latest_valid_returns_newest(self, tmp_path):
        ckpt = make(tmp_path, keep=3)
        for step in range(3):
            ckpt.checkpoint(step * NS_PER_S)
        found = ckpt.latest_valid()
        assert found is not None
        info, state = found
        assert info.seq == 3
        assert state["checkpoint"]["seq"] == 3


class TestCorruptionFallback:
    def test_torn_newest_falls_back_to_previous(self, tmp_path):
        ckpt = make(tmp_path, keep=3)
        ckpt.checkpoint(1 * NS_PER_S)
        newest = ckpt.checkpoint(2 * NS_PER_S)
        blob = open(newest.path, "rb").read()
        with open(newest.path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])

        reader = make(tmp_path, keep=3)
        found = reader.latest_valid()
        assert found is not None
        assert found[0].seq == 1
        assert reader.corrupt_skipped == 1

    def test_all_corrupt_means_cold_start(self, tmp_path):
        ckpt = make(tmp_path, keep=3)
        for step in range(2):
            info = ckpt.checkpoint(step * NS_PER_S)
            with open(info.path, "wb") as handle:
                handle.write(b"garbage")
        reader = make(tmp_path, keep=3)
        assert reader.latest_valid() is None
        assert reader.corrupt_skipped == 2

    def test_empty_dir_means_cold_start(self, tmp_path):
        assert make(tmp_path).latest_valid() is None

    def test_seq_resyncs_past_survivors(self, tmp_path):
        ckpt = make(tmp_path, keep=3)
        for step in range(3):
            ckpt.checkpoint(step * NS_PER_S)
        reader = make(tmp_path, keep=3)
        reader.latest_valid()
        info = reader.checkpoint(10 * NS_PER_S)
        assert info.seq == 4  # never collides with survivors


class TestCrashInstrumentation:
    def test_checkpoint_mid_leaves_torn_file(self, tmp_path):
        schedule = CrashSchedule().arm("checkpoint.mid")
        ckpt = make(tmp_path, crash_schedule=schedule)
        with pytest.raises(SimulatedCrash):
            ckpt.checkpoint(0)
        # The torn file sits at the FINAL path — the non-atomic failure
        # the tmp+rename discipline normally prevents — and recovery
        # must skip it.
        assert len(os.listdir(ckpt.state_dir)) == 1
        assert make(tmp_path).latest_valid() is None

    def test_checkpoint_post_fires_before_on_written(self, tmp_path):
        truncations = []
        schedule = CrashSchedule().arm("checkpoint.post")
        ckpt = Checkpointer(
            str(tmp_path / "s"),
            capture=dict,
            crash_schedule=schedule,
            on_written=lambda info: truncations.append(info),
        )
        with pytest.raises(SimulatedCrash):
            ckpt.checkpoint(0)
        # Crash between the durable checkpoint and the WAL truncate:
        # the checkpoint file exists, the truncate never ran.
        assert truncations == []
        reader = Checkpointer(str(tmp_path / "s"), capture=dict)
        assert reader.latest_valid() is not None
