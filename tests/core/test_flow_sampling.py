"""Flow-sampling tests: the overload lever."""

import statistics

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline


def _run(packets, modulus, queues=2):
    config = PipelineConfig(num_queues=queues, flow_sample_modulus=modulus)
    pipeline = RuruPipeline(config=config)
    stats = pipeline.run_packets(packets)
    return pipeline, stats


class TestFlowSampling:
    def test_modulus_one_measures_everything(self, small_workload):
        generator, packets = small_workload
        _, full = _run(packets, modulus=1)
        completing = sum(
            1 for s in generator.specs
            if s.completes and not s.rst_after_synack
        )
        assert full.measurements == completing

    @pytest.mark.parametrize("modulus", [2, 4, 8])
    def test_sampled_fraction_tracks_modulus(self, small_workload, modulus):
        _, packets = small_workload
        _, full = _run(packets, modulus=1)
        _, sampled = _run(packets, modulus=modulus)
        fraction = sampled.measurements / full.measurements
        expected = 1.0 / modulus
        assert expected * 0.5 < fraction < expected * 1.9

    def test_sampling_is_flow_consistent(self, small_workload):
        """A sampled flow is fully measured, never half-tracked: no
        orphan SYN-ACKs from sampling (both directions share the
        symmetric hash)."""
        _, packets = small_workload
        _, sampled = _run(packets, modulus=4)
        assert sampled.tracker.orphan_synack == 0

    def test_latency_sample_unbiased(self, small_workload):
        """The Toeplitz hash knows nothing about latency, so the
        sampled median must track the full median."""
        _, packets = small_workload
        pipeline_full, _ = _run(packets, modulus=1)
        pipeline_sampled, _ = _run(packets, modulus=4)
        full_median = statistics.median(
            r.total_ms for r in pipeline_full.measurements
        )
        sampled_median = statistics.median(
            r.total_ms for r in pipeline_sampled.measurements
        )
        assert abs(sampled_median - full_median) / full_median < 0.35

    def test_sampled_out_counted_and_cheap(self, small_workload):
        _, packets = small_workload
        pipeline, stats = _run(packets, modulus=4)
        skipped = sum(w.packets_sampled_out for w in pipeline.workers)
        assert skipped > 0
        assert skipped + stats.tracker.packets + stats.parse_errors == \
            stats.packets_queued

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(flow_sample_modulus=0).validate()


class TestRetaRebalance:
    def test_rebalance_shifts_load(self, small_workload):
        from repro.dpdk.nic import NicPort

        _, packets = small_workload
        nic = NicPort(num_queues=4)
        nic.rebalance([1, 1, 1, 5])  # bias toward queue 3
        for packet in packets[:2000]:
            nic.receive(packet)
        balance = nic.stats.queue_balance()
        assert balance[3] > 0.4
        assert all(share > 0.02 for share in balance[:3])

    def test_rebalance_validation(self):
        from repro.dpdk.nic import NicPort

        nic = NicPort(num_queues=2)
        with pytest.raises(ValueError):
            nic.rebalance([1])
        with pytest.raises(ValueError):
            nic.rebalance([0, 0])
        with pytest.raises(ValueError):
            nic.rebalance([-1, 2])

    def test_midrun_rebalance_breaks_in_flight_handshakes(self, small_workload):
        """The documented ablation: changing the RETA mid-run strands
        in-flight handshakes on their old queue's table."""
        _, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        half = len(packets) // 2
        for packet in packets[:half]:
            pipeline.offer(packet)
        pipeline.drain()
        pipeline.nic.rebalance([5, 1, 1, 1])  # drastic shift mid-run
        for packet in packets[half:]:
            pipeline.offer(packet)
        pipeline.drain()
        pipeline._merge_worker_stats()
        stats = pipeline.stats

        baseline = RuruPipeline(config=PipelineConfig(num_queues=4))
        baseline_stats = baseline.run_packets(packets)
        # Some measurements are lost to the queue change, and the
        # orphan counters say why.
        assert stats.measurements < baseline_stats.measurements
        assert (
            stats.tracker.orphan_synack + stats.tracker.stray_ack
            > baseline_stats.tracker.orphan_synack
            + baseline_stats.tracker.stray_ack
        )
