"""LatencyRecord tests."""

from repro.core.latency import Direction, LatencyRecord
from repro.net.addresses import ip_to_int, ipv6_to_int


def _record(**overrides):
    fields = dict(
        src_ip=ip_to_int("10.0.0.1"),
        dst_ip=ip_to_int("20.0.0.1"),
        src_port=40000,
        dst_port=443,
        internal_ns=10_000_000,
        external_ns=140_000_000,
        syn_ns=1_000_000_000,
        synack_ns=1_140_000_000,
        ack_ns=1_150_000_000,
    )
    fields.update(overrides)
    return LatencyRecord(**fields)


class TestLatencyRecord:
    def test_total_is_sum(self):
        record = _record()
        assert record.total_ns == 150_000_000
        assert record.total_ms == 150.0

    def test_millisecond_properties(self):
        record = _record()
        assert record.internal_ms == 10.0
        assert record.external_ms == 140.0

    def test_ipv4_text(self):
        record = _record()
        assert record.src_ip_text == "10.0.0.1"
        assert record.dst_ip_text == "20.0.0.1"

    def test_ipv6_text(self):
        record = _record(
            src_ip=ipv6_to_int("2001:db8::1"),
            dst_ip=ipv6_to_int("2001:db8::2"),
            is_ipv6=True,
        )
        assert record.src_ip_text == "2001:db8::1"

    def test_timestamp_is_ack_time(self):
        assert _record().timestamp_ns == 1_150_000_000

    def test_str_contains_components(self):
        text = str(_record())
        assert "internal=10.000ms" in text
        assert "external=140.000ms" in text
        assert "total=150.000ms" in text

    def test_frozen(self):
        record = _record()
        try:
            record.internal_ns = 5
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_direction_enum_values(self):
        assert Direction.OUTBOUND.value == "outbound"
        assert Direction.INBOUND.value == "inbound"
