"""Handshake tracker tests: Fig 1's arithmetic and every edge case."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.handshake import HandshakeTracker
from repro.net.parser import ParsedPacket

MS = 1_000_000

CLIENT = (0x0A000001, 40000)
SERVER = (0x14000001, 443)
C_ISN = 1000
S_ISN = 9000


def pkt(direction, flags, t_ns, seq=0, ack=0, payload=0, src=None, dst=None):
    """Build a ParsedPacket; direction 'c' = client->server."""
    if direction == "c":
        (src_ip, src_port), (dst_ip, dst_port) = CLIENT, SERVER
    else:
        (src_ip, src_port), (dst_ip, dst_port) = SERVER, CLIENT
    if src:
        src_ip, src_port = src
    if dst:
        dst_ip, dst_port = dst
    return ParsedPacket(
        src_ip=src_ip, dst_ip=dst_ip, src_port=src_port, dst_port=dst_port,
        flags=flags, seq=seq, ack=ack, payload_len=payload, timestamp_ns=t_ns,
    )


SYN = 0x02
SYNACK = 0x12
ACK = 0x10
RST = 0x04


def handshake(t0=0, external=140 * MS, internal=10 * MS):
    """The three canonical handshake packets."""
    return [
        pkt("c", SYN, t0, seq=C_ISN),
        pkt("s", SYNACK, t0 + external, seq=S_ISN, ack=C_ISN + 1),
        pkt("c", ACK, t0 + external + internal, seq=C_ISN + 1, ack=S_ISN + 1),
    ]


class TestFigureOne:
    """The paper's latency calculation (Fig 1)."""

    def test_basic_measurement(self):
        tracker = HandshakeTracker()
        record = None
        for packet in handshake(t0=5 * MS):
            record = tracker.process(packet) or record
        assert record is not None
        assert record.external_ns == 140 * MS
        assert record.internal_ns == 10 * MS
        assert record.total_ns == 150 * MS
        assert record.src_ip == CLIENT[0]
        assert record.dst_ip == SERVER[0]
        assert tracker.stats.measurements == 1

    def test_timestamps_recorded(self):
        tracker = HandshakeTracker()
        record = None
        for packet in handshake(t0=1_000 * MS):
            record = tracker.process(packet) or record
        assert record.syn_ns == 1_000 * MS
        assert record.synack_ns == 1_140 * MS
        assert record.ack_ns == 1_150 * MS

    @pytest.mark.parametrize("external,internal", [
        (1 * MS, 1 * MS),
        (300 * MS, 80 * MS),
        (4000 * MS, 12 * MS),  # the firewall-glitch magnitude
    ])
    def test_latency_sweep(self, external, internal):
        tracker = HandshakeTracker()
        record = None
        for packet in handshake(external=external, internal=internal):
            record = tracker.process(packet) or record
        assert record.external_ns == external
        assert record.internal_ns == internal

    def test_entry_removed_after_completion(self):
        tracker = HandshakeTracker()
        for packet in handshake():
            tracker.process(packet)
        assert len(tracker.table) == 0

    def test_sink_receives_record(self):
        got = []
        tracker = HandshakeTracker(sink=got.append)
        for packet in handshake():
            tracker.process(packet)
        assert len(got) == 1
        assert tracker.pending == []

    def test_pending_drain_without_sink(self):
        tracker = HandshakeTracker()
        for packet in handshake():
            tracker.process(packet)
        assert len(tracker.drain()) == 1
        assert tracker.drain() == []


class TestRetransmissions:
    def test_syn_retransmit_keeps_first_timestamp(self):
        tracker = HandshakeTracker()
        syn, synack, ack = handshake(t0=0, external=100 * MS, internal=10 * MS)
        tracker.process(syn)
        tracker.process(pkt("c", SYN, 50 * MS, seq=C_ISN))  # retransmit
        tracker.process(synack)
        record = tracker.process(ack)
        assert record.external_ns == 100 * MS  # from the FIRST SYN
        assert tracker.stats.syn_retransmits == 1

    def test_synack_retransmit_keeps_first_timestamp(self):
        tracker = HandshakeTracker()
        syn, synack, ack = handshake(external=100 * MS, internal=50 * MS)
        tracker.process(syn)
        tracker.process(synack)
        tracker.process(pkt("s", SYNACK, 130 * MS, seq=S_ISN, ack=C_ISN + 1))
        record = tracker.process(ack)
        assert record.external_ns == 100 * MS
        assert record.internal_ns == 50 * MS
        assert tracker.stats.synack_retransmits == 1


class TestStrayTraffic:
    def test_orphan_synack_counted(self):
        tracker = HandshakeTracker()
        _, synack, _ = handshake()
        tracker.process(synack)
        assert tracker.stats.orphan_synack == 1
        assert len(tracker.table) == 0

    def test_data_acks_are_stray(self):
        tracker = HandshakeTracker()
        for packet in handshake():
            tracker.process(packet)
        # Post-handshake data ACKs find no entry.
        tracker.process(pkt("c", ACK, 200 * MS, seq=C_ISN + 100, ack=S_ISN + 100))
        assert tracker.stats.stray_ack == 1
        assert tracker.stats.measurements == 1

    def test_ack_before_synack_is_stray(self):
        tracker = HandshakeTracker()
        syn, _, ack = handshake()
        tracker.process(syn)
        tracker.process(ack)  # SYN-ACK never seen
        assert tracker.stats.stray_ack == 1
        assert tracker.stats.measurements == 0

    def test_ack_from_wrong_side_rejected(self):
        tracker = HandshakeTracker()
        syn, synack, _ = handshake()
        tracker.process(syn)
        tracker.process(synack)
        # An ACK from the *server* side must not complete the handshake.
        tracker.process(pkt("s", ACK, 160 * MS, seq=S_ISN + 1, ack=C_ISN + 1))
        assert tracker.stats.measurements == 0

    def test_synack_from_wrong_side_rejected(self):
        tracker = HandshakeTracker()
        syn, _, _ = handshake()
        tracker.process(syn)
        tracker.process(pkt("c", SYNACK, 10 * MS, seq=77, ack=C_ISN + 1))
        assert tracker.stats.seq_mismatch == 1


class TestSequenceValidation:
    def test_synack_with_wrong_ack_rejected(self):
        tracker = HandshakeTracker()
        syn, _, _ = handshake()
        tracker.process(syn)
        tracker.process(pkt("s", SYNACK, 100 * MS, seq=S_ISN, ack=C_ISN + 999))
        assert tracker.stats.seq_mismatch == 1
        assert tracker.stats.measurements == 0

    def test_ack_with_wrong_numbers_rejected(self):
        tracker = HandshakeTracker()
        syn, synack, _ = handshake()
        tracker.process(syn)
        tracker.process(synack)
        tracker.process(pkt("c", ACK, 150 * MS, seq=C_ISN + 2, ack=S_ISN + 1))
        assert tracker.stats.seq_mismatch == 1

    def test_lenient_mode_accepts_mismatched_numbers(self):
        config = PipelineConfig(strict_sequence_check=False)
        tracker = HandshakeTracker(config=config)
        syn, synack, _ = handshake()
        tracker.process(syn)
        tracker.process(synack)
        record = tracker.process(pkt("c", ACK, 150 * MS, seq=12345, ack=67890))
        assert record is not None

    def test_sequence_wraparound(self):
        tracker = HandshakeTracker()
        isn = (1 << 32) - 1  # SYN consumes the last sequence number
        tracker.process(pkt("c", SYN, 0, seq=isn))
        tracker.process(pkt("s", SYNACK, 100 * MS, seq=500, ack=0))
        record = tracker.process(pkt("c", ACK, 110 * MS, seq=0, ack=501))
        assert record is not None
        assert record.external_ns == 100 * MS


class TestResets:
    def test_rst_aborts_tracking(self):
        tracker = HandshakeTracker()
        syn, synack, ack = handshake()
        tracker.process(syn)
        tracker.process(synack)
        tracker.process(pkt("c", RST | ACK, 145 * MS, seq=C_ISN + 1))
        assert tracker.stats.resets == 1
        tracker.process(ack)
        assert tracker.stats.measurements == 0

    def test_rst_on_untracked_flow_ignored(self):
        tracker = HandshakeTracker()
        tracker.process(pkt("c", RST, 0))
        assert tracker.stats.resets == 0


class TestTupleReuse:
    def test_swapped_role_reuse_restarts_tracking(self):
        tracker = HandshakeTracker()
        tracker.process(pkt("c", SYN, 0, seq=C_ISN))
        # Same 4-tuple, but now the old server initiates.
        tracker.process(pkt("s", SYN, 10 * MS, seq=5555))
        entry = next(iter(tracker.table.entries()))[1]
        assert entry.orig_ip == SERVER[0]
        assert entry.syn_seq == 5555


class TestSanityCap:
    def test_over_cap_latency_discarded(self):
        config = PipelineConfig(max_latency_ns=1_000 * MS)
        tracker = HandshakeTracker(config=config)
        for packet in handshake(external=5_000 * MS, internal=1 * MS):
            tracker.process(packet)
        assert tracker.stats.invalid_latency == 1
        assert tracker.stats.measurements == 0


class TestSweep:
    def test_timeout_expires_half_open(self):
        config = PipelineConfig(
            handshake_timeout_ns=1_000 * MS, sweep_interval_ns=100 * MS
        )
        tracker = HandshakeTracker(config=config)
        tracker.process(pkt("c", SYN, 0, seq=C_ISN))
        assert len(tracker.table) == 1
        removed = tracker.maybe_sweep(now_ns=2_000 * MS)
        assert removed == 1
        assert len(tracker.table) == 0

    def test_sweep_respects_interval(self):
        config = PipelineConfig(sweep_interval_ns=1_000 * MS)
        tracker = HandshakeTracker(config=config)
        tracker.maybe_sweep(now_ns=500 * MS)
        tracker.process(pkt("c", SYN, 0, seq=C_ISN))
        # Within the interval of the first sweep: no-op.
        assert tracker.maybe_sweep(now_ns=900 * MS) == 0


class TestPayloadIgnored:
    def test_syn_with_payload_still_tracked(self):
        # TCP Fast Open SYNs can carry data.
        tracker = HandshakeTracker()
        tracker.process(pkt("c", SYN, 0, seq=C_ISN, payload=100))
        assert len(tracker.table) == 1
