"""Pipeline configuration validation tests."""

import pytest

from repro.core.config import PipelineConfig


class TestPipelineConfig:
    def test_defaults_validate(self):
        PipelineConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_queues", 0),
            ("burst_size", 0),
            ("flow_table_size", -1),
            ("handshake_timeout_ns", 0),
            ("max_latency_ns", -5),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        config = PipelineConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()

    def test_default_key_is_symmetric(self):
        key = PipelineConfig().rss_key
        assert all(key[i] == key[i % 2] for i in range(len(key)))
