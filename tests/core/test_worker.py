"""Queue worker tests."""

from repro.core.config import PipelineConfig
from repro.core.stats import PipelineStats
from repro.core.worker import QueueWorker
from repro.dpdk.nic import NicPort
from repro.net.packet import Packet
from tests.conftest import make_handshake


def _nic_with_handshake(num_queues=1):
    nic = NicPort(num_queues=num_queues)
    for packet in make_handshake():
        nic.receive(packet)
    return nic


class TestQueueWorker:
    def test_poll_processes_burst_and_measures(self):
        nic = _nic_with_handshake()
        got = []
        worker = QueueWorker(nic, queue_id=0, sink=got.append)
        processed = worker.poll()
        assert processed == 3
        assert len(got) == 1
        assert got[0].external_ns == 50_000_000

    def test_poll_empty_queue_returns_zero(self):
        nic = NicPort(num_queues=1)
        worker = QueueWorker(nic, queue_id=0)
        assert worker.poll() == 0

    def test_mbufs_freed_after_processing(self):
        nic = _nic_with_handshake()
        worker = QueueWorker(nic, queue_id=0)
        worker.poll()
        assert nic.pool.in_use == 0

    def test_parse_errors_counted(self):
        nic = NicPort(num_queues=1)
        nic.receive(Packet(data=b"\x00" * 40, timestamp_ns=1))  # not-ip junk
        stats = PipelineStats()
        worker = QueueWorker(nic, queue_id=0, pipeline_stats=stats)
        worker.poll()
        assert stats.parse_errors == 1
        assert "not-ip" in stats.parse_error_reasons

    def test_observer_sees_parsed_packets(self):
        nic = _nic_with_handshake()
        seen = []
        worker = QueueWorker(nic, queue_id=0, observers=[seen.append])
        worker.poll()
        assert len(seen) == 3
        assert seen[0].is_syn

    def test_burst_size_respected(self):
        nic = NicPort(num_queues=1)
        for _ in range(3):
            for packet in make_handshake():
                nic.receive(packet)
        config = PipelineConfig(burst_size=4)
        worker = QueueWorker(nic, queue_id=0, config=config)
        assert worker.poll() == 4
        assert worker.poll() == 4
        assert worker.poll() == 1
