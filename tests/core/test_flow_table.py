"""Flow table tests: canonical keys, eviction, expiry."""

import pytest

from repro.core.flow_table import (
    FlowEntry,
    FlowState,
    HandshakeTable,
    canonical_flow_key,
)


def _entry(syn_ns=0, orig_ip=1, orig_port=10):
    return FlowEntry(
        state=FlowState.SYN_SEEN,
        orig_ip=orig_ip,
        orig_port=orig_port,
        resp_ip=2,
        resp_port=20,
        is_ipv6=False,
        syn_ns=syn_ns,
        syn_seq=100,
        rss_hash=0,
    )


class TestCanonicalKey:
    def test_direction_independent(self):
        forward = canonical_flow_key(1, 10, 2, 20)
        reverse = canonical_flow_key(2, 20, 1, 10)
        assert forward == reverse

    def test_port_breaks_tie_on_same_ip(self):
        a = canonical_flow_key(5, 1, 5, 9)
        b = canonical_flow_key(5, 9, 5, 1)
        assert a == b

    def test_family_distinguishes(self):
        assert canonical_flow_key(1, 2, 3, 4, False) != canonical_flow_key(
            1, 2, 3, 4, True
        )

    def test_distinct_flows_distinct_keys(self):
        assert canonical_flow_key(1, 10, 2, 20) != canonical_flow_key(1, 11, 2, 20)


class TestHandshakeTable:
    def test_insert_get_remove(self):
        table = HandshakeTable(max_entries=10)
        key = canonical_flow_key(1, 10, 2, 20)
        table.insert(key, _entry())
        assert key in table
        assert table.get(key) is not None
        assert table.remove(key, reason="completed") is not None
        assert table.completed == 1
        assert len(table) == 0

    def test_remove_reasons_counted(self):
        table = HandshakeTable(max_entries=10)
        for i, reason in enumerate(["completed", "aborted", "expired"]):
            key = canonical_flow_key(i, 1, 99, 2)
            table.insert(key, _entry())
            table.remove(key, reason=reason)
        assert (table.completed, table.aborted, table.expired) == (1, 1, 1)

    def test_remove_missing_returns_none(self):
        table = HandshakeTable(max_entries=4)
        assert table.remove(canonical_flow_key(1, 2, 3, 4)) is None

    def test_capacity_evicts_oldest(self):
        table = HandshakeTable(max_entries=2)
        k1, k2, k3 = (canonical_flow_key(i, 1, 99, 2) for i in range(3))
        table.insert(k1, _entry(syn_ns=1))
        table.insert(k2, _entry(syn_ns=2))
        evicted = table.insert(k3, _entry(syn_ns=3))
        assert evicted is not None and evicted.syn_ns == 1
        assert k1 not in table and k2 in table and k3 in table
        assert table.evicted == 1

    def test_reinsert_same_key_does_not_evict(self):
        table = HandshakeTable(max_entries=1)
        key = canonical_flow_key(1, 2, 3, 4)
        table.insert(key, _entry(syn_ns=1))
        assert table.insert(key, _entry(syn_ns=2)) is None
        assert table.get(key).syn_ns == 2

    def test_sweep_expired_removes_only_old(self):
        table = HandshakeTable(max_entries=10)
        old_key = canonical_flow_key(1, 1, 99, 2)
        new_key = canonical_flow_key(2, 1, 99, 2)
        table.insert(old_key, _entry(syn_ns=0))
        table.insert(new_key, _entry(syn_ns=9_000_000_000))
        removed = table.sweep_expired(now_ns=10_000_000_000, timeout_ns=5_000_000_000)
        assert removed == 1
        assert old_key not in table and new_key in table
        assert table.expired == 1

    def test_sweep_stops_at_first_young_entry(self):
        table = HandshakeTable(max_entries=10)
        # Insertion order: young first, then old — the scan must stop
        # at the young head even though an older entry sits behind it.
        young = canonical_flow_key(1, 1, 99, 2)
        old = canonical_flow_key(2, 1, 99, 2)
        table.insert(young, _entry(syn_ns=9_000_000_000))
        table.insert(old, _entry(syn_ns=0))
        removed = table.sweep_expired(now_ns=10_000_000_000, timeout_ns=5_000_000_000)
        assert removed == 0  # O(expired) sweep trades this corner for speed
        assert len(table) == 2

    def test_occupancy(self):
        table = HandshakeTable(max_entries=4)
        table.insert(canonical_flow_key(1, 2, 3, 4), _entry())
        assert table.occupancy == 0.25

    def test_entries_iteration_order(self):
        table = HandshakeTable(max_entries=10)
        keys = [canonical_flow_key(i, 1, 99, 2) for i in range(3)]
        for i, key in enumerate(keys):
            table.insert(key, _entry(syn_ns=i))
        assert [key for key, _ in table.entries()] == keys

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            HandshakeTable(max_entries=0)

    def test_entry_age(self):
        entry = _entry(syn_ns=100)
        assert entry.age_ns(250) == 150


class TestSynFloodPressure:
    """Eviction under a flood of never-completing SYNs.

    The attack model: an attacker sprays SYNs from distinct 4-tuples
    faster than handshakes complete. The table must cost bounded
    memory, keep exact counters, and leave legitimate in-flight
    handshakes retrievable and intact.
    """

    CAPACITY = 128

    def _flood(self, table, count, start=1000):
        for i in range(count):
            key = canonical_flow_key(start + i, 1, 99, 2)
            table.insert(key, _entry(syn_ns=i, orig_ip=start + i))

    def test_memory_bounded_at_capacity(self):
        table = HandshakeTable(max_entries=self.CAPACITY)
        self._flood(table, 10 * self.CAPACITY)
        assert len(table) == self.CAPACITY
        assert table.inserted == 10 * self.CAPACITY
        assert table.evicted == 9 * self.CAPACITY

    def test_count_conservation_under_flood(self):
        table = HandshakeTable(max_entries=self.CAPACITY)
        self._flood(table, 5 * self.CAPACITY)
        # Every insert is still in the table or counted out of it.
        accounted = (
            len(table) + table.evicted + table.completed
            + table.expired + table.aborted
        )
        assert accounted == table.inserted

    def test_survivors_are_newest_and_intact(self):
        table = HandshakeTable(max_entries=self.CAPACITY)
        self._flood(table, 3 * self.CAPACITY)
        entries = list(table.entries())
        # Drop-oldest leaves exactly the newest CAPACITY flood entries,
        # in insertion order, with their fields unclobbered.
        expected_first = 1000 + 2 * self.CAPACITY
        assert [e.orig_ip for _, e in entries] == list(
            range(expected_first, expected_first + self.CAPACITY)
        )
        for key, entry in entries:
            assert table.get(key) is entry
            assert entry.state is FlowState.SYN_SEEN

    def test_inflight_handshake_completes_mid_flood(self):
        table = HandshakeTable(max_entries=self.CAPACITY)
        good_key = canonical_flow_key(7, 7, 8, 8)
        good = _entry(syn_ns=50, orig_ip=7, orig_port=7)
        table.insert(good_key, good)
        # SYN-ACK arrives, then the flood fills the rest of the table
        # (but never exceeds capacity while the good flow is resident).
        good.state = FlowState.SYNACK_SEEN
        good.synack_ns = 60
        self._flood(table, self.CAPACITY - 1)
        survivor = table.get(good_key)
        assert survivor is good
        assert survivor.state is FlowState.SYNACK_SEEN
        assert survivor.synack_ns == 60
        completed = table.remove(good_key, reason="completed")
        assert completed is good
        assert table.completed == 1

    def test_flood_entries_expire_on_sweep(self):
        table = HandshakeTable(max_entries=self.CAPACITY)
        self._flood(table, self.CAPACITY)
        removed = table.sweep_expired(
            now_ns=10_000_000_000, timeout_ns=1_000_000_000
        )
        assert removed == self.CAPACITY
        assert len(table) == 0
        assert table.expired == self.CAPACITY

    def test_reinsert_after_eviction_is_clean(self):
        table = HandshakeTable(max_entries=2)
        first = canonical_flow_key(1, 1, 99, 2)
        table.insert(first, _entry(orig_ip=1))
        self._flood(table, 2)  # evicts `first`
        assert first not in table
        table.insert(first, _entry(orig_ip=1, syn_ns=777))
        assert table.get(first).syn_ns == 777
