"""End-to-end pipeline tests (Fig 2 wiring)."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.net.pcap import PcapWriter
from tests.conftest import make_handshake

MS = 1_000_000


class TestSingleFlow:
    def test_one_handshake_one_measurement(self):
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        stats = pipeline.run_packets(make_handshake(external_ns=120 * MS, internal_ns=8 * MS))
        assert stats.measurements == 1
        record = pipeline.measurements[0]
        assert record.external_ns == 120 * MS
        assert record.internal_ns == 8 * MS

    def test_clock_follows_packets(self):
        pipeline = RuruPipeline()
        pipeline.run_packets(make_handshake(syn_ns=5 * MS))
        assert pipeline.clock.now_ns >= 5 * MS


class TestWorkload:
    def test_synthetic_workload_measures_completed_flows(self, small_workload):
        generator, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        stats = pipeline.run_packets(packets)
        completing = [
            spec for spec in generator.specs
            if spec.completes and not spec.rst_after_synack
        ]
        assert stats.measurements == len(completing)
        assert stats.nic_drops == 0
        assert stats.parse_errors == 0

    def test_measurements_match_ground_truth(self, small_workload):
        generator, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=2))
        pipeline.run_packets(packets)
        # Index ground truth by (client, port) pair.
        truth = {
            (spec.client_ip, spec.client_port): spec
            for spec in generator.specs
        }
        checked = 0
        for record in pipeline.measurements:
            spec = truth.get((record.src_ip, record.src_port))
            if spec is None:
                continue
            assert abs(record.external_ns - spec.expected_external_ns()) <= MS
            assert abs(record.internal_ns - spec.expected_internal_ns()) <= MS
            checked += 1
        assert checked == len(pipeline.measurements)

    def test_queue_count_does_not_change_results(self, small_workload):
        _, packets = small_workload
        totals = []
        for queues in (1, 2, 8):
            pipeline = RuruPipeline(config=PipelineConfig(num_queues=queues))
            pipeline.run_packets(packets)
            totals.append(
                sorted(record.total_ns for record in pipeline.measurements)
            )
        assert totals[0] == totals[1] == totals[2]

    def test_queue_balance_spreads_load(self, small_workload):
        _, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        pipeline.run_packets(packets)
        balance = pipeline.queue_balance()
        assert len(balance) == 4
        assert all(share > 0.05 for share in balance)

    def test_flow_table_occupancy_reported(self, small_workload):
        _, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        pipeline.run_packets(packets)
        occupancy = pipeline.flow_table_occupancy()
        assert len(occupancy) == 4
        # Only never-completed handshakes stay resident.
        assert all(count < 50 for count in occupancy)


class TestStatsMerging:
    def test_run_packets_twice_does_not_double_count(self, small_workload):
        """Tracker counters are recomputed, not re-accumulated, per run."""
        _, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        first = dict(pipeline.run_packets(packets).summary())
        # The second run re-offers the same trace into live trackers:
        # totals must equal one fresh pass over 2x packets, never a
        # merge of already-merged tracker stats.
        pipeline.run_packets(packets)
        second = pipeline.stats.summary()
        assert second["packets_offered"] == 2 * first["packets_offered"]
        assert pipeline.stats.tracker.packets == sum(
            worker.stats.packets for worker in pipeline.workers
        )
        assert second["packets_processed"] == sum(
            worker.packets_processed for worker in pipeline.workers
        )

    def test_worker_counters_surface_in_pipeline_stats(self, small_workload):
        _, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        stats = pipeline.run_packets(packets)
        assert stats.packets_processed == stats.packets_queued
        assert stats.packets_sampled_out == 0
        assert stats.queue_share == pipeline.queue_balance()
        assert len(stats.queue_share) == 4

    def test_sampled_out_counted(self, small_workload):
        _, packets = small_workload
        pipeline = RuruPipeline(
            config=PipelineConfig(num_queues=2, flow_sample_modulus=4)
        )
        stats = pipeline.run_packets(packets)
        assert stats.packets_sampled_out > 0
        assert stats.summary()["packets_sampled_out"] == stats.packets_sampled_out

    def test_parse_error_reasons_bucketed_per_reason(self):
        from repro.net.packet import Packet

        pipeline = RuruPipeline(config=PipelineConfig(num_queues=1))
        good = make_handshake()
        # A frame with a bogus ethertype and a truncated IPv4 frame
        # exercise two distinct parse-drop reasons.
        bad_ethertype = Packet(
            data=good[0].data[:12] + b"\x86\x00" + good[0].data[14:],
            timestamp_ns=good[0].timestamp_ns,
        )
        truncated = Packet(data=good[0].data[:20], timestamp_ns=good[0].timestamp_ns)
        stats = pipeline.run_packets(good + [bad_ethertype, truncated])
        assert stats.parse_errors == 2
        assert len(stats.parse_error_reasons) == 2
        assert sum(stats.parse_error_reasons.values()) == 2
        summary = stats.summary()
        for reason, count in stats.parse_error_reasons.items():
            assert summary[f"parse_error.{reason}"] == count


class TestSink:
    def test_custom_sink_receives_stream(self, small_workload):
        _, packets = small_workload
        got = []
        pipeline = RuruPipeline(sink=got.append)
        stats = pipeline.run_packets(packets)
        assert len(got) == stats.measurements
        assert pipeline.measurements == []  # collected by the sink instead


class TestPcapReplay:
    def test_run_pcap(self, tmp_path, small_workload):
        _, packets = small_workload
        path = tmp_path / "trace.pcap"
        with PcapWriter(path) as writer:
            for packet in packets:
                writer.write(packet)
        pipeline = RuruPipeline()
        stats = pipeline.run_pcap(path)
        assert stats.measurements > 0
        assert stats.packets_offered == len(packets)


class TestValidation:
    def test_bad_feed_batch_rejected(self):
        with pytest.raises(ValueError):
            RuruPipeline(feed_batch=0)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RuruPipeline(config=PipelineConfig(num_queues=0))


class TestSupervisedWorkers:
    def test_crashing_workers_lose_nothing(self, small_workload):
        from repro.resilience import Supervisor

        _, packets = small_workload
        baseline = RuruPipeline(config=PipelineConfig(num_queues=2))
        baseline.run_packets(packets)

        crashes = {"count": 0}

        def crash_every_third(poll, role):
            calls = {"n": 0}

            def wrapped():
                calls["n"] += 1
                if calls["n"] % 3 == 0:
                    crashes["count"] += 1
                    raise RuntimeError(f"induced crash in {role}")
                return poll()

            return wrapped

        supervisor = Supervisor()
        pipeline = RuruPipeline(
            config=PipelineConfig(num_queues=2),
            supervisor=supervisor,
            poll_wrapper=crash_every_third,
        )
        pipeline.run_packets(packets)
        assert crashes["count"] > 0
        assert supervisor.total_restarts == crashes["count"]
        # Crash-before-poll + intact worker state: identical results.
        assert len(pipeline.measurements) == len(baseline.measurements)

    def test_unsupervised_crash_still_propagates(self, small_workload):
        _, packets = small_workload

        def crash_first(poll, role):
            def wrapped():
                raise RuntimeError("unsupervised crash")

            return wrapped

        pipeline = RuruPipeline(
            config=PipelineConfig(num_queues=2), poll_wrapper=crash_first
        )
        with pytest.raises(RuntimeError):
            pipeline.run_packets(packets)


class TestSnapshotSideEffects:
    """state_dict() must be a pure read — no folding into live stats."""

    def test_state_dict_does_not_mutate_observable_stats(self, small_workload):
        _, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        # Feed without run_packets so worker counters are not yet folded.
        for packet in packets:
            pipeline.offer(packet)
        pipeline.drain()
        before = pipeline.stats.state_dict()
        snapshot = pipeline.state_dict()
        assert pipeline.stats.state_dict() == before
        # The snapshot itself still carries the folded worker counters.
        assert snapshot["stats"]["packets_processed"] == sum(
            worker.packets_processed for worker in pipeline.workers
        )
        assert snapshot["stats"]["tracker"]["packets"] == sum(
            worker.stats.packets for worker in pipeline.workers
        )

    def test_state_dict_is_idempotent(self, small_workload):
        _, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=2))
        pipeline.run_packets(packets)
        assert pipeline.state_dict() == pipeline.state_dict()

    def test_snapshot_between_runs_does_not_change_totals(self, small_workload):
        """Checkpointing mid-stream must not perturb later accounting."""
        _, packets = small_workload
        plain = RuruPipeline(config=PipelineConfig(num_queues=4))
        plain.run_packets(packets)
        plain.run_packets(packets)

        snapshotted = RuruPipeline(config=PipelineConfig(num_queues=4))
        snapshotted.run_packets(packets)
        snapshotted.state_dict()
        snapshotted.run_packets(packets)
        assert snapshotted.stats.summary() == plain.stats.summary()
        assert snapshotted.state_dict()["stats"] == plain.state_dict()["stats"]


class TestShutdownFlagTrailingBatch:
    def test_trailing_partial_batch_honours_shutdown_flag(self, small_workload):
        """A flag raised mid-stream must not feed one more burst."""
        _, packets = small_workload
        feed_batch = 60
        full_batches = len(packets) // feed_batch
        assert len(packets) % feed_batch != 0, "fixture must leave a tail"
        calls = {"n": 0}

        def flag_on_trailing_poll():
            calls["n"] += 1
            return calls["n"] > full_batches

        pipeline = RuruPipeline(
            config=PipelineConfig(num_queues=2), feed_batch=feed_batch
        )
        stats = pipeline.run_packets(packets, shutdown_flag=flag_on_trailing_poll)
        assert stats.packets_offered == full_batches * feed_batch
        assert stats.packets_processed == stats.packets_queued

    def test_trailing_partial_batch_fed_when_flag_stays_low(self, small_workload):
        _, packets = small_workload
        pipeline = RuruPipeline(
            config=PipelineConfig(num_queues=2), feed_batch=64
        )
        stats = pipeline.run_packets(packets, shutdown_flag=lambda: False)
        assert stats.packets_offered == len(packets)
