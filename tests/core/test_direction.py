"""Direction classification tests."""

import pytest

from repro.core.latency import Direction


class TestClassify:
    @pytest.mark.parametrize("src,dst,expected", [
        ("NZ", "US", Direction.OUTBOUND),
        ("US", "NZ", Direction.INBOUND),
        ("NZ", "NZ", Direction.INTERNAL),
        ("US", "JP", Direction.TRANSIT),
    ])
    def test_cases(self, src, dst, expected):
        assert Direction.classify(src, dst, home_country="NZ") is expected

    def test_home_country_parameter(self):
        assert Direction.classify("US", "JP", home_country="US") is Direction.OUTBOUND

    def test_values(self):
        assert Direction.OUTBOUND.value == "outbound"
        assert Direction.TRANSIT.value == "transit"


class TestDirectionTagInService:
    def test_tsdb_points_tagged_with_direction(self, geo_asn, small_workload):
        from repro.analytics.service import AnalyticsService
        from repro.core.pipeline import RuruPipeline
        from repro.mq.socket import Context
        from repro.tsdb.query import Query

        geo, asn = geo_asn
        _, packets = small_workload
        service = AnalyticsService(Context(), geo, asn, home_country="NZ")
        pipeline = RuruPipeline(sink=service.make_sink())
        stats = pipeline.run_packets(packets)
        service.finish()

        directions = service.tsdb.tag_values("latency", "direction")
        assert "outbound" in directions
        # Direction slices partition the raw points.
        total = 0
        for direction in directions:
            count = service.tsdb.query(Query(
                "latency", "total_ms", "count",
                tag_filters={"direction": [direction]},
            )).scalar()
            total += count
        assert total == stats.measurements

    def test_outbound_dominates_the_reannz_shape(self, geo_asn, small_workload):
        """The population defaults to 80 % NZ-initiated flows."""
        from repro.analytics.service import AnalyticsService
        from repro.core.pipeline import RuruPipeline
        from repro.mq.socket import Context
        from repro.tsdb.query import Query

        geo, asn = geo_asn
        _, packets = small_workload
        service = AnalyticsService(Context(), geo, asn)
        pipeline = RuruPipeline(sink=service.make_sink())
        stats = pipeline.run_packets(packets)
        service.finish()

        outbound = service.tsdb.query(Query(
            "latency", "total_ms", "count",
            tag_filters={"direction": ["outbound"]},
        )).scalar()
        assert outbound > 0.6 * stats.measurements
