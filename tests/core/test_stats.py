"""Stats container tests."""

from repro.core.stats import PipelineStats, TrackerStats


class TestTrackerStats:
    def test_merge_accumulates_all_fields(self):
        a = TrackerStats(packets=10, syn=2, measurements=1)
        b = TrackerStats(packets=5, syn=1, stray_ack=7)
        a.merge(b)
        assert a.packets == 15
        assert a.syn == 3
        assert a.measurements == 1
        assert a.stray_ack == 7


class TestPipelineStats:
    def test_parse_error_buckets(self):
        stats = PipelineStats()
        stats.record_parse_error("not-tcp")
        stats.record_parse_error("not-tcp")
        stats.record_parse_error("truncated")
        assert stats.parse_errors == 3
        assert stats.parse_error_reasons == {"not-tcp": 2, "truncated": 1}

    def test_summary_keys(self):
        summary = PipelineStats().summary()
        for key in ("packets_offered", "measurements", "nic_drops", "stray_ack"):
            assert key in summary

    def test_measurements_proxies_tracker(self):
        stats = PipelineStats()
        stats.tracker.measurements = 42
        assert stats.measurements == 42
