"""Stats container tests."""

from repro.core.stats import PipelineStats, TrackerStats


class TestTrackerStats:
    def test_merge_accumulates_all_fields(self):
        a = TrackerStats(packets=10, syn=2, measurements=1)
        b = TrackerStats(packets=5, syn=1, stray_ack=7)
        a.merge(b)
        assert a.packets == 15
        assert a.syn == 3
        assert a.measurements == 1
        assert a.stray_ack == 7


class TestPipelineStats:
    def test_parse_error_buckets(self):
        stats = PipelineStats()
        stats.record_parse_error("not-tcp")
        stats.record_parse_error("not-tcp")
        stats.record_parse_error("truncated")
        assert stats.parse_errors == 3
        assert stats.parse_error_reasons == {"not-tcp": 2, "truncated": 1}

    def test_summary_keys(self):
        summary = PipelineStats().summary()
        for key in ("packets_offered", "measurements", "nic_drops", "stray_ack",
                    "packets_processed", "packets_sampled_out"):
            assert key in summary

    def test_measurements_proxies_tracker(self):
        stats = PipelineStats()
        stats.tracker.measurements = 42
        assert stats.measurements == 42

    def test_summary_includes_parse_error_reasons(self):
        stats = PipelineStats()
        stats.record_parse_error("not-tcp")
        stats.record_parse_error("not-tcp")
        stats.record_parse_error("truncated")
        summary = stats.summary()
        assert summary["parse_error.not-tcp"] == 2
        assert summary["parse_error.truncated"] == 1
        assert summary["parse_errors"] == 3

    def test_summary_includes_queue_balance(self):
        stats = PipelineStats(queue_share=[0.5, 0.25, 0.25])
        summary = stats.summary()
        assert summary["queue_share.q0"] == 0.5
        assert summary["queue_share.q1"] == 0.25
        assert summary["queue_share.q2"] == 0.25

    def test_summary_reports_worker_counters(self):
        stats = PipelineStats(packets_processed=90, packets_sampled_out=10)
        summary = stats.summary()
        assert summary["packets_processed"] == 90
        assert summary["packets_sampled_out"] == 10
