"""Multi-link deployment: two taps, one analytics tier.

The paper notes the monitored link "is one of REANNZ's two
international commodity links out of NZ" — a full deployment taps
both. The ZeroMQ fabric makes this free: each link runs its own
pipeline, both PUSH into the same analytics service, and the TSDB /
frontend see the union. These tests assert that composition works
without any special-casing.
"""

import pytest

from repro.analytics.service import AnalyticsService
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.geo.builder import GeoDbBuilder
from repro.mq.socket import Context
from repro.runtime import RuruRuntime
from repro.traffic.scenarios import AucklandLaScenario
from repro.tsdb.query import Query

NS_PER_S = 1_000_000_000


class TestTwoLinks:
    def test_two_pipelines_one_service(self):
        # Two links with different traffic (different seeds/rates).
        link_a = AucklandLaScenario(
            duration_ns=4 * NS_PER_S, mean_flows_per_s=30, seed=31, diurnal=False
        ).build()
        link_b = AucklandLaScenario(
            duration_ns=4 * NS_PER_S, mean_flows_per_s=20, seed=32, diurnal=False
        ).build()

        context = Context()
        geo, asn = GeoDbBuilder(plan=link_a.plan).build()
        service = AnalyticsService(context, geo, asn)

        pipeline_a = RuruPipeline(
            config=PipelineConfig(num_queues=2), sink=service.make_sink()
        )
        pipeline_b = RuruPipeline(
            config=PipelineConfig(num_queues=2), sink=service.make_sink()
        )
        stats_a = pipeline_a.run_packets(link_a.packets())
        stats_b = pipeline_b.run_packets(link_b.packets())
        service.finish()

        total = service.tsdb.query(Query("latency", "total_ms", "count")).scalar()
        assert total == stats_a.measurements + stats_b.measurements
        assert stats_a.measurements > 0 and stats_b.measurements > 0

    def test_links_share_push_round_robin_workers(self):
        """Both links' records spread across the enrichment pool."""
        link = AucklandLaScenario(
            duration_ns=4 * NS_PER_S, mean_flows_per_s=40, seed=33, diurnal=False
        ).build()
        context = Context()
        geo, asn = GeoDbBuilder(plan=link.plan).build()
        service = AnalyticsService(context, geo, asn, num_workers=3)
        pipeline = RuruPipeline(sink=service.make_sink())
        pipeline.run_packets(link.packets())
        service.finish()
        counts = [worker.stats.enriched for worker in service.enrichers]
        assert min(counts) > 0


class TestRuntimeStatus:
    def test_status_snapshot_shape(self):
        generator = AucklandLaScenario(
            duration_ns=3 * NS_PER_S, mean_flows_per_s=30, seed=34, diurnal=False
        ).build()
        runtime = RuruRuntime.build(generator.plan)
        report = runtime.run(generator.packets())
        status = runtime.status()

        assert status["pipeline"]["measurements"] == report.measurements
        assert len(status["pipeline"]["queue_balance"]) == 4
        assert status["analytics"]["enriched"] == report.measurements
        assert status["analytics"]["input_queue_depth"] == 0
        assert status["tsdb"]["points"] > 0
        assert "latency" in status["tsdb"]["series"]
        assert status["frontend"]["frames_sent"] == report.map_view.frames_sent
        assert set(status["frontend"]["colors"]) == {"green", "yellow", "red"}

    def test_status_is_json_serializable(self):
        import json

        generator = AucklandLaScenario(
            duration_ns=2 * NS_PER_S, mean_flows_per_s=20, seed=35, diurnal=False
        ).build()
        runtime = RuruRuntime.build(generator.plan)
        runtime.run(generator.packets())
        json.dumps(runtime.status())
