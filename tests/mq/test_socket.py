"""PUSH/PULL and PUB/SUB socket tests."""

import pytest

from repro.mq.frames import Message
from repro.mq.socket import Context, MqError


def msg(text: bytes) -> Message:
    return Message.single(text)


class TestContext:
    def test_duplicate_bind_rejected(self):
        context = Context()
        context.pull().bind("inproc://a")
        with pytest.raises(MqError):
            context.pull().bind("inproc://a")

    def test_connect_unknown_endpoint_rejected(self):
        context = Context()
        with pytest.raises(MqError):
            context.push().connect("inproc://nowhere")

    def test_close_releases_endpoint(self):
        context = Context()
        pull = context.pull()
        pull.bind("inproc://a")
        pull.close()
        context.pull().bind("inproc://a")  # now free again


class TestPushPull:
    def test_round_robin(self):
        context = Context()
        pulls = [context.pull() for _ in range(3)]
        for i, pull in enumerate(pulls):
            pull.bind(f"inproc://w{i}")
        push = context.push()
        for i in range(3):
            push.connect(f"inproc://w{i}")
        for i in range(9):
            push.send(msg(str(i).encode()))
        assert [len(pull) for pull in pulls] == [3, 3, 3]

    def test_send_without_peers_buffers(self):
        # A publisher outliving its consumers must not crash the hot
        # path: the message parks on the PUSH socket until a peer
        # connects (ZeroMQ's non-blocking analogue of blocking at HWM).
        context = Context()
        push = context.push()
        assert push.send(msg(b"x")) is True
        assert push.pending == 1
        assert push.buffered_no_peer == 1
        assert push.dropped == 0

    def test_buffered_backlog_flushes_on_connect(self):
        context = Context()
        push = context.push()
        for i in range(3):
            push.send(msg(str(i).encode()))
        pull = context.pull()
        pull.bind("inproc://late")
        push.connect("inproc://late")
        assert push.pending == 0
        assert [m.frames[0] for m in pull.recv_all()] == [b"0", b"1", b"2"]
        assert push.sent == 3

    def test_peerless_buffer_bounded_by_hwm(self):
        context = Context()
        push = context.push(hwm=2)
        assert push.send(msg(b"a")) is True
        assert push.send(msg(b"b")) is True
        assert push.send(msg(b"c")) is False  # over HWM: shed, counted
        assert push.pending == 2
        assert push.dropped_no_peer == 1
        assert push.dropped == 1

    def test_full_peer_skipped(self):
        context = Context()
        small = context.pull(hwm=1)
        big = context.pull(hwm=100)
        small.bind("inproc://small")
        big.bind("inproc://big")
        push = context.push()
        push.connect("inproc://small")
        push.connect("inproc://big")
        for i in range(6):
            push.send(msg(b"m"))
        assert len(small) == 1
        assert len(big) == 5
        assert push.dropped == 0

    def test_all_full_drops(self):
        context = Context()
        pull = context.pull(hwm=2)
        pull.bind("inproc://only")
        push = context.push()
        push.connect("inproc://only")
        sent = [push.send(msg(b"x")) for _ in range(5)]
        assert sent == [True, True, False, False, False]
        assert push.dropped == 3

    def test_recv_empty_returns_none(self):
        context = Context()
        assert context.pull().recv() is None

    def test_recv_all_limit(self):
        context = Context()
        pull = context.pull()
        pull.bind("inproc://p")
        push = context.push()
        push.connect("inproc://p")
        for i in range(5):
            push.send(msg(b"x"))
        assert len(pull.recv_all(3)) == 3
        assert len(pull.recv_all()) == 2

    def test_wrong_socket_type_rejected(self):
        context = Context()
        sub = context.sub()
        sub.bind("inproc://s")
        with pytest.raises(MqError):
            context.push().connect("inproc://s")


class TestPubSub:
    def _wired(self, prefixes=(b"",)):
        context = Context()
        sub = context.sub()
        for prefix in prefixes:
            sub.subscribe(prefix)
        sub.bind("inproc://sub")
        pub = context.pub()
        pub.connect("inproc://sub")
        return pub, sub

    def test_fanout_to_matching(self):
        pub, sub = self._wired(prefixes=(b"latency",))
        assert pub.send(Message.with_topic(b"latency", b"d")) == 1
        assert pub.send(Message.with_topic(b"stats", b"d")) == 0
        assert len(sub) == 1

    def test_empty_prefix_matches_all(self):
        pub, sub = self._wired(prefixes=(b"",))
        pub.send(Message.with_topic(b"anything", b"d"))
        assert len(sub) == 1

    def test_unsubscribed_sub_gets_nothing(self):
        pub, sub = self._wired(prefixes=())
        pub.send(msg(b"x"))
        assert len(sub) == 0

    def test_unsubscribe(self):
        pub, sub = self._wired(prefixes=(b"a",))
        sub.unsubscribe(b"a")
        pub.send(Message.with_topic(b"a", b"d"))
        assert len(sub) == 0

    def test_unsubscribe_unknown_ignored(self):
        _, sub = self._wired()
        sub.unsubscribe(b"never-subscribed")

    def test_slow_subscriber_drops(self):
        context = Context()
        slow = context.sub(hwm=2)
        slow.subscribe(b"")
        slow.bind("inproc://slow")
        pub = context.pub()
        pub.connect("inproc://slow")
        for _ in range(10):
            pub.send(msg(b"x"))
        assert len(slow) == 2
        assert slow.dropped == 8

    def test_multiple_subscribers(self):
        context = Context()
        subs = []
        pub = context.pub()
        for i in range(3):
            sub = context.sub()
            sub.subscribe(b"")
            sub.bind(f"inproc://s{i}")
            pub.connect(f"inproc://s{i}")
            subs.append(sub)
        assert pub.send(msg(b"broadcast")) == 3
        assert all(len(sub) == 1 for sub in subs)

    def test_zero_copy_reference_delivery(self):
        # The exact same Message object reaches every subscriber.
        context = Context()
        sub = context.sub()
        sub.subscribe(b"")
        sub.bind("inproc://z")
        pub = context.pub()
        pub.connect("inproc://z")
        original = msg(b"zero-copy")
        pub.send(original)
        assert sub.recv() is original


class TestSocketLifecycle:
    """Close/rebind semantics: close() releases the endpoint name and
    refuses all future traffic; senders prune dead peers on their next
    send rather than swallowing messages into a closed queue."""

    def test_closed_endpoint_is_rebindable_by_a_fresh_socket(self):
        context = Context()
        first = context.pull()
        first.bind("inproc://reuse")
        first.close()
        second = context.pull()
        second.bind("inproc://reuse")  # the name is free again
        push = context.push()
        push.connect("inproc://reuse")
        push.send(msg(b"to-the-new-owner"))
        assert len(second) == 1

    def test_double_bind_on_one_socket_rejected(self):
        context = Context()
        pull = context.pull()
        pull.bind("inproc://a")
        with pytest.raises(MqError):
            pull.bind("inproc://b")

    def test_bind_after_close_rejected(self):
        context = Context()
        pull = context.pull()
        pull.close()
        with pytest.raises(MqError):
            pull.bind("inproc://a")

    def test_recv_on_closed_socket_raises(self):
        context = Context()
        pull = context.pull()
        pull.bind("inproc://a")
        pull.close()
        with pytest.raises(MqError):
            pull.recv()

    def test_close_discards_queued_messages(self):
        context = Context()
        pull = context.pull()
        pull.bind("inproc://a")
        push = context.push()
        push.connect("inproc://a")
        push.send(msg(b"doomed"))
        assert len(pull) == 1
        pull.close()
        assert len(pull) == 0

    def test_closed_peer_is_pruned_not_silently_fed(self):
        """A message sent after a peer closes must reach a live peer —
        never vanish into the dead one's (cleared) queue."""
        context = Context()
        dead = context.pull()
        dead.bind("inproc://dead")
        live = context.pull()
        live.bind("inproc://live")
        push = context.push()
        push.connect("inproc://dead")
        push.connect("inproc://live")
        dead.close()
        for i in range(4):
            assert push.send(msg(str(i).encode())) is True
        assert len(live) == 4
        assert push.dropped == 0

    def test_all_peers_closed_falls_back_to_buffering(self):
        context = Context()
        pull = context.pull()
        pull.bind("inproc://only")
        push = context.push()
        push.connect("inproc://only")
        pull.close()
        assert push.send(msg(b"parked")) is True
        assert push.pending == 1
        # A replacement consumer rebinding the endpoint gets the backlog.
        fresh = context.pull()
        fresh.bind("inproc://only")
        push.connect("inproc://only")
        assert len(fresh) == 1

    def test_push_close_refuses_send_and_connect(self):
        context = Context()
        pull = context.pull()
        pull.bind("inproc://a")
        push = context.push()
        push.connect("inproc://a")
        push.send(msg(b"x"))
        push.close()
        with pytest.raises(MqError):
            push.send(msg(b"y"))
        with pytest.raises(MqError):
            push.connect("inproc://a")

    def test_pub_prunes_closed_subscribers(self):
        context = Context()
        pub = context.pub()
        staying = context.sub()
        staying.subscribe(b"")
        staying.bind("inproc://stay")
        leaving = context.sub()
        leaving.subscribe(b"")
        leaving.bind("inproc://leave")
        pub.connect("inproc://stay")
        pub.connect("inproc://leave")
        leaving.close()
        assert pub.send(msg(b"news")) == 1
        assert len(staying) == 1

    def test_pub_close_refuses_send(self):
        context = Context()
        pub = context.pub()
        pub.close()
        with pytest.raises(MqError):
            pub.send(msg(b"x"))
