"""Message framing tests."""

import pytest

from repro.mq.frames import Message


class TestMessage:
    def test_single(self):
        message = Message.single(b"data")
        assert message.topic == b"data"
        assert len(message) == 1

    def test_with_topic(self):
        message = Message.with_topic(b"latency", b"p1", b"p2")
        assert message.topic == b"latency"
        assert message.payload == (b"p1", b"p2")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Message([])

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            Message(["text"])

    def test_prefix_matching(self):
        message = Message.single(b"latency.nz")
        assert message.matches(b"")
        assert message.matches(b"latency")
        assert not message.matches(b"stats")

    def test_equality_and_hash(self):
        a = Message([b"x", b"y"])
        b = Message([b"x", b"y"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Message([b"x"])

    def test_total_bytes(self):
        assert Message([b"abc", b"de"]).total_bytes() == 5

    def test_indexing(self):
        message = Message([b"a", b"b"])
        assert message[1] == b"b"

    def test_frames_are_copied_bytes(self):
        data = bytearray(b"mutable")
        message = Message([data])
        data[0] = 0
        assert message.topic == b"mutable"
