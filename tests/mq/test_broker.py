"""Forwarder device tests."""

from repro.mq.broker import Forwarder
from repro.mq.frames import Message
from repro.mq.socket import Context


def _wired(message_filter=None):
    context = Context()
    upstream_sub = context.sub()
    upstream_sub.subscribe(b"")
    upstream_sub.bind("inproc://in")
    source = context.pub()
    source.connect("inproc://in")

    downstream_sub = context.sub()
    downstream_sub.subscribe(b"")
    downstream_sub.bind("inproc://out")
    downstream_pub = context.pub()
    downstream_pub.connect("inproc://out")

    forwarder = Forwarder(upstream_sub, downstream_pub, message_filter=message_filter)
    return source, forwarder, downstream_sub


class TestForwarder:
    def test_forwards_everything_by_default(self):
        source, forwarder, sink = _wired()
        for i in range(5):
            source.send(Message.with_topic(b"t", str(i).encode()))
        assert forwarder.poll() == 5
        assert len(sink) == 5
        assert forwarder.forwarded == 5

    def test_filter_drops_and_counts(self):
        keep_even = lambda m: int(m.payload[0]) % 2 == 0
        source, forwarder, sink = _wired(message_filter=keep_even)
        for i in range(6):
            source.send(Message.with_topic(b"t", str(i).encode()))
        forwarder.poll()
        assert len(sink) == 3
        assert forwarder.filtered == 3

    def test_poll_respects_max(self):
        source, forwarder, sink = _wired()
        for i in range(10):
            source.send(Message.with_topic(b"t", b"x"))
        assert forwarder.poll(max_messages=4) == 4
        assert len(sink) == 4

    def test_poll_empty_returns_zero(self):
        _, forwarder, _ = _wired()
        assert forwarder.poll() == 0
