"""Wire codec tests."""

import pytest

from repro.analytics.enricher import EnrichedMeasurement
from repro.core.latency import LatencyRecord
from repro.mq.codec import (
    CodecError,
    decode_enriched,
    decode_latency_record,
    encode_enriched,
    encode_latency_record,
)
from repro.net.addresses import ip_to_int, ipv6_to_int


def _record(**overrides):
    fields = dict(
        src_ip=ip_to_int("10.1.2.3"),
        dst_ip=ip_to_int("20.4.5.6"),
        src_port=40000,
        dst_port=443,
        internal_ns=10_000_000,
        external_ns=140_000_000,
        syn_ns=1_000_000_000,
        synack_ns=1_140_000_000,
        ack_ns=1_150_000_000,
        queue_id=3,
        rss_hash=0xDEADBEEF,
    )
    fields.update(overrides)
    return LatencyRecord(**fields)


def _enriched():
    return EnrichedMeasurement(
        timestamp_ns=123456789,
        internal_ns=5_000_000,
        external_ns=130_000_000,
        src_country="NZ", src_city="Auckland",
        src_lat=-36.8485, src_lon=174.7633, src_asn=64500,
        dst_country="US", dst_city="Los Angeles",
        dst_lat=34.0522, dst_lon=-118.2437, dst_asn=64532,
    )


class TestLatencyCodec:
    def test_ipv4_roundtrip(self):
        record = _record()
        assert decode_latency_record(encode_latency_record(record)) == record

    def test_ipv6_roundtrip(self):
        record = _record(
            src_ip=ipv6_to_int("2001:db8::1"),
            dst_ip=ipv6_to_int("2001:db8::99"),
            is_ipv6=True,
        )
        decoded = decode_latency_record(encode_latency_record(record))
        assert decoded == record
        assert decoded.is_ipv6

    def test_encoding_is_compact(self):
        # 2 preamble + 8 addresses + fixed tail (50) = 60 bytes for v4.
        assert len(encode_latency_record(_record())) == 60

    def test_rejects_wrong_version(self):
        data = bytearray(encode_latency_record(_record()))
        data[0] = 99
        with pytest.raises(CodecError):
            decode_latency_record(bytes(data))

    def test_rejects_truncated(self):
        data = encode_latency_record(_record())
        with pytest.raises(CodecError):
            decode_latency_record(data[:-1])
        with pytest.raises(CodecError):
            decode_latency_record(b"")

    def test_rejects_oversized(self):
        data = encode_latency_record(_record()) + b"\x00"
        with pytest.raises(CodecError):
            decode_latency_record(data)


class TestEnrichedCodec:
    def test_roundtrip(self):
        measurement = _enriched()
        assert decode_enriched(encode_enriched(measurement)) == measurement

    def test_unicode_city_names(self):
        measurement = EnrichedMeasurement(
            timestamp_ns=1, internal_ns=2, external_ns=3,
            src_country="JP", src_city="東京", src_lat=35.7, src_lon=139.7,
            src_asn=1, dst_country="NZ", dst_city="Tāmaki Makaurau",
            dst_lat=-36.8, dst_lon=174.8, dst_asn=2,
        )
        decoded = decode_enriched(encode_enriched(measurement))
        assert decoded.src_city == "東京"
        assert decoded.dst_city == "Tāmaki Makaurau"

    def test_no_address_fields_exist(self):
        # The enriched type structurally cannot carry addresses.
        field_names = set(EnrichedMeasurement.__dataclass_fields__)
        assert not any("ip" in name for name in field_names)

    def test_rejects_wrong_version(self):
        data = bytearray(encode_enriched(_enriched()))
        data[0] = 200
        with pytest.raises(CodecError):
            decode_enriched(bytes(data))

    def test_rejects_trailing_garbage(self):
        with pytest.raises(CodecError):
            decode_enriched(encode_enriched(_enriched()) + b"junk")

    def test_rejects_truncated_strings(self):
        data = encode_enriched(_enriched())
        with pytest.raises(CodecError):
            decode_enriched(data[:-3])


class TestEnrichedVersioning:
    def test_degraded_flag_round_trips(self):
        measurement = _enriched()
        degraded = EnrichedMeasurement(
            **{**measurement.__dict__, "degraded": True}
        )
        assert decode_enriched(encode_enriched(degraded)).degraded is True
        assert decode_enriched(encode_enriched(measurement)).degraded is False

    def test_v1_payload_still_decodes(self):
        # A v1 payload is the v2 wire format minus the flags byte;
        # decoders must accept it (rolling upgrade) with degraded=False.
        v2 = encode_enriched(_enriched())
        v1 = bytes([1]) + v2[2:]
        decoded = decode_enriched(v1)
        assert decoded.degraded is False
        assert decoded.src_city == decode_enriched(v2).src_city

    def test_v2_flags_byte_required(self):
        from repro.mq.codec import ENRICHED_VERSION

        with pytest.raises(CodecError):
            decode_enriched(bytes([ENRICHED_VERSION]))
