"""The declared topology is the single source of the dataflow shape."""

import pytest

from repro.faults.crashpoints import CRASH_POINTS
from repro.stack.stage import Stage, StageGraph
from repro.stack.topology import (
    PROTOCOL_POINTS,
    TOPOLOGY,
    crash_points,
    get_spec,
    stage_names,
)


class TestTopology:
    def test_stage_order_is_the_dataflow_order(self):
        assert stage_names() == (
            "overload",
            "nic",
            "workers",
            "mq",
            "analytics",
            "anomaly",
            "topk",
            "frontend",
            "telemetry",
            "tsdb",
            "checkpoint",
        )

    def test_upstream_edges_point_backwards(self):
        seen = set()
        for spec in TOPOLOGY:
            assert all(upstream in seen for upstream in spec.upstream)
            seen.add(spec.name)

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown stage"):
            get_spec("gpu")

    def test_crash_point_table_is_derived_from_stages(self):
        """The fault registry and the topology must agree exactly —
        same points, same order, same descriptions."""
        derived = crash_points()
        assert derived == dict(CRASH_POINTS)
        assert list(derived) == list(CRASH_POINTS)

    def test_protocol_points_come_last(self):
        names = list(crash_points())
        assert names[-len(PROTOCOL_POINTS):] == [
            point for point, _ in PROTOCOL_POINTS
        ]

    def test_every_crash_point_has_an_owner_or_is_protocol(self):
        stage_owned = {
            point for spec in TOPOLOGY for point, _ in spec.crash_points
        }
        protocol = {point for point, _ in PROTOCOL_POINTS}
        assert stage_owned | protocol == set(CRASH_POINTS)
        assert not stage_owned & protocol


class TestStageGraphValidation:
    def test_rejects_unknown_stage(self):
        class Bogus(Stage):
            def __init__(self):
                pass

            @property
            def name(self):
                return "gpu"

        with pytest.raises(ValueError, match="not in the topology"):
            StageGraph([Bogus()])

    def test_rejects_out_of_topology_order(self):
        workers = Stage(get_spec("workers"))
        nic = Stage(get_spec("nic"))
        with pytest.raises(ValueError, match="out of topology order"):
            StageGraph([workers, nic])

    def test_rejects_duplicate_stage(self):
        with pytest.raises(ValueError, match="out of topology order"):
            StageGraph([Stage(get_spec("nic")), Stage(get_spec("nic"))])

    def test_accepts_any_ordered_subset(self):
        graph = StageGraph(
            [Stage(get_spec("nic")), Stage(get_spec("analytics"))]
        )
        assert graph.names() == ["nic", "analytics"]
