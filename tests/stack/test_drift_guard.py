"""Drift guard: all stack assembly must go through repro.stack.

Any new code that constructs the core components directly — instead of
going through the builder — silently forks the wiring and escapes the
derived drain/checkpoint/fault orders. This test walks the source tree
with the AST module so string mentions in docstrings or comments do not
trip it; only real call sites count.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# Components whose construction implies stack assembly.
GUARDED = {
    "AnalyticsService",
    "RuruPipeline",
    "GeoDbBuilder",
    "FaultyPushSocket",
    "OverloadController",
    "GatedPushSocket",
}

# The composition root is the one place allowed to build them.
ALLOWED = {SRC / "stack" / "builder.py"}


def _called_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def guarded_call_sites():
    sites = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = _called_name(node)
                if name in GUARDED:
                    sites.append((path, node.lineno, name))
    return sites


class TestNoDirectAssemblyOutsideStack:
    def test_guarded_constructors_only_called_from_the_builder(self):
        offenders = [
            f"{path.relative_to(SRC)}:{lineno} calls {name}("
            for path, lineno, name in guarded_call_sites()
            if path not in ALLOWED
        ]
        assert not offenders, (
            "direct stack assembly outside repro.stack.builder:\n  "
            + "\n  ".join(offenders)
        )

    def test_the_builder_itself_still_assembles_the_stack(self):
        """Keep the guard honest: if the components get renamed, the
        allow-list and GUARDED set must be updated, not left stale."""
        builder_calls = {
            name
            for path, _, name in guarded_call_sites()
            if path in ALLOWED
        }
        assert builder_calls == GUARDED
