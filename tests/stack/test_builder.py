"""The composition root: presets, derived traversals, validation."""

import pytest

from repro.faults.crashpoints import CRASH_POINTS
from repro.obs import Telemetry
from repro.stack import (
    PRESETS,
    StackBuilder,
    build_chaos_stack,
    build_durable_stack,
    build_live_stack,
    build_measure_stack,
)
from tests.durability.test_drain import EXPECTED_STAGES


class TestPresets:
    def test_preset_table_is_complete(self):
        assert set(PRESETS) == {"measure", "live", "chaos", "durable", "shard"}

    def test_measure_is_the_fast_path_only(self):
        stack = build_measure_stack(queues=2)
        assert stack.graph.names() == ["nic", "workers"]
        assert stack.service is None
        assert stack.injector is None

    def test_live_has_the_full_dataflow_and_no_fault_machinery(self):
        stack = build_live_stack(queues=2, frontend_hwm=100)
        assert stack.graph.names() == ["nic", "workers", "mq", "analytics", "frontend"]
        assert stack.injector is None
        assert stack.resilience is None
        assert stack.supervisor is None

    def test_chaos_adds_injector_resilience_supervisor(self):
        stack = build_chaos_stack("lossy-mq", seed=3, duration_s=0.5, rate=20)
        assert stack.graph.names() == [
            "nic", "workers", "mq", "analytics", "frontend", "telemetry",
        ]
        assert stack.injector is not None
        assert stack.resilience is not None
        assert stack.supervisor is not None
        assert stack.profile.name == "lossy-mq"

    def test_durable_closes_the_graph(self, tmp_path):
        stack = build_durable_stack(str(tmp_path), duration_s=0.5, rate=20)
        assert stack.graph.names() == [
            "nic", "workers", "mq", "analytics", "anomaly", "topk",
            "frontend", "telemetry", "tsdb", "checkpoint",
        ]
        assert stack.checkpointer is not None
        assert stack.wal is not None


class TestDerivedBehaviours:
    def test_drain_order_is_derived_from_the_graph(self, tmp_path):
        stack = build_durable_stack(str(tmp_path), duration_s=0.5, rate=20)
        labels, final = stack.drain()
        assert labels == EXPECTED_STAGES
        assert final is not None

    def test_checkpoint_payload_enumerates_every_stateful_stage(self, tmp_path):
        stack = build_durable_stack(str(tmp_path), duration_s=0.5, rate=20)
        state = stack.capture_state()
        assert set(state) == {
            "format", "meta", "pipeline", "service", "anomaly", "topk",
            "frontend", "tsdb_meta", "tsdb_lines",
        }

    def test_fault_points_cover_every_stage_owned_crash_point(self, tmp_path):
        stack = build_durable_stack(str(tmp_path), duration_s=0.5, rate=20)
        protocol_only = {"drain.mid"}
        assert set(stack.fault_points()) == set(CRASH_POINTS) - protocol_only

    def test_load_state_rejects_unknown_format(self, tmp_path):
        stack = build_durable_stack(str(tmp_path), duration_s=0.5, rate=20)
        with pytest.raises(ValueError, match="unsupported state format"):
            stack.load_state({"format": 99, "meta": {"queues": 2}})

    def test_load_state_rejects_queue_mismatch(self, tmp_path):
        stack = build_durable_stack(
            str(tmp_path), duration_s=0.5, rate=20, queues=2
        )
        state = stack.capture_state()
        state["meta"]["queues"] = 4
        with pytest.raises(ValueError, match="built with 4 queues"):
            stack.load_state(state)

    def test_telemetry_stage_rides_the_graph(self):
        telemetry = Telemetry()
        stack = build_chaos_stack(
            "clean", duration_s=0.5, rate=20, telemetry=telemetry
        )
        assert stack.graph.get("telemetry").telemetry is telemetry

    def test_process_batch_runs_the_whole_graph(self, tmp_path):
        stack = build_durable_stack(str(tmp_path), duration_s=1.0, rate=30)
        batch = list(stack.packet_stream())
        stack.process_batch(batch)
        assert stack.pipeline.stats.packets_offered == len(batch)
        assert stack.service.processed > 0
        assert stack.frontend_received == stack.service.processed


class TestBuilderValidation:
    def test_unknown_anomaly_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown anomaly mode"):
            StackBuilder().anomaly("sideways")

    def test_durable_requires_analytics(self, tmp_path):
        builder = StackBuilder().durable(str(tmp_path))
        with pytest.raises(ValueError, match="requires analytics"):
            builder.build()

    def test_unknown_fault_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            StackBuilder().faults("does-not-exist")


class TestObservability:
    def test_profiler_derives_from_the_graph(self):
        """Enabling the profiler before build profiles every assembled
        stage — no per-stage wiring anywhere."""
        telemetry = Telemetry()
        telemetry.enable_profiler(sample_every=0)
        stack = build_chaos_stack(
            "clean", duration_s=0.5, rate=20, telemetry=telemetry
        )
        stack.process_batch(list(stack.packet_stream()))
        profiled = set(telemetry.profiler.stages)
        assert profiled == {stage.name for stage in stack.graph.stages}
        assert all(p.calls > 0 for p in telemetry.profiler.stages.values())

    def test_no_profiler_means_untimed_graph(self):
        telemetry = Telemetry()
        stack = build_chaos_stack(
            "clean", duration_s=0.5, rate=20, telemetry=telemetry
        )
        stack.process_batch(list(stack.packet_stream()))
        assert telemetry.profiler is None

    def test_drain_evaluates_slos(self):
        telemetry = Telemetry()
        stack = build_chaos_stack(
            "clean", duration_s=0.5, rate=20, telemetry=telemetry
        )
        stack.process_batch(list(stack.packet_stream()))
        stack.drain()
        assert stack.slo_results
        by_name = {r.slo.name: r for r in stack.slo_results}
        assert by_name["nic-drop-rate"].status == "ok"
        assert all(r.ok for r in stack.slo_results)

    def test_drain_without_telemetry_skips_slos(self):
        stack = build_measure_stack(queues=2)
        stack.drain()
        assert stack.slo_results == []

    def test_stack_can_override_slos(self):
        from repro.obs.slo import Slo

        telemetry = Telemetry()
        stack = build_chaos_stack(
            "clean", duration_s=0.5, rate=20, telemetry=telemetry
        )
        stack.slos = [
            Slo("impossible", "", ("sum", "ruru_packets_offered_total"),
                bound=10**15, kind="min")
        ]
        stack.process_batch(list(stack.packet_stream()))
        stack.drain()
        (result,) = stack.slo_results
        assert result.status == "violated"
