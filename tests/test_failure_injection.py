"""Failure injection: corrupted and truncated frames mid-stream.

A production tap delivers damaged frames (CRC-passed but truncated by
snaplen, slicing, or driver bugs). The pipeline must count and drop
them — never crash, never mis-measure.
"""

import random

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.net.packet import Packet
from repro.net.parser import PacketParser, ParseError


def _corrupt(packets, seed=1, truncate_rate=0.05, flip_rate=0.05):
    """Truncate some frames, flip bytes in others."""
    rng = random.Random(seed)
    out = []
    stats = {"truncated": 0, "flipped": 0}
    for packet in packets:
        roll = rng.random()
        if roll < truncate_rate and len(packet.data) > 20:
            cut = rng.randint(1, len(packet.data) - 1)
            out.append(Packet(data=packet.data[:cut],
                              timestamp_ns=packet.timestamp_ns))
            stats["truncated"] += 1
        elif roll < truncate_rate + flip_rate:
            data = bytearray(packet.data)
            for _ in range(rng.randint(1, 4)):
                data[rng.randrange(len(data))] ^= 0xFF
            out.append(Packet(data=bytes(data),
                              timestamp_ns=packet.timestamp_ns))
            stats["flipped"] += 1
        else:
            out.append(packet)
    return out, stats


class TestCorruptedFrames:
    def test_pipeline_survives_corruption(self, small_workload):
        _, packets = small_workload
        corrupted, stats = _corrupt(packets, truncate_rate=0.1, flip_rate=0.1)
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=2))
        result = pipeline.run_packets(corrupted)
        # Ran to completion; some measurements lost, none invented.
        assert result.measurements > 0
        clean = RuruPipeline(config=PipelineConfig(num_queues=2))
        clean_result = clean.run_packets(packets)
        assert result.measurements <= clean_result.measurements

    def test_truncation_counted_as_parse_errors(self, small_workload):
        _, packets = small_workload
        corrupted, stats = _corrupt(packets, truncate_rate=0.2, flip_rate=0.0)
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=2))
        result = pipeline.run_packets(corrupted)
        # Most truncations land in a parse-error bucket (cuts inside
        # the Ethernet payload can still parse if headers survive).
        assert result.parse_errors > stats["truncated"] * 0.4

    def test_bitflips_never_crash_parser(self, small_workload):
        _, packets = small_workload
        parser = PacketParser(extract_timestamps=True)
        corrupted, _ = _corrupt(packets, truncate_rate=0.0, flip_rate=1.0,
                                seed=9)
        for packet in corrupted:
            try:
                parser.parse(packet.data, packet.timestamp_ns)
            except ParseError:
                pass  # the only acceptable exception

    def test_strict_mode_rejects_flipped_sequence_numbers(self, small_workload):
        """Bit flips in seq/ack fields must not produce bogus
        measurements under strict validation."""
        _, packets = small_workload
        corrupted, _ = _corrupt(packets, truncate_rate=0.0, flip_rate=0.15,
                                seed=3)
        strict = RuruPipeline(
            config=PipelineConfig(num_queues=2, strict_sequence_check=True)
        )
        result = strict.run_packets(corrupted)
        clean = RuruPipeline(config=PipelineConfig(num_queues=2))
        baseline = clean.run_packets(packets)
        assert result.measurements <= baseline.measurements


class TestDeterministicSoak:
    def test_full_runtime_bitwise_deterministic(self):
        """Same seed -> byte-identical TSDB export, twice."""
        from repro.runtime import RuruRuntime
        from repro.traffic.scenarios import AucklandLaScenario

        def one_run():
            generator = AucklandLaScenario(
                duration_ns=4_000_000_000, mean_flows_per_s=40,
                seed=77, diurnal=False,
            ).build()
            runtime = RuruRuntime.build(generator.plan)
            report = runtime.run(generator.packets())
            return "\n".join(report.tsdb.dump_lines())

        assert one_run() == one_run()
