"""Latency-spike detector tests — the firewall-glitch finder."""

import random

from repro.analytics.enricher import EnrichedMeasurement
from repro.anomaly.latency_spike import LatencySpikeDetector

S = 1_000_000_000
MS = 1_000_000


def _measurement(t_ns, total_ms, src="NZ", dst="US"):
    total_ns = int(total_ms * MS)
    return EnrichedMeasurement(
        timestamp_ns=t_ns, internal_ns=total_ns // 10,
        external_ns=total_ns - total_ns // 10,
        src_country=src, src_city="Auckland", src_lat=0, src_lon=0, src_asn=1,
        dst_country=dst, dst_city="Los Angeles", dst_lat=0, dst_lon=0, dst_asn=2,
    )


def _feed_baseline(detector, count=60, base_ms=150.0, jitter=10.0, start_ns=0):
    rng = random.Random(1)
    t = start_ns
    for _ in range(count):
        detector.observe(_measurement(t, base_ms + rng.uniform(-jitter, jitter)))
        t += S
    return t


class TestDetection:
    def test_firewall_glitch_detected(self):
        detector = LatencySpikeDetector(min_flagged=3)
        t = _feed_baseline(detector)
        event = None
        for i in range(5):
            event = detector.observe(_measurement(t + i * S, 4150.0)) or event
        assert event is not None
        assert event.kind == "latency-spike"
        assert event.subject == "NZ->US"
        assert event.evidence["observed_ms"] > 4000
        assert detector.samples_flagged >= 3

    def test_event_start_at_first_flagged_sample(self):
        detector = LatencySpikeDetector(min_flagged=3)
        t = _feed_baseline(detector)
        for i in range(4):
            detector.observe(_measurement(t + i * S, 4150.0))
        assert detector.events[0].start_ns == t

    def test_no_detection_during_warmup(self):
        detector = LatencySpikeDetector(warmup=30)
        for i in range(10):
            assert detector.observe(_measurement(i * S, 4000.0)) is None
        assert detector.events == []

    def test_normal_traffic_never_flags(self):
        detector = LatencySpikeDetector()
        rng = random.Random(2)
        for i in range(500):
            detector.observe(_measurement(i * S, 150.0 + rng.uniform(-30, 30)))
        assert detector.finish() == []

    def test_single_outlier_not_confirmed(self):
        detector = LatencySpikeDetector(min_flagged=3)
        t = _feed_baseline(detector)
        detector.observe(_measurement(t, 4000.0))
        # Back to normal: one flagged sample never confirms.
        for i in range(1, 40):
            detector.observe(_measurement(t + i * S, 150.0))
        assert detector.finish() == []

    def test_per_pair_baselines_isolated(self):
        detector = LatencySpikeDetector(min_flagged=2)
        # AU path at 40ms, US path at 150ms; a 150ms sample on the AU
        # path is anomalous even though it is normal for the US path.
        rng = random.Random(3)
        for i in range(60):
            detector.observe(_measurement(i * S, 150 + rng.uniform(-5, 5), dst="US"))
            detector.observe(_measurement(i * S, 40 + rng.uniform(-2, 2), dst="AU"))
        t = 100 * S
        for i in range(3):
            detector.observe(_measurement(t + i * S, 160.0, dst="AU"))
        events = detector.finish()
        assert any(e.subject == "NZ->AU" for e in events)
        assert not any(e.subject == "NZ->US" for e in events)

    def test_anomalies_do_not_poison_baseline(self):
        detector = LatencySpikeDetector(min_flagged=2)
        t = _feed_baseline(detector)
        mean_before = detector.baseline.mean(("NZ", "US"))
        for i in range(20):
            detector.observe(_measurement(t + i * S, 4000.0))
        mean_after = detector.baseline.mean(("NZ", "US"))
        assert abs(mean_after - mean_before) < 1.0

    def test_event_closes_after_quiet_period(self):
        detector = LatencySpikeDetector(min_flagged=2, quiet_close_ns=10 * S)
        t = _feed_baseline(detector)
        for i in range(3):
            detector.observe(_measurement(t + i * S, 4000.0))
        # Long quiet stretch closes the event.
        for i in range(3, 40):
            detector.observe(_measurement(t + i * S, 150.0))
        assert len(detector.events) == 1
        assert not detector.events[0].is_open

    def test_finish_closes_open_events(self):
        detector = LatencySpikeDetector(min_flagged=2)
        t = _feed_baseline(detector)
        for i in range(3):
            detector.observe(_measurement(t + i * S, 4000.0))
        events = detector.finish()
        assert len(events) == 1
        assert not events[0].is_open
