"""Connection-count surge detector tests."""

import random

from repro.anomaly.conn_count import ConnectionCountDetector
from tests.anomaly.test_latency_spike import _measurement

S = 1_000_000_000


def _steady(detector, start_s, duration_s, per_window, window_s=10, rng=None):
    """per_window connections per detector window, spread evenly."""
    rng = rng or random.Random(0)
    total_seconds = duration_s
    rate_per_s = per_window / window_s
    count = int(total_seconds * rate_per_s)
    for i in range(count):
        t = int((start_s + i / rate_per_s) * S)
        detector.observe(_measurement(t, 150.0))


class TestConnectionCountDetector:
    def test_surge_detected(self):
        detector = ConnectionCountDetector(
            window_ns=10 * S, min_count=50, warmup=5
        )
        _steady(detector, 0, 120, per_window=20)       # baseline ~20/window
        _steady(detector, 120, 30, per_window=400)     # surge
        events = detector.finish(now_ns=160 * S)
        assert len(events) >= 1
        event = events[0]
        assert event.kind == "connection-surge"
        assert event.subject == "Auckland->Los Angeles"
        assert event.evidence["count"] >= 50

    def test_steady_traffic_never_flags(self):
        detector = ConnectionCountDetector(window_ns=10 * S, min_count=50, warmup=5)
        _steady(detector, 0, 300, per_window=100)
        assert detector.finish(now_ns=301 * S) == []

    def test_min_count_suppresses_quiet_pairs(self):
        # 2/window jumping to 20/window is a big ratio but tiny volume.
        detector = ConnectionCountDetector(window_ns=10 * S, min_count=50, warmup=5)
        _steady(detector, 0, 120, per_window=2)
        _steady(detector, 120, 30, per_window=20)
        assert detector.finish(now_ns=160 * S) == []

    def test_warmup_gates_detection(self):
        detector = ConnectionCountDetector(window_ns=10 * S, min_count=10, warmup=6)
        _steady(detector, 0, 30, per_window=500)  # only 3 windows: still warming
        assert detector.finish(now_ns=31 * S) == []

    def test_event_closes_when_surge_ends(self):
        detector = ConnectionCountDetector(window_ns=10 * S, min_count=50, warmup=5)
        _steady(detector, 0, 120, per_window=20)
        _steady(detector, 120, 30, per_window=400)
        _steady(detector, 150, 60, per_window=20)
        events = detector.finish(now_ns=211 * S)
        assert len(events) == 1
        assert not events[0].is_open
