"""EWMA baseline and windowed rate tests."""

import pytest

from repro.anomaly.baseline import EwmaBaseline, WindowedRate


class TestEwmaBaseline:
    def test_mean_converges(self):
        baseline = EwmaBaseline(alpha=0.2, warmup=1)
        for _ in range(100):
            baseline.observe("k", 50.0)
        assert baseline.mean("k") == pytest.approx(50.0)
        assert baseline.stddev("k") == pytest.approx(0.0, abs=1e-6)

    def test_warmup_gates_zscore(self):
        baseline = EwmaBaseline(alpha=0.1, warmup=10)
        for _ in range(9):
            baseline.observe("k", 10.0)
        assert baseline.zscore("k", 100.0) is None
        baseline.observe("k", 10.0)
        assert baseline.zscore("k", 100.0) is not None

    def test_zscore_scales_with_deviation(self):
        baseline = EwmaBaseline(alpha=0.1, warmup=5)
        for value in [10.0, 11.0, 9.0, 10.5, 9.5, 10.0, 10.2, 9.8]:
            baseline.observe("k", value)
        small = baseline.zscore("k", 11.0)
        large = baseline.zscore("k", 100.0)
        assert large > small
        assert large > 10

    def test_constant_stream_variance_floor(self):
        baseline = EwmaBaseline(alpha=0.1, warmup=3)
        for _ in range(10):
            baseline.observe("k", 5.0)
        # Variance floor must prevent division blowups.
        assert baseline.zscore("k", 5.0) == pytest.approx(0.0, abs=1e-3)

    def test_keys_independent(self):
        baseline = EwmaBaseline(warmup=1)
        baseline.observe("a", 1.0)
        baseline.observe("b", 100.0)
        assert baseline.mean("a") == 1.0
        assert baseline.mean("b") == 100.0
        assert baseline.mean("c") is None

    def test_is_warm(self):
        baseline = EwmaBaseline(warmup=2)
        baseline.observe("k", 1.0)
        assert not baseline.is_warm("k")
        baseline.observe("k", 1.0)
        assert baseline.is_warm("k")

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaBaseline(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaBaseline(alpha=1.5)
        with pytest.raises(ValueError):
            EwmaBaseline(warmup=0)


class TestWindowedRate:
    def test_counts_within_window(self):
        rate = WindowedRate(window_ns=1000)
        assert rate.add("k", 100) is None
        assert rate.add("k", 200) is None
        closed = rate.add("k", 1100)  # new window closes the old one
        assert closed == (0, {"k": 2})

    def test_multiple_keys(self):
        rate = WindowedRate(window_ns=1000)
        rate.add("a", 0)
        rate.add("b", 1)
        rate.add("b", 2)
        closed = rate.add("a", 1500)
        assert closed[1] == {"a": 1, "b": 2}

    def test_count_argument(self):
        rate = WindowedRate(window_ns=1000)
        rate.add("k", 0, count=5)
        rate.add("k", 10, count=0)  # clock tick without counting
        closed = rate.add("k", 2000)
        assert closed[1]["k"] == 5

    def test_flush(self):
        rate = WindowedRate(window_ns=1000)
        rate.add("k", 500)
        assert rate.flush() == (0, {"k": 1})
        assert rate.flush() is None

    def test_window_alignment(self):
        rate = WindowedRate(window_ns=1000)
        rate.add("k", 2500)
        closed = rate.add("k", 3100)
        assert closed[0] == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedRate(window_ns=0)
