"""Anomaly manager tests."""

import random

from repro.anomaly.manager import AnomalyManager
from repro.anomaly.events import Severity
from tests.anomaly.test_latency_spike import _measurement
from tests.anomaly.test_syn_flood import SYN, _packet

S = 1_000_000_000


class TestAnomalyManager:
    def test_latency_events_via_measurements(self):
        manager = AnomalyManager()
        rng = random.Random(1)
        for i in range(60):
            manager.observe_measurement(
                _measurement(i * S, 150 + rng.uniform(-10, 10))
            )
        for i in range(5):
            manager.observe_measurement(_measurement((60 + i) * S, 4200.0))
        events = manager.finish(now_ns=70 * S)
        assert manager.events_of_kind("latency-spike")
        assert any(e.kind == "latency-spike" for e in events)

    def test_flood_events_via_packets(self):
        manager = AnomalyManager()
        rng = random.Random(2)
        for second in range(3):
            for i in range(1200):
                t = second * S + i * (S // 1200)
                manager.observe_packet(_packet(SYN, t, rng=rng))
        events = manager.finish(now_ns=5 * S)
        assert any(e.kind == "syn-flood" for e in events)

    def test_alert_sink_called(self):
        alerts = []
        manager = AnomalyManager(alert_sink=alerts.append)
        rng = random.Random(3)
        for i in range(60):
            manager.observe_measurement(
                _measurement(i * S, 150 + rng.uniform(-10, 10))
            )
        for i in range(5):
            manager.observe_measurement(_measurement((60 + i) * S, 4200.0))
        assert alerts
        assert manager.alerts_raised == len(alerts)

    def test_finish_sorts_by_severity(self):
        manager = AnomalyManager()
        rng = random.Random(4)
        # Produce both a flood (critical) and nothing else; order check
        # needs at least one event.
        for second in range(3):
            for i in range(1200):
                manager.observe_packet(
                    _packet(SYN, second * S + i * (S // 1200), rng=rng)
                )
        events = manager.finish(now_ns=5 * S)
        severities = [int(e.severity) for e in events]
        assert severities == sorted(severities, reverse=True)
        assert events[0].severity == Severity.CRITICAL

    def test_quiet_stream_no_events(self):
        manager = AnomalyManager()
        rng = random.Random(5)
        for i in range(200):
            manager.observe_measurement(
                _measurement(i * S, 150 + rng.uniform(-10, 10))
            )
        assert manager.finish(now_ns=201 * S) == []
        assert manager.alerts_raised == 0

    def test_events_of_kind_unknown(self):
        assert AnomalyManager().events_of_kind("nothing") == []
