"""Path-drift detector tests."""

import random

import pytest

from repro.anomaly.path_drift import PathDriftDetector, Reservoir
from tests.anomaly.test_latency_spike import _measurement

S = 1_000_000_000
WINDOW = 300 * S


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        reservoir = Reservoir(capacity=10)
        for value in range(5):
            reservoir.add(float(value))
        assert sorted(reservoir.items) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_bounded_at_capacity(self):
        reservoir = Reservoir(capacity=50, seed=1)
        for value in range(1000):
            reservoir.add(float(value))
        assert len(reservoir) == 50
        assert reservoir.seen == 1000

    def test_roughly_uniform(self):
        # Average of a uniform sample of 0..999 should be near 500.
        means = []
        for seed in range(20):
            reservoir = Reservoir(capacity=100, seed=seed)
            for value in range(1000):
                reservoir.add(float(value))
            means.append(sum(reservoir.items) / len(reservoir.items))
        assert 430 < sum(means) / len(means) < 570

    def test_validation(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)


def _feed(detector, start_s, duration_s, median, rng, rate=1.0):
    count = int(duration_s * rate)
    for i in range(count):
        t = int((start_s + i / rate) * S)
        detector.observe(_measurement(t, rng.lognormvariate(
            __import__("math").log(median), 0.05
        )))


class TestPathDriftDetector:
    def test_route_change_detected(self):
        rng = random.Random(1)
        detector = PathDriftDetector(window_ns=WINDOW, min_samples=30)
        _feed(detector, 0, 600, 140.0, rng)       # two windows at 140 ms
        _feed(detector, 600, 600, 180.0, rng)     # route change: +40 ms
        events = detector.finish()
        assert events, "a 40 ms median shift must be flagged"
        event = events[0]
        assert event.kind == "path-drift"
        assert event.subject == "Auckland->Los Angeles"
        assert event.evidence["median_after_ms"] > event.evidence["median_before_ms"]

    def test_stable_path_silent(self):
        rng = random.Random(2)
        detector = PathDriftDetector(window_ns=WINDOW, min_samples=30)
        _feed(detector, 0, 1800, 140.0, rng)
        assert detector.finish() == []

    def test_small_shift_below_floor_ignored(self):
        rng = random.Random(3)
        detector = PathDriftDetector(
            window_ns=WINDOW, min_samples=30, min_median_shift_ms=10.0
        )
        _feed(detector, 0, 600, 140.0, rng)
        _feed(detector, 600, 600, 143.0, rng)  # 3 ms: under the floor
        assert detector.finish() == []

    def test_sparse_path_never_compared(self):
        rng = random.Random(4)
        detector = PathDriftDetector(window_ns=WINDOW, min_samples=30)
        _feed(detector, 0, 1200, 140.0, rng, rate=0.05)  # ~15 samples/window
        detector.finish()
        assert detector.windows_compared == 0

    def test_subtle_shift_spike_detector_would_miss(self):
        """The detector's reason to exist: a +20 ms full-population
        shift is far below any per-sample sigma test."""
        rng = random.Random(5)
        from repro.anomaly.latency_spike import LatencySpikeDetector

        drift = PathDriftDetector(window_ns=WINDOW, min_samples=30)
        spike = LatencySpikeDetector()
        for phase, median in ((0, 140.0), (600, 160.0)):
            count = 600
            for i in range(count):
                t = int((phase + i) * S)
                import math

                m = _measurement(t, rng.lognormvariate(math.log(median), 0.05))
                drift.observe(m)
                spike.observe(m)
        assert drift.finish(), "drift detector must flag the shift"
        assert spike.finish() == [], "spike detector must not"
