"""Anomaly event model tests."""

import pytest

from repro.anomaly.events import AnomalyEvent, Severity


def _event(**overrides):
    fields = dict(
        kind="latency-spike",
        start_ns=5_000_000_000,
        severity=Severity.WARNING,
        description="test",
        subject="NZ->US",
    )
    fields.update(overrides)
    return AnomalyEvent(**fields)


class TestAnomalyEvent:
    def test_open_until_closed(self):
        event = _event()
        assert event.is_open
        assert event.duration_ns is None
        event.close(8_000_000_000)
        assert not event.is_open
        assert event.duration_ns == 3_000_000_000

    def test_close_before_start_rejected(self):
        with pytest.raises(ValueError):
            _event().close(1)

    def test_severity_ordering(self):
        assert Severity.CRITICAL > Severity.WARNING > Severity.INFO

    def test_str_rendering(self):
        event = _event()
        text = str(event)
        assert "WARNING" in text
        assert "latency-spike" in text
        assert "ongoing" in text
        event.close(6_000_000_000)
        assert "1.0s" in str(event)
