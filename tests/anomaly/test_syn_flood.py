"""SYN-flood detector tests."""

import random

from repro.anomaly.syn_flood import SynFloodDetector
from repro.net.parser import ParsedPacket

S = 1_000_000_000

SYN = 0x02
ACK = 0x10

TARGET = 0x14000001  # 20.0.0.1


def _packet(flags, t_ns, src=None, dst=TARGET, rng=None):
    if src is None:
        src = rng.getrandbits(32) if rng else 0x0A000001
    return ParsedPacket(
        src_ip=src, dst_ip=dst, src_port=1234, dst_port=443,
        flags=flags, seq=0, ack=0, payload_len=0, timestamp_ns=t_ns,
    )


def _flood(detector, start_s, duration_s, rate, rng):
    for second in range(duration_s):
        for i in range(rate):
            t = (start_s + second) * S + i * (S // rate)
            detector.on_packet(_packet(SYN, t, rng=rng))


def _normal_traffic(detector, start_s, duration_s, rate, rng):
    """Balanced SYNs and completion ACKs toward the target."""
    for second in range(duration_s):
        for i in range(rate):
            t = (start_s + second) * S + i * (S // rate)
            detector.on_packet(_packet(SYN, t, rng=rng))
            detector.on_packet(_packet(ACK, t + S // (rate * 2), rng=rng))


class TestSynFloodDetector:
    def test_flood_detected(self):
        detector = SynFloodDetector(min_syn_rate=500)
        rng = random.Random(1)
        _normal_traffic(detector, 0, 3, 50, rng)
        _flood(detector, 3, 3, 2000, rng)
        events = detector.finish(now_ns=10 * S)
        assert len(events) == 1
        event = events[0]
        assert event.kind == "syn-flood"
        assert event.evidence["syn_rate"] >= 1900
        assert event.evidence["completion_fraction"] < 0.1
        assert "20.0.0.0/24" in event.subject

    def test_normal_traffic_never_flags(self):
        detector = SynFloodDetector(min_syn_rate=500)
        rng = random.Random(2)
        _normal_traffic(detector, 0, 10, 100, rng)
        assert detector.finish(now_ns=11 * S) == []

    def test_high_rate_with_completions_not_flagged(self):
        # A busy but healthy server: lots of SYNs, all completed.
        detector = SynFloodDetector(min_syn_rate=500)
        rng = random.Random(3)
        _normal_traffic(detector, 0, 5, 1000, rng)
        assert detector.finish(now_ns=6 * S) == []

    def test_event_closes_when_flood_stops(self):
        detector = SynFloodDetector(min_syn_rate=500)
        rng = random.Random(4)
        _flood(detector, 0, 3, 1500, rng)
        _normal_traffic(detector, 3, 5, 50, rng)
        events = detector.finish(now_ns=9 * S)
        assert len(events) == 1
        assert not events[0].is_open
        # Closed roughly when the flood ended.
        assert events[0].end_ns <= 5 * S

    def test_continuing_flood_extends_single_event(self):
        detector = SynFloodDetector(min_syn_rate=500)
        rng = random.Random(5)
        _flood(detector, 0, 6, 1500, rng)
        assert len(detector.finish(now_ns=7 * S)) == 1

    def test_privacy_of_subject(self):
        # The event subject is a /24, never a host address.
        detector = SynFloodDetector(min_syn_rate=100, prefix_bits=24)
        rng = random.Random(6)
        _flood(detector, 0, 2, 500, rng)
        events = detector.finish(now_ns=3 * S)
        assert events[0].subject.endswith("/24")
        assert events[0].subject.split("/")[0].endswith(".0")

    def test_distinct_targets_distinct_events(self):
        detector = SynFloodDetector(min_syn_rate=400)
        rng = random.Random(7)
        for second in range(3):
            for i in range(1000):
                t = second * S + i * (S // 1000)
                detector.on_packet(_packet(SYN, t, dst=0x14000001, rng=rng))
                detector.on_packet(_packet(SYN, t + 1, dst=0x22000001, rng=rng))
        events = detector.finish(now_ns=4 * S)
        assert len(events) == 2
        assert {e.subject for e in events} == {"20.0.0.0/24", "34.0.0.0/24"}
