"""Co-scheduled runtime tests."""

import pytest

from repro.core.config import PipelineConfig
from repro.runtime import RuruRuntime
from repro.traffic.scenarios import (
    AucklandLaScenario,
    FirewallGlitchInjector,
    SynFloodInjector,
)

NS_PER_S = 1_000_000_000


def _generator(duration_s=5, rate=30, seed=19, injectors=None):
    return AucklandLaScenario(
        duration_ns=duration_s * NS_PER_S, mean_flows_per_s=rate,
        seed=seed, diurnal=False,
    ).build(injectors=injectors, keep_specs=True)


class TestRuntime:
    def test_all_tiers_progress_together(self):
        generator = _generator()
        runtime = RuruRuntime.build(generator.plan, country_accuracy=1.0)
        report = runtime.run(generator.packets())

        completing = [
            s for s in generator.specs
            if s.completes and not s.rst_after_synack
        ]
        assert report.measurements == len(completing)
        # Every measurement reached the TSDB...
        from repro.tsdb.query import Query

        count = report.tsdb.query(Query("latency", "total_ms", "count")).scalar()
        assert count == report.measurements
        # ...and was drawn on the map.
        total_arcs = report.map_view.arcs_in
        assert total_arcs == report.measurements
        assert report.frontend_dropped == 0

    def test_interleaving_bounds_queue_depth(self):
        """Because analytics runs while rx still has work, the PULL
        queue never accumulates the whole run."""
        generator = _generator(duration_s=5, rate=60)
        runtime = RuruRuntime.build(generator.plan)
        runtime.run(generator.packets(), feed_batch=64)
        # After the run the input queue is empty, and its HWM was
        # never threatened (default HWM 10k >> what interleaving allows).
        assert len(runtime.service.pull) == 0
        assert runtime.service.pull.dropped == 0

    def test_frames_paced(self):
        generator = _generator(duration_s=4, rate=50)
        runtime = RuruRuntime.build(generator.plan, map_fps=30)
        report = runtime.run(generator.packets())
        # At most ~30 frames per virtual second (+ the final flush).
        assert report.map_view.frames_sent <= 4 * 31 + 1

    def test_anomalies_detected_live(self):
        glitch = FirewallGlitchInjector(
            window_start_offset_ns=30 * NS_PER_S, window_ns=10 * NS_PER_S
        )
        flood = SynFloodInjector(
            flood_start_ns=50 * NS_PER_S, flood_duration_ns=5 * NS_PER_S,
            rate_per_s=2000,
        )
        generator = _generator(duration_s=60, rate=30, injectors=[glitch, flood])
        runtime = RuruRuntime.build(generator.plan)
        report = runtime.run(generator.packets())
        kinds = {event.kind for event in report.anomalies}
        assert "latency-spike" in kinds
        assert "syn-flood" in kinds

    def test_detection_disabled(self):
        generator = _generator(duration_s=2)
        runtime = RuruRuntime.build(
            generator.plan, with_anomaly_detection=False
        )
        report = runtime.run(generator.packets())
        assert report.anomalies == []

    def test_custom_config(self):
        generator = _generator(duration_s=2)
        runtime = RuruRuntime.build(
            generator.plan, config=PipelineConfig(num_queues=2)
        )
        report = runtime.run(generator.packets())
        assert len(runtime.pipeline.workers) == 2
        assert report.measurements > 0
