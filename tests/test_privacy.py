"""System-wide privacy audit: the paper's anonymization guarantee.

"After this step, all original IP addresses are removed for privacy
reasons" — these tests run a full workload and audit every artefact
downstream of the enricher for surviving addresses.
"""

import json

from repro.analytics.anonymize import assert_no_addresses, find_addresses
from repro.analytics.service import AnalyticsService
from repro.core.pipeline import RuruPipeline
from repro.frontend.dashboard import build_ruru_dashboard
from repro.frontend.map_view import LiveMapView
from repro.frontend.websocket import WebSocketChannel
from repro.geo.builder import GeoDbBuilder
from repro.mq.codec import decode_enriched
from repro.mq.socket import Context
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_S = 1_000_000_000


def _run():
    generator = AucklandLaScenario(
        duration_ns=5 * NS_PER_S, mean_flows_per_s=30, seed=13, diurnal=False
    ).build()
    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan).build()
    service = AnalyticsService(context, geo, asn)
    sub = service.subscribe_frontend()
    pipeline = RuruPipeline(sink=service.make_sink())
    pipeline.run_packets(generator.packets())
    service.finish()
    return pipeline, service, sub


class TestPrivacyBoundary:
    def test_pipeline_records_do_contain_addresses(self):
        """Sanity: upstream of the enricher, addresses exist — the
        audit tool must be able to see them."""
        generator = AucklandLaScenario(
            duration_ns=2 * NS_PER_S, mean_flows_per_s=30, seed=13, diurnal=False
        ).build()
        pipeline = RuruPipeline()
        pipeline.run_packets(generator.packets())
        leaked = find_addresses(str(pipeline.measurements[0]))
        assert leaked

    def test_tsdb_contains_no_addresses(self):
        _, service, _ = _run()
        for measurement_name in service.tsdb.measurements():
            for series in service.tsdb.storage.series_for(measurement_name):
                assert_no_addresses(series.tags, f"tags of {measurement_name}")

    def test_tsdb_line_protocol_dump_clean(self):
        _, service, _ = _run()
        for line in service.tsdb.dump_lines():
            assert_no_addresses(line, "line protocol export")

    def test_frontend_feed_clean(self):
        _, _, sub = _run()
        for message in sub.recv_all():
            measurement = decode_enriched(message.payload[0])
            assert_no_addresses(measurement, "enriched measurement")

    def test_websocket_frames_clean(self):
        _, _, sub = _run()
        channel = WebSocketChannel()
        view = LiveMapView(channel=channel, max_arcs_per_frame=10_000)
        last = 0
        for message in sub.recv_all():
            measurement = decode_enriched(message.payload[0])
            view.add_measurement(measurement, measurement.timestamp_ns)
            last = max(last, measurement.timestamp_ns)
        view.flush_frame(last)
        for frame in channel.client_recv_all_json():
            assert_no_addresses(json.dumps(frame), "websocket map frame")

    def test_dashboard_results_clean(self):
        _, service, _ = _run()
        for panel in build_ruru_dashboard().render(service.tsdb):
            assert_no_addresses(panel.series_labels(), f"panel {panel.title}")
