"""Tests for the repro.faults injection framework and chaos harness."""
