"""Chaos harness tests: survival, conservation, determinism, metrics.

These are the acceptance tests for the resilience layer: a full
pipeline + analytics stack runs under each fault profile and must (a)
raise no unhandled exception, (b) balance the count-conservation
ledger, and (c) replay to identical counts from the same seed.
"""

import pytest

from repro.faults import ChaosHarness, run_chaos

# Small-but-busy runs keep the suite fast while still firing every
# fault kind at the default profile rates.
RUN = dict(duration_s=4.0, rate=30.0)

REQUIRED_METRIC_FAMILIES = (
    "ruru_retry_total",
    "ruru_breaker_state",
    "ruru_dlq_depth",
    "ruru_supervisor_restarts_total",
)


@pytest.fixture(scope="module")
def lossy_report():
    harness = ChaosHarness("lossy-mq", seed=42, **RUN)
    report = harness.run()
    return harness, report


class TestLossyMq:
    def test_survives_and_conserves(self, lossy_report):
        _, report = lossy_report
        assert report.unhandled == []
        assert report.ledger.ok
        report.ledger.check()

    def test_faults_actually_fired(self, lossy_report):
        _, report = lossy_report
        assert report.faults_injected.get(("mq", "drop"), 0) > 0
        assert report.faults_injected.get(("mq", "corrupt"), 0) > 0

    def test_mangled_payloads_deadlettered_not_crashed(self, lossy_report):
        _, report = lossy_report
        assert report.ledger.deadlettered > 0
        assert report.dlq_total == report.ledger.deadlettered
        assert all(
            stage == "mq.decode" for stage, _ in report.dlq_summary
        )

    def test_same_seed_identical_counts(self, lossy_report):
        _, report = lossy_report
        replay = run_chaos("lossy-mq", seed=42, **RUN)
        assert replay.counts() == report.counts()

    def test_different_seed_different_faults(self, lossy_report):
        _, report = lossy_report
        other = run_chaos("lossy-mq", seed=43, **RUN)
        assert other.ok
        assert other.counts() != report.counts()

    def test_required_metric_families_exposed(self, lossy_report):
        harness, _ = lossy_report
        text = harness.telemetry.registry.exposition()
        for family in REQUIRED_METRIC_FAMILIES:
            assert family in text, family

    def test_dlq_depth_metric_matches_report(self, lossy_report):
        harness, report = lossy_report
        text = harness.telemetry.registry.exposition()
        assert f"ruru_dlq_depth {report.dlq_depth}" in text

    def test_report_renders(self, lossy_report):
        _, report = lossy_report
        text = report.render()
        assert "verdict: OK" in text
        assert "conservation:" in text


class TestCleanControl:
    def test_no_faults_no_losses(self):
        report = run_chaos("clean", seed=42, **RUN)
        assert report.ok
        assert report.faults_injected == {}
        assert report.dlq_total == 0
        assert report.degraded_published == 0
        assert report.ledger.processed == report.ledger.ingested
        assert report.measurement_loss_rate() == 0.0


class TestFlakyGeo:
    def test_degrades_instead_of_losing(self):
        report = run_chaos("flaky-geo", seed=42, **RUN)
        assert report.ok
        # Enrichment faults never cost records: everything publishes,
        # some un-enriched with the degraded flag.
        assert report.ledger.processed == report.ledger.ingested
        assert report.degraded_published > 0
        assert report.breaker_opened["enrich"] > 0

    def test_degraded_flag_visible_downstream(self):
        report = run_chaos("flaky-geo", seed=42, **RUN)
        assert report.frontend_degraded > 0
        assert report.frontend_degraded < report.frontend_received


class TestTsdbBrownout:
    def test_writes_retry_and_recover(self):
        report = run_chaos("tsdb-brownout", seed=42, **RUN)
        assert report.ok
        assert report.retries > 0
        assert report.breaker_opened["tsdb"] > 0
        assert report.points_written > 0
        # Recovery time is measurable from the breaker transition log.
        assert report.breaker_recovery_ns["tsdb"]
        assert all(t > 0 for t in report.breaker_recovery_ns["tsdb"])


class TestCrashyWorkers:
    def test_crashes_supervised_without_record_loss(self):
        report = run_chaos("crashy-workers", seed=42, **RUN)
        assert report.ok
        assert report.supervisor_restarts > 0
        # Crash-before-poll means accepted packets survive restarts:
        # the run measures exactly what the clean control run measures.
        clean = run_chaos("clean", seed=42, **RUN)
        assert report.ledger.ingested == clean.ledger.ingested


class TestMonsoon:
    def test_everything_at_once_still_conserves(self):
        report = run_chaos("monsoon", seed=42, **RUN)
        assert report.unhandled == []
        report.ledger.check()
        assert report.faults_injected  # plenty fired
