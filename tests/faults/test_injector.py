"""Fault injector tests: determinism, stream independence, mangling."""

import pytest

from repro.faults import FaultInjector, FaultProfile, WorkerCrash, get_profile
from repro.net.packet import Packet


def _profile(**rates):
    return FaultProfile(name="test", **rates)


def _packets(n=20, step_ns=1_000_000):
    return [
        Packet(data=bytes([i]) * 60, timestamp_ns=i * step_ns) for i in range(n)
    ]


class TestDecide:
    def test_same_seed_same_decision_stream(self):
        a = FaultInjector(_profile(), seed=5)
        b = FaultInjector(_profile(), seed=5)
        stream_a = [a.decide("s", "k", 0.5) for _ in range(40)]
        stream_b = [b.decide("s", "k", 0.5) for _ in range(40)]
        assert stream_a == stream_b
        assert any(stream_a) and not all(stream_a)

    def test_zero_rate_consumes_no_roll(self):
        plain = FaultInjector(_profile(), seed=5)
        interleaved = FaultInjector(_profile(), seed=5)
        stream_plain, stream_mixed = [], []
        for _ in range(40):
            stream_plain.append(plain.decide("s", "k", 0.5))
            interleaved.decide("s", "disabled", 0.0)  # must not advance the RNG
            stream_mixed.append(interleaved.decide("s", "k", 0.5))
        assert stream_plain == stream_mixed

    def test_stages_have_independent_streams(self):
        injector = FaultInjector(_profile(), seed=5)
        fresh = FaultInjector(_profile(), seed=5)
        for _ in range(40):
            injector.decide("other", "k", 0.5)  # burn a different stage's rolls
        assert [injector.decide("s", "k", 0.5) for _ in range(20)] == [
            fresh.decide("s", "k", 0.5) for _ in range(20)
        ]

    def test_fired_faults_are_counted(self):
        injector = FaultInjector(_profile(), seed=5)
        fired = sum(injector.decide("s", "k", 1.0) for _ in range(7))
        assert fired == 7
        assert injector.count("s", "k") == 7
        assert injector.total_injected() == 7


class TestMangling:
    def test_corrupt_changes_bytes_preserves_length(self):
        injector = FaultInjector(_profile(), seed=5)
        data = bytes(range(64))
        mangled = injector.corrupt_bytes("s", data)
        assert len(mangled) == len(data)
        assert mangled != data

    def test_truncate_shortens(self):
        injector = FaultInjector(_profile(), seed=5)
        data = bytes(range(64))
        cut = injector.truncate_bytes("s", data)
        assert 1 <= len(cut) < len(data)
        assert data.startswith(cut)


class TestPacketStream:
    def test_clean_profile_passes_through(self):
        injector = FaultInjector(_profile(), seed=5)
        packets = _packets()
        assert list(injector.packet_stream(packets)) == packets

    def test_drop_rate_one_drops_everything(self):
        injector = FaultInjector(_profile(packet_drop_rate=1.0), seed=5)
        assert list(injector.packet_stream(_packets())) == []
        assert injector.count("nic.rx", "drop") == 20

    def test_duplicate_rate_one_doubles(self):
        injector = FaultInjector(_profile(packet_duplicate_rate=1.0), seed=5)
        out = list(injector.packet_stream(_packets(n=5)))
        assert len(out) == 10
        assert out[0].data == out[1].data

    def test_delayed_packets_keep_timestamp_order(self):
        injector = FaultInjector(
            _profile(packet_delay_rate=0.5), seed=5
        )
        out = list(injector.packet_stream(_packets(n=50)))
        assert len(out) == 50  # delayed, never lost
        stamps = [p.timestamp_ns for p in out]
        assert stamps == sorted(stamps)

    def test_truncation_rewrites_frame_data(self):
        injector = FaultInjector(_profile(packet_truncate_rate=1.0), seed=5)
        out = list(injector.packet_stream(_packets(n=5)))
        assert all(len(p.data) < 60 for p in out)


class TestCrashyPoll:
    def test_zero_rate_returns_poll_unwrapped(self):
        injector = FaultInjector(_profile(), seed=5)
        poll = lambda: 1  # noqa: E731
        assert injector.crashy_poll(poll, "w") is poll

    def test_rate_one_always_crashes(self):
        injector = FaultInjector(_profile(worker_crash_rate=1.0), seed=5)
        wrapped = injector.crashy_poll(lambda: 1, "rx-worker-q0")
        with pytest.raises(WorkerCrash, match="rx-worker-q0"):
            wrapped()


class TestProfiles:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="probability"):
            FaultProfile(name="bad", mq_drop_rate=1.5)

    def test_unknown_profile_lists_names(self):
        with pytest.raises(ValueError, match="lossy-mq"):
            get_profile("no-such-profile")

    def test_active_faults_only_nonzero(self):
        profile = get_profile("lossy-mq")
        active = profile.active_faults()
        assert "mq_drop_rate" in active
        assert "geo_failure_rate" not in active
