"""The paper's filter-module extension, spliced into the live path.

§2: "one could add a filter module to filter measurements in the
pipeline based on some criteria (e.g., geo-location)". This test
builds exactly that topology: the analytics PUB feeds a Forwarder
whose predicate keeps only trans-Pacific measurements, and only the
forwarder's output reaches the map.
"""

from repro.analytics.service import AnalyticsService
from repro.core.pipeline import RuruPipeline
from repro.frontend.map_view import LiveMapView
from repro.geo.builder import GeoDbBuilder
from repro.mq.broker import Forwarder
from repro.mq.codec import decode_enriched
from repro.mq.socket import Context
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_S = 1_000_000_000


def test_geo_filter_module_in_live_path():
    generator = AucklandLaScenario(
        duration_ns=5 * NS_PER_S, mean_flows_per_s=40, seed=41, diurnal=False
    ).build()
    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan, country_accuracy=1.0).build()
    service = AnalyticsService(context, geo, asn)

    # Splice: service PUB -> [sub_in -> filter -> pub_out] -> map sub.
    sub_in = service.subscribe_frontend(hwm=1 << 20)
    pub_out = context.pub()
    map_sub = context.sub(hwm=1 << 20)
    map_sub.subscribe(b"")
    map_sub.bind("inproc://filtered-map")
    pub_out.connect("inproc://filtered-map")

    def keep_nz_us(message) -> bool:
        measurement = decode_enriched(message.payload[0])
        return {measurement.src_country, measurement.dst_country} == {"NZ", "US"}

    module = Forwarder(sub_in, pub_out, message_filter=keep_nz_us)

    pipeline = RuruPipeline(sink=service.make_sink())
    stats = pipeline.run_packets(generator.packets())
    service.finish()
    module.poll(max_messages=1 << 20)

    # The module saw everything; the map sees only the NZ<->US slice.
    assert module.forwarded + module.filtered == stats.measurements
    assert 0 < module.forwarded < stats.measurements

    view = LiveMapView(max_arcs_per_frame=1 << 20, arc_ttl_s=1e6)
    last = 0
    for message in map_sub.recv_all():
        measurement = decode_enriched(message.payload[0])
        assert {measurement.src_country, measurement.dst_country} == {"NZ", "US"}
        view.add_measurement(measurement, measurement.timestamp_ns)
        last = max(last, measurement.timestamp_ns)
    frame = view.flush_frame(last)
    assert frame.active_arcs == module.forwarded
