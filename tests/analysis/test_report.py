"""Per-path analysis report tests."""

import math
import random

from repro.analysis.report import analyze_paths, compare_windows
from repro.analytics.enricher import EnrichedMeasurement

MS = 1_000_000


def _measurement(total_ms, t_ns=0, src_city="Auckland", dst_city="Los Angeles"):
    total_ns = int(total_ms * MS)
    return EnrichedMeasurement(
        timestamp_ns=t_ns, internal_ns=total_ns // 10,
        external_ns=total_ns - total_ns // 10,
        src_country="NZ", src_city=src_city, src_lat=0, src_lon=0, src_asn=1,
        dst_country="US", dst_city=dst_city, dst_lat=0, dst_lon=0, dst_asn=2,
    )


def _population(rng, median, sigma, count, **kwargs):
    return [
        _measurement(rng.lognormvariate(math.log(median), sigma), **kwargs)
        for _ in range(count)
    ]


class TestAnalyzePaths:
    def test_unimodal_path(self):
        rng = random.Random(1)
        reports = analyze_paths(_population(rng, 140.0, 0.1, 300))
        assert len(reports) == 1
        report = reports[0]
        assert report.pair == ("Auckland", "Los Angeles")
        assert not report.is_multimodal
        assert abs(report.median_ms - 140.0) < 10.0
        assert report.p95_ms > report.median_ms

    def test_multimodal_path_flagged(self):
        rng = random.Random(2)
        measurements = (
            _population(rng, 30.0, 0.05, 300)
            + _population(rng, 240.0, 0.05, 150)
        )
        reports = analyze_paths(measurements)
        assert reports[0].is_multimodal
        assert "+" in reports[0].mode_summary()

    def test_small_pairs_skipped(self):
        rng = random.Random(3)
        measurements = (
            _population(rng, 100.0, 0.1, 100, dst_city="Seattle")
            + _population(rng, 100.0, 0.1, 5, dst_city="Miami")
        )
        reports = analyze_paths(measurements, min_samples=20)
        assert {r.pair[1] for r in reports} == {"Seattle"}

    def test_sorted_by_volume(self):
        rng = random.Random(4)
        measurements = (
            _population(rng, 100.0, 0.1, 50, dst_city="Seattle")
            + _population(rng, 100.0, 0.1, 200, dst_city="Chicago")
        )
        reports = analyze_paths(measurements)
        assert reports[0].pair[1] == "Chicago"


class TestCompareWindows:
    def test_stable_path_no_drift(self):
        rng = random.Random(5)
        before = _population(rng, 140.0, 0.1, 300)
        after = _population(rng, 140.0, 0.1, 300)
        drifts = compare_windows(before, after)
        assert len(drifts) == 1
        assert not drifts[0].significant

    def test_shifted_path_detected(self):
        rng = random.Random(6)
        before = _population(rng, 140.0, 0.08, 300)
        after = _population(rng, 190.0, 0.08, 300)
        drifts = compare_windows(before, after)
        assert drifts[0].significant
        assert drifts[0].median_shift_ms > 30

    def test_pairs_missing_from_one_window_skipped(self):
        rng = random.Random(7)
        before = _population(rng, 100.0, 0.1, 100, dst_city="Seattle")
        after = _population(rng, 100.0, 0.1, 100, dst_city="Chicago")
        assert compare_windows(before, after) == []

    def test_most_drifted_first(self):
        rng = random.Random(8)
        before = (
            _population(rng, 100.0, 0.05, 200, dst_city="Seattle")
            + _population(rng, 100.0, 0.05, 200, dst_city="Chicago")
        )
        after = (
            _population(rng, 101.0, 0.05, 200, dst_city="Seattle")   # tiny
            + _population(rng, 300.0, 0.05, 200, dst_city="Chicago")  # huge
        )
        drifts = compare_windows(before, after)
        assert drifts[0].pair[1] == "Chicago"
