"""Mixture fitting tests."""

import math
import random

import pytest

from repro.analysis.mixture import (
    MixtureFit,
    fit_lognormal_mixture,
    select_components,
)


def _lognormal_samples(rng, mu, sigma, count):
    return [rng.lognormvariate(mu, sigma) for _ in range(count)]


class TestSingleMode:
    def test_recovers_parameters(self):
        rng = random.Random(1)
        true_mu, true_sigma = math.log(140.0), 0.12
        samples = _lognormal_samples(rng, true_mu, true_sigma, 2000)
        fit = fit_lognormal_mixture(samples, k=1)
        component = fit.components[0]
        assert abs(component.mu - true_mu) < 0.02
        assert abs(component.sigma - true_sigma) < 0.02
        assert component.weight == pytest.approx(1.0)
        assert abs(component.median_ms - 140.0) < 5.0


class TestTwoModes:
    def test_separates_well_spaced_modes(self):
        rng = random.Random(2)
        samples = (
            _lognormal_samples(rng, math.log(30.0), 0.08, 1500)
            + _lognormal_samples(rng, math.log(200.0), 0.08, 500)
        )
        rng.shuffle(samples)
        fit = fit_lognormal_mixture(samples, k=2, seed=3)
        low, high = fit.components
        assert abs(low.median_ms - 30.0) < 4.0
        assert abs(high.median_ms - 200.0) < 25.0
        assert abs(low.weight - 0.75) < 0.05
        assert abs(high.weight - 0.25) < 0.05

    def test_dominant_mode(self):
        rng = random.Random(3)
        samples = (
            _lognormal_samples(rng, math.log(50.0), 0.1, 900)
            + _lognormal_samples(rng, math.log(400.0), 0.1, 100)
        )
        fit = fit_lognormal_mixture(samples, k=2, seed=1)
        assert abs(fit.dominant.median_ms - 50.0) < 8.0


class TestModelSelection:
    def test_bic_picks_one_for_unimodal(self):
        rng = random.Random(4)
        samples = _lognormal_samples(rng, math.log(100.0), 0.1, 800)
        best = select_components(samples, max_k=3, seed=2)
        assert best.k == 1

    def test_bic_picks_two_for_bimodal(self):
        rng = random.Random(5)
        samples = (
            _lognormal_samples(rng, math.log(20.0), 0.06, 600)
            + _lognormal_samples(rng, math.log(300.0), 0.06, 600)
        )
        best = select_components(samples, max_k=4, seed=2)
        assert best.k == 2

    def test_weights_sum_to_one(self):
        rng = random.Random(6)
        samples = _lognormal_samples(rng, math.log(80.0), 0.3, 300)
        for k in (1, 2, 3):
            fit = fit_lognormal_mixture(samples, k=k, seed=1)
            assert sum(c.weight for c in fit.components) == pytest.approx(1.0)


class TestQuality:
    def test_log_likelihood_nondecreasing_in_k(self):
        rng = random.Random(7)
        samples = (
            _lognormal_samples(rng, math.log(20.0), 0.1, 300)
            + _lognormal_samples(rng, math.log(200.0), 0.1, 300)
        )
        ll_1 = fit_lognormal_mixture(samples, k=1).log_likelihood
        ll_2 = fit_lognormal_mixture(samples, k=2, seed=1).log_likelihood
        assert ll_2 > ll_1

    def test_density_positive_and_peaked_near_mode(self):
        rng = random.Random(8)
        samples = _lognormal_samples(rng, math.log(100.0), 0.1, 500)
        fit = fit_lognormal_mixture(samples, k=1)
        assert fit.density_ms(100.0) > fit.density_ms(500.0)
        assert fit.density_ms(-5.0) == 0.0

    def test_deterministic_with_seed(self):
        rng = random.Random(9)
        samples = _lognormal_samples(rng, math.log(60.0), 0.2, 200)
        a = fit_lognormal_mixture(samples, k=2, seed=5)
        b = fit_lognormal_mixture(samples, k=2, seed=5)
        assert a.components == b.components

    def test_significant_modes_filters_tiny(self):
        fit = fit_lognormal_mixture(
            [10.0] * 50 + [10.5] * 50, k=2, seed=1
        )
        modes = fit.significant_modes(min_weight=0.05)
        assert 1 <= len(modes) <= 2


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_lognormal_mixture([1.0, 2.0], k=2)

    def test_nonpositive_samples(self):
        with pytest.raises(ValueError):
            fit_lognormal_mixture([1.0, -2.0, 3.0, 4.0], k=1)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            fit_lognormal_mixture([1.0, 2.0, 3.0], k=0)
