"""Empirical CDF and KS tests."""

import random

import pytest

from repro.analysis.cdf import EmpiricalCdf, ks_distance, ks_significant


class TestEmpiricalCdf:
    def test_step_values(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(10.0) == 1.0

    def test_quantiles(self):
        cdf = EmpiricalCdf(list(range(1, 101)))
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 100
        assert cdf.median == 50

    def test_quantile_validation(self):
        cdf = EmpiricalCdf([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])

    def test_unsorted_input_handled(self):
        cdf = EmpiricalCdf([3.0, 1.0, 2.0])
        assert cdf.values == [1.0, 2.0, 3.0]


class TestKsDistance:
    def test_identical_samples_zero(self):
        samples = [1.0, 2.0, 3.0]
        assert ks_distance(samples, samples) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_symmetric(self):
        rng = random.Random(1)
        a = [rng.gauss(0, 1) for _ in range(100)]
        b = [rng.gauss(0.5, 1) for _ in range(100)]
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_accepts_prebuilt_cdfs(self):
        a, b = EmpiricalCdf([1.0, 2.0]), EmpiricalCdf([1.5, 2.5])
        assert 0.0 < ks_distance(a, b) <= 1.0


class TestKsSignificance:
    def test_same_distribution_not_significant(self):
        rng = random.Random(2)
        a = [rng.gauss(100, 10) for _ in range(400)]
        b = [rng.gauss(100, 10) for _ in range(400)]
        assert not ks_significant(a, b, alpha=0.01)

    def test_shifted_distribution_significant(self):
        rng = random.Random(3)
        a = [rng.gauss(100, 10) for _ in range(400)]
        b = [rng.gauss(130, 10) for _ in range(400)]
        assert ks_significant(a, b, alpha=0.01)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            ks_significant([1.0], [2.0], alpha=0.2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_significant([], [1.0])
