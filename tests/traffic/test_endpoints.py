"""Endpoint population tests."""

import random

import pytest

from repro.traffic.endpoints import EndpointPopulation, TapSide
from repro.geo.locations import city_by_name


class TestTapSide:
    def test_weighted_draw(self):
        side = TapSide(
            cities=(city_by_name("Auckland"), city_by_name("Wellington")),
            weights=(0.9, 0.1),
        )
        rng = random.Random(1)
        draws = [side.draw_city(rng).name for _ in range(1000)]
        auckland_share = draws.count("Auckland") / 1000
        assert 0.85 < auckland_share < 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            TapSide(cities=(), weights=())
        with pytest.raises(ValueError):
            TapSide(cities=(city_by_name("Auckland"),), weights=(0.0,))
        with pytest.raises(ValueError):
            TapSide(cities=(city_by_name("Auckland"),), weights=(1.0, 2.0))


class TestEndpointPopulation:
    def test_outbound_fraction_respected(self):
        population = EndpointPopulation(outbound_fraction=0.8)
        rng = random.Random(2)
        outbound = sum(
            1 for _ in range(1000) if population.draw_pair(rng)[2]
        )
        assert 740 < outbound < 860

    def test_outbound_client_is_internal(self):
        population = EndpointPopulation(outbound_fraction=1.0)
        rng = random.Random(3)
        for _ in range(50):
            client, server, outbound = population.draw_pair(rng)
            assert outbound
            assert client.country_code == "NZ"
            assert server.country_code != "NZ" or server.name not in (
                c.name for c in population.internal.cities
            )

    def test_inbound_client_is_external(self):
        population = EndpointPopulation(outbound_fraction=0.0)
        rng = random.Random(4)
        client, server, outbound = population.draw_pair(rng)
        assert not outbound
        assert server.country_code == "NZ"

    def test_host_resolves_to_city(self, plan):
        population = EndpointPopulation(plan=plan)
        rng = random.Random(5)
        city = city_by_name("Seattle")
        host = population.host_in(city, rng)
        assert plan.city_of(host).name == "Seattle"

    def test_unknown_city_in_weights_rejected(self):
        with pytest.raises(ValueError):
            EndpointPopulation(internal_weights={"Atlantis": 1.0})

    def test_bad_outbound_fraction_rejected(self):
        with pytest.raises(ValueError):
            EndpointPopulation(outbound_fraction=1.5)
