"""Scenario injectors are deterministic: same spec + seed, same flows.

The scenario harness's byte-identical-baselines guarantee rests on
this: every injected episode (flood, surge, glitch) must produce the
same flow sequence when rebuilt from the same spec with the same seed.
"""

import random

from repro.scenarios.runner import build_scenario_generator
from repro.scenarios.spec import AnomalyWindowSpec, ScenarioSpec, TrafficSpec
from repro.traffic.flows import FlowSpec
from repro.traffic.scenarios import (
    ConnectionSurgeInjector,
    FirewallGlitchInjector,
    SynFloodInjector,
)

NS_PER_S = 1_000_000_000


def flows_of(injector, seed=13):
    return list(injector.extra_flows(random.Random(seed)))


class TestInjectorLevel:
    def test_syn_flood_same_seed_same_flows(self):
        make = lambda: SynFloodInjector(  # noqa: E731
            flood_start_ns=2 * NS_PER_S,
            flood_duration_ns=1 * NS_PER_S,
            rate_per_s=500.0,
        )
        first, second = flows_of(make()), flows_of(make())
        assert first == second and len(first) == 500

    def test_syn_flood_other_seed_differs(self):
        injector = SynFloodInjector(
            flood_start_ns=0, flood_duration_ns=NS_PER_S, rate_per_s=200.0
        )
        assert flows_of(injector, 13) != flows_of(injector, 14)

    def test_connection_surge_same_seed_same_flows(self):
        make = lambda: ConnectionSurgeInjector(  # noqa: E731
            surge_start_ns=0,
            surge_duration_ns=2 * NS_PER_S,
            rate_per_s=150.0,
        )
        first, second = flows_of(make()), flows_of(make())
        assert first == second and len(first) == 300

    def test_firewall_glitch_adjusts_identically(self):
        def delayed(seed):
            injector = FirewallGlitchInjector(
                window_start_offset_ns=0, window_ns=5 * NS_PER_S
            )
            rng = random.Random(seed)
            specs = [
                FlowSpec(
                    start_ns=i * NS_PER_S,
                    client_ip=1,
                    server_ip=2,
                    client_port=1000 + i,
                    server_port=443,
                    internal_rtt_ms=1.0,
                    external_rtt_ms=100.0,
                    server_delay_ms=0.0,
                )
                for i in range(10)
            ]
            return [injector.adjust(s, rng).server_delay_ms for s in specs]

        assert delayed(13) == delayed(13)
        # Exactly the in-window flows got the extra delay.
        assert sum(ms > 0 for ms in delayed(13)) == 5


class TestSpecLevel:
    def packets_for(self, kind, params):
        spec = ScenarioSpec(
            name="det-probe",
            seed=5,
            traffic=TrafficSpec(duration_s=3.0, rate=20.0),
            anomalies=(
                AnomalyWindowSpec(kind=kind, at_s=1.0, duration_s=1.0, params=params),
            ),
        )
        generator = build_scenario_generator(spec, spec.seed)
        return [(p.timestamp_ns, p.data) for p in generator.packets()]

    def test_every_kind_generates_byte_identical_streams(self):
        for kind, params in (
            ("syn-flood", {"rate_per_s": 300.0}),
            ("connection-surge", {"rate_per_s": 100.0}),
            ("firewall-glitch", {"extra_delay_ms": 2000.0}),
        ):
            first = self.packets_for(kind, params)
            second = self.packets_for(kind, params)
            assert first == second, f"{kind} stream not reproducible"
            assert first, f"{kind} produced no packets"
