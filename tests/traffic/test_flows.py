"""Flow synthesizer tests: the tap-timestamp ground truth."""

import random

import pytest

from repro.net.parser import PacketParser
from repro.traffic.flows import FlowSpec, FlowSynthesizer

MS = 1_000_000


def _spec(**overrides):
    fields = dict(
        start_ns=0,
        client_ip=0x0A000001,
        server_ip=0x14000001,
        client_port=40000,
        server_port=443,
        internal_rtt_ms=10.0,
        external_rtt_ms=140.0,
        server_delay_ms=1.0,
        client_delay_ms=0.5,
        data_exchanges=2,
    )
    fields.update(overrides)
    return FlowSpec(**fields)


def _parse_all(packets):
    parser = PacketParser(extract_timestamps=True)
    return [parser.parse(p.data, p.timestamp_ns) for p in packets]


class TestHandshakeTimestamps:
    def test_tap_arithmetic(self):
        spec = _spec()
        packets = FlowSynthesizer(random.Random(1)).synthesize(spec)
        parsed = _parse_all(packets)
        syn = next(p for p in parsed if p.is_syn)
        synack = next(p for p in parsed if p.is_synack)
        ack = next(p for p in parsed if p.is_ack and p.payload_len == 0)
        assert synack.timestamp_ns - syn.timestamp_ns == spec.expected_external_ns()
        assert ack.timestamp_ns - synack.timestamp_ns == spec.expected_internal_ns()

    def test_expected_totals(self):
        spec = _spec(internal_rtt_ms=20, external_rtt_ms=100,
                     server_delay_ms=2, client_delay_ms=1)
        assert spec.expected_external_ns() == 102 * MS
        assert spec.expected_internal_ns() == 21 * MS
        assert spec.expected_total_ns() == 123 * MS

    def test_packets_time_ordered(self):
        packets = FlowSynthesizer(random.Random(2)).synthesize(_spec())
        timestamps = [p.timestamp_ns for p in packets]
        assert timestamps == sorted(timestamps)

    def test_sequence_numbers_consistent(self):
        parsed = _parse_all(FlowSynthesizer(random.Random(3)).synthesize(_spec()))
        syn = next(p for p in parsed if p.is_syn)
        synack = next(p for p in parsed if p.is_synack)
        ack = next(p for p in parsed if p.is_ack)
        assert synack.ack == (syn.seq + 1) & 0xFFFFFFFF
        assert ack.seq == (syn.seq + 1) & 0xFFFFFFFF
        assert ack.ack == (synack.seq + 1) & 0xFFFFFFFF


class TestBehaviours:
    def test_handshake_only_flow(self):
        packets = FlowSynthesizer(random.Random(4)).synthesize(
            _spec(completes=False)
        )
        parsed = _parse_all(packets)
        assert len(parsed) == 1
        assert parsed[0].is_syn

    def test_rst_abort(self):
        parsed = _parse_all(FlowSynthesizer(random.Random(5)).synthesize(
            _spec(rst_after_synack=True)
        ))
        assert any(p.is_rst for p in parsed)
        assert not any(p.is_ack and not p.is_rst for p in parsed)

    def test_syn_loss_duplicates_syn_and_delays_synack(self):
        spec = _spec(syn_lost_beyond_tap=True, rto_ms=1000.0)
        parsed = _parse_all(FlowSynthesizer(random.Random(6)).synthesize(spec))
        syns = [p for p in parsed if p.is_syn]
        assert len(syns) == 2
        assert syns[1].timestamp_ns - syns[0].timestamp_ns == 1000 * MS
        assert syns[0].seq == syns[1].seq  # same ISN on retransmit
        synack = next(p for p in parsed if p.is_synack)
        assert (
            synack.timestamp_ns - syns[0].timestamp_ns
            == spec.expected_external_ns()
        )

    def test_data_exchanges_counted(self):
        parsed = _parse_all(FlowSynthesizer(random.Random(7)).synthesize(
            _spec(data_exchanges=3, fin_close=False)
        ))
        requests = [p for p in parsed if p.payload_len > 0 and p.src_port == 40000]
        responses = [p for p in parsed if p.payload_len > 0 and p.src_port == 443]
        assert len(requests) == 3
        assert len(responses) == 3

    def test_fin_close_present(self):
        parsed = _parse_all(FlowSynthesizer(random.Random(8)).synthesize(
            _spec(fin_close=True, data_exchanges=0)
        ))
        fins = [p for p in parsed if p.is_fin]
        assert len(fins) == 2  # one from each side

    def test_no_fin_when_disabled(self):
        parsed = _parse_all(FlowSynthesizer(random.Random(9)).synthesize(
            _spec(fin_close=False, data_exchanges=0)
        ))
        assert not any(p.is_fin for p in parsed)


class TestTimestampOptions:
    def test_all_packets_carry_tsval(self):
        parsed = _parse_all(FlowSynthesizer(random.Random(10)).synthesize(_spec()))
        assert all(p.tsval is not None for p in parsed)

    def test_tsecr_echoes_peer_tsval(self):
        parsed = _parse_all(FlowSynthesizer(random.Random(11)).synthesize(_spec()))
        syn = next(p for p in parsed if p.is_syn)
        synack = next(p for p in parsed if p.is_synack)
        assert syn.tsecr == 0
        assert synack.tsecr == syn.tsval


class TestValidation:
    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            _spec(internal_rtt_ms=-1.0)

    def test_negative_exchanges_rejected(self):
        with pytest.raises(ValueError):
            _spec(data_exchanges=-1)
