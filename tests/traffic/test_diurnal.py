"""Diurnal profile and arrival process tests."""

import random

import pytest

from repro.traffic.diurnal import (
    NS_PER_HOUR,
    NS_PER_S,
    DiurnalProfile,
    expected_count,
    poisson_arrivals,
)


class TestProfile:
    def test_flat_profile(self):
        profile = DiurnalProfile.flat()
        for hour in range(24):
            assert profile.multiplier(hour * NS_PER_HOUR) == 1.0

    def test_default_has_night_trough_and_evening_peak(self):
        profile = DiurnalProfile()
        night = profile.multiplier(3 * NS_PER_HOUR)
        evening = profile.multiplier(19 * NS_PER_HOUR)
        assert night < 0.5
        assert evening > 1.3
        assert evening > 4 * night

    def test_interpolation_between_hours(self):
        profile = DiurnalProfile(hourly=tuple([1.0] * 23 + [3.0]))
        halfway = profile.multiplier(int(22.5 * NS_PER_HOUR))
        assert halfway == pytest.approx(2.0)

    def test_wraps_daily(self):
        profile = DiurnalProfile()
        assert profile.multiplier(0) == profile.multiplier(24 * NS_PER_HOUR)
        assert profile.multiplier(3 * NS_PER_HOUR) == profile.multiplier(
            27 * NS_PER_HOUR
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(1.0,) * 23)
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(-1.0,) + (1.0,) * 23)
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(0.0,) * 24)


class TestArrivals:
    def test_rate_matches_expectation_flat(self):
        rng = random.Random(1)
        arrivals = list(poisson_arrivals(
            rng, 100.0, 0, 60 * NS_PER_S, DiurnalProfile.flat()
        ))
        assert 5300 < len(arrivals) < 6700  # 6000 ± noise

    def test_arrivals_sorted_and_in_window(self):
        rng = random.Random(2)
        arrivals = list(poisson_arrivals(
            rng, 50.0, 10 * NS_PER_S, 20 * NS_PER_S, DiurnalProfile.flat()
        ))
        assert arrivals == sorted(arrivals)
        assert all(10 * NS_PER_S <= t < 20 * NS_PER_S for t in arrivals)

    def test_diurnal_shape_respected(self):
        rng = random.Random(3)
        profile = DiurnalProfile()
        # One hour of night vs one hour of evening at the same rate.
        night = len(list(poisson_arrivals(
            rng, 20.0, 3 * NS_PER_HOUR, 4 * NS_PER_HOUR, profile
        )))
        evening = len(list(poisson_arrivals(
            rng, 20.0, 19 * NS_PER_HOUR, 20 * NS_PER_HOUR, profile
        )))
        assert evening > 3 * night

    def test_expected_count_agrees_with_sampler(self):
        profile = DiurnalProfile()
        expectation = expected_count(30.0, 0, 6 * NS_PER_HOUR, profile)
        rng = random.Random(4)
        observed = len(list(poisson_arrivals(
            rng, 30.0, 0, 6 * NS_PER_HOUR, profile
        )))
        assert abs(observed - expectation) < expectation * 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            list(poisson_arrivals(random.Random(0), 0, 0, 10, DiurnalProfile.flat()))
        with pytest.raises(ValueError):
            list(poisson_arrivals(random.Random(0), 1, 10, 5, DiurnalProfile.flat()))
