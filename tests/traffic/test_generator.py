"""Traffic generator tests."""

import pytest

from repro.traffic.generator import GeneratorConfig, TrafficGenerator

NS_PER_S = 1_000_000_000


def _generator(**overrides):
    fields = dict(duration_ns=3 * NS_PER_S, mean_flows_per_s=30, seed=5)
    fields.update(overrides)
    config = GeneratorConfig(**fields)
    return TrafficGenerator(config=config, keep_specs=True)


class TestGenerator:
    def test_packet_stream_time_ordered(self):
        packets = _generator().packet_list()
        timestamps = [p.timestamp_ns for p in packets]
        assert timestamps == sorted(timestamps)
        assert len(packets) > 100

    def test_deterministic_by_seed(self):
        a = _generator(seed=9).packet_list()
        b = _generator(seed=9).packet_list()
        assert [p.data for p in a] == [p.data for p in b]
        assert [p.timestamp_ns for p in a] == [p.timestamp_ns for p in b]

    def test_different_seeds_differ(self):
        a = _generator(seed=1).packet_list()
        b = _generator(seed=2).packet_list()
        assert [p.data for p in a] != [p.data for p in b]

    def test_flow_rate_approximate(self):
        generator = _generator(duration_ns=10 * NS_PER_S, mean_flows_per_s=50)
        generator.packet_list()
        assert 380 < generator.flows_generated < 640

    def test_specs_within_duration(self):
        generator = _generator()
        generator.packet_list()
        for spec in generator.specs:
            assert 0 <= spec.start_ns < 3 * NS_PER_S

    def test_endpoints_resolve_in_plan(self):
        generator = _generator()
        generator.packet_list()
        plan = generator.plan
        for spec in generator.specs[:50]:
            assert plan.city_of(spec.client_ip) is not None
            assert plan.city_of(spec.server_ip) is not None

    def test_behaviour_fractions_zero_means_all_complete(self):
        generator = _generator(
            handshake_only_fraction=0.0, rst_fraction=0.0, syn_loss_fraction=0.0
        )
        generator.packet_list()
        assert all(spec.completes for spec in generator.specs)
        assert not any(spec.rst_after_synack for spec in generator.specs)

    def test_handshake_only_fraction_applied(self):
        generator = _generator(
            duration_ns=10 * NS_PER_S, mean_flows_per_s=60,
            handshake_only_fraction=0.5,
        )
        generator.packet_list()
        incomplete = sum(1 for s in generator.specs if not s.completes)
        fraction = incomplete / len(generator.specs)
        assert 0.4 < fraction < 0.6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(duration_ns=0).validate()
        with pytest.raises(ValueError):
            GeneratorConfig(mean_flows_per_s=0).validate()
        with pytest.raises(ValueError):
            GeneratorConfig(handshake_only_fraction=2.0).validate()
        with pytest.raises(ValueError):
            GeneratorConfig(tap_city="Nowhere").validate()
