"""Tap impairment tests, including pipeline robustness under them."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.net.packet import Packet
from repro.traffic.tap import TapImpairments

MS = 1_000_000


def _stream(count=1000):
    return [Packet(data=bytes([i % 256]) * 60, timestamp_ns=i * MS)
            for i in range(count)]


class TestImpairments:
    def test_identity_when_disabled(self):
        packets = _stream(100)
        out = list(TapImpairments().apply(packets))
        assert [p.data for p in out] == [p.data for p in packets]
        assert [p.timestamp_ns for p in out] == [p.timestamp_ns for p in packets]

    def test_loss_rate_approximate(self):
        out = list(TapImpairments(loss_rate=0.2, seed=1).apply(_stream(5000)))
        survived = len(out) / 5000
        assert 0.75 < survived < 0.85

    def test_duplication_rate_approximate(self):
        out = list(TapImpairments(duplicate_rate=0.1, seed=2).apply(_stream(5000)))
        assert 1.07 < len(out) / 5000 < 1.13

    def test_reorder_produces_order_by_jittered_stamp(self):
        out = list(TapImpairments(
            reorder_rate=0.3, reorder_jitter_ns=5 * MS, seed=3
        ).apply(_stream(1000)))
        stamps = [p.timestamp_ns for p in out]
        assert stamps == sorted(stamps)
        # Content order must differ from the original somewhere.
        original = [p.data for p in _stream(1000)]
        assert [p.data for p in out] != original

    def test_deterministic_by_seed(self):
        a = list(TapImpairments(loss_rate=0.1, seed=7).apply(_stream(500)))
        b = list(TapImpairments(loss_rate=0.1, seed=7).apply(_stream(500)))
        assert [p.data for p in a] == [p.data for p in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            TapImpairments(loss_rate=1.5)
        with pytest.raises(ValueError):
            TapImpairments(reorder_jitter_ns=-1)


class TestPipelineRobustness:
    """Measurement coverage degrades gracefully, never crashes."""

    def _measure(self, small_workload, impairments):
        generator, packets = small_workload
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=2))
        stats = pipeline.run_packets(impairments.apply(packets))
        completing = sum(
            1 for s in generator.specs
            if s.completes and not s.rst_after_synack
        )
        return stats, completing

    def test_capture_loss_costs_proportional_measurements(self, small_workload):
        stats, completing = self._measure(
            small_workload, TapImpairments(loss_rate=0.05, seed=11)
        )
        # Losing any 1 of a flow's 3 handshake frames loses the flow:
        # coverage ~ (1-p)^3 ≈ 86 %. Allow generous slack.
        assert 0.70 * completing < stats.measurements < completing

    def test_duplicates_do_not_double_count(self, small_workload):
        stats, completing = self._measure(
            small_workload, TapImpairments(duplicate_rate=0.3, seed=12)
        )
        # Duplicated SYN/SYN-ACK count as retransmits; duplicated ACKs
        # find no entry. Measurements never exceed real flows.
        assert stats.measurements <= completing
        assert stats.measurements > 0.95 * completing
        assert (
            stats.tracker.syn_retransmits + stats.tracker.synack_retransmits
        ) > 0

    def test_mild_reorder_tolerated(self, small_workload):
        # 200us jitter never reorders across a >=1ms handshake gap.
        stats, completing = self._measure(
            small_workload,
            TapImpairments(reorder_rate=0.3, reorder_jitter_ns=200_000, seed=13),
        )
        assert stats.measurements > 0.95 * completing

    def test_combined_impairments_never_crash(self, small_workload):
        stats, completing = self._measure(
            small_workload,
            TapImpairments(
                loss_rate=0.1, duplicate_rate=0.1, reorder_rate=0.2, seed=14
            ),
        )
        assert 0 < stats.measurements <= completing
