"""RTT distribution tests."""

import math
import random

import pytest

from repro.traffic.distributions import (
    LognormalMixture,
    empirical_summary,
    rtt_model_for_path,
)
from repro.geo.locations import city_by_name


class TestLognormalMixture:
    def test_samples_respect_floor(self):
        mixture = LognormalMixture.single(median_ms=10.0, floor_ms=8.0)
        rng = random.Random(1)
        assert all(mixture.sample(rng) >= 8.0 for _ in range(500))

    def test_single_median_close_to_target(self):
        mixture = LognormalMixture.single(median_ms=50.0, sigma=0.1)
        rng = random.Random(2)
        samples = sorted(mixture.sample(rng) for _ in range(2000))
        assert 47.0 < samples[1000] < 53.0

    def test_mixture_weights_drive_mode_frequency(self):
        mixture = LognormalMixture(
            components=(
                (0.9, math.log(10.0), 0.05),
                (0.1, math.log(100.0), 0.05),
            )
        )
        rng = random.Random(3)
        samples = [mixture.sample(rng) for _ in range(2000)]
        high_mode = sum(1 for s in samples if s > 50)
        assert 120 < high_mode < 280  # ~10%

    def test_median_ms_reports_dominant_mode(self):
        mixture = LognormalMixture(
            components=((0.9, math.log(20.0), 0.1), (0.1, math.log(99.0), 0.1))
        )
        assert mixture.median_ms() == pytest.approx(20.0)

    def test_deterministic_with_seed(self):
        mixture = LognormalMixture.single(25.0)
        a = [mixture.sample(random.Random(7)) for _ in range(10)]
        b = [mixture.sample(random.Random(7)) for _ in range(10)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalMixture(components=())
        with pytest.raises(ValueError):
            LognormalMixture(components=((0.0, 1.0, 0.1),))
        with pytest.raises(ValueError):
            LognormalMixture(components=((1.0, 1.0, 0.0),))
        with pytest.raises(ValueError):
            LognormalMixture.single(median_ms=0)


class TestPathModel:
    def test_auckland_la_median_realistic(self):
        akl = city_by_name("Auckland")
        la = city_by_name("Los Angeles")
        model = rtt_model_for_path(akl.lat, akl.lon, la.lat, la.lon)
        rng = random.Random(4)
        samples = sorted(model.sample(rng) for _ in range(2000))
        median = samples[1000]
        # Production Auckland-LA RTTs are ~130-180 ms.
        assert 110 < median < 220

    def test_local_path_floor(self):
        model = rtt_model_for_path(-36.85, 174.76, -36.85, 174.76)
        rng = random.Random(5)
        samples = [model.sample(rng) for _ in range(100)]
        assert all(sample >= 0.35 for sample in samples)
        assert min(samples) < 2.0

    def test_longer_path_higher_rtt(self):
        akl = city_by_name("Auckland")
        sydney = city_by_name("Sydney")
        london = city_by_name("London")
        rng = random.Random(6)
        near = rtt_model_for_path(akl.lat, akl.lon, sydney.lat, sydney.lon)
        far = rtt_model_for_path(akl.lat, akl.lon, london.lat, london.lon)
        near_median = sorted(near.sample(rng) for _ in range(500))[250]
        far_median = sorted(far.sample(rng) for _ in range(500))[250]
        assert far_median > near_median * 3


class TestSummary:
    def test_summary_fields(self):
        summary = empirical_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0
        assert summary["mean"] == 3.0
        assert summary["count"] == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_summary([])
