"""The FlowInjector extension point, exercised by a user-defined one.

Scenario injectors are the documented way to build new experiments;
this test writes one from scratch (a 'lossy peering' that adds SYN
loss to every flow toward one city) and checks the generator applies
it — proving the extension surface works beyond the built-ins.
"""

import random

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.traffic.flows import FlowSpec
from repro.traffic.generator import FlowInjector
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_S = 1_000_000_000


class LossyPeeringInjector(FlowInjector):
    """All flows toward one destination city suffer SYN loss (RTO)."""

    def __init__(self, plan, city_name: str):
        self.block_start = plan.block_start(plan.city_index(city_name))
        self.block_end = plan.block_end(plan.city_index(city_name))
        self.affected = 0

    def adjust(self, spec: FlowSpec, rng: random.Random) -> FlowSpec:
        if self.block_start <= spec.server_ip <= self.block_end:
            spec.syn_lost_beyond_tap = True
            self.affected += 1
        return spec


class TestCustomInjector:
    def test_custom_injector_applied(self):
        scenario = AucklandLaScenario(
            duration_ns=10 * NS_PER_S, mean_flows_per_s=40, seed=51,
            diurnal=False,
        )
        # Build once to get the plan, then rebuild with the injector.
        plan = scenario.build().plan
        injector = LossyPeeringInjector(plan, "Tokyo")
        generator = scenario.build(injectors=[injector], keep_specs=True)
        packets = generator.packet_list()
        assert injector.affected > 0

        pipeline = RuruPipeline(config=PipelineConfig(num_queues=2))
        pipeline.run_packets(packets)

        # Every measured Tokyo-bound flow carries the ~1s RTO penalty.
        tokyo_lo, tokyo_hi = injector.block_start, injector.block_end
        tokyo_records = [
            record for record in pipeline.measurements
            if tokyo_lo <= record.dst_ip <= tokyo_hi
        ]
        assert tokyo_records
        assert all(record.external_ms > 1000 for record in tokyo_records)
        others = [
            record for record in pipeline.measurements
            if not tokyo_lo <= record.dst_ip <= tokyo_hi
        ]
        # The injector must not leak onto other destinations.
        slow_others = sum(1 for r in others if r.external_ms > 1000)
        assert slow_others < 0.05 * len(others)

    def test_dropping_injector(self):
        class DropEverySecond(FlowInjector):
            def __init__(self):
                self.seen = 0

            def adjust(self, spec, rng):
                self.seen += 1
                return spec if self.seen % 2 else None

        injector = DropEverySecond()
        generator = AucklandLaScenario(
            duration_ns=5 * NS_PER_S, mean_flows_per_s=40, seed=52,
            diurnal=False,
        ).build(injectors=[injector], keep_specs=True)
        generator.packet_list()
        assert generator.flows_generated == (injector.seen + 1) // 2
