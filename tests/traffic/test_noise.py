"""Non-TCP noise generation and pipeline filtering tests."""

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.net.parser import PacketParser, ParseError
from repro.traffic.noise import NoiseGenerator, merge_streams

NS_PER_S = 1_000_000_000


class TestNoiseGenerator:
    def test_stream_ordered_and_nonempty(self):
        noise = NoiseGenerator(duration_ns=5 * NS_PER_S, seed=1)
        packets = list(noise.packets())
        assert len(packets) > 100
        stamps = [p.timestamp_ns for p in packets]
        assert stamps == sorted(stamps)

    def test_nothing_parses_as_tcp(self):
        parser = PacketParser()
        noise = NoiseGenerator(duration_ns=2 * NS_PER_S, seed=2)
        reasons = set()
        for packet in noise.packets():
            try:
                parser.parse(packet.data, packet.timestamp_ns)
                raise AssertionError("noise packet parsed as TCP")
            except ParseError as error:
                reasons.add(error.reason)
        assert "not-tcp" in reasons  # UDP and ICMP
        assert "not-ip" in reasons   # ARP

    def test_deterministic(self):
        a = list(NoiseGenerator(seed=3, duration_ns=NS_PER_S).packets())
        b = list(NoiseGenerator(seed=3, duration_ns=NS_PER_S).packets())
        assert [p.data for p in a] == [p.data for p in b]


class TestPipelineWithNoise:
    def test_noise_dropped_measurement_unaffected(self, small_workload):
        generator, tcp_packets = small_workload
        noise = NoiseGenerator(
            plan=generator.plan, duration_ns=5 * NS_PER_S, seed=4,
            udp_rate_per_s=100, icmp_rate_per_s=10,
        )
        merged = list(merge_streams(iter(tcp_packets), noise.packets()))
        assert len(merged) > len(tcp_packets)

        clean = RuruPipeline(config=PipelineConfig(num_queues=2))
        clean_stats = clean.run_packets(tcp_packets)
        noisy = RuruPipeline(config=PipelineConfig(num_queues=2))
        noisy_stats = noisy.run_packets(merged)

        # Identical measurements, with the noise counted as drops.
        assert noisy_stats.measurements == clean_stats.measurements
        assert noisy_stats.parse_errors == len(merged) - len(tcp_packets)
        assert noisy_stats.parse_error_reasons.get("not-tcp", 0) > 0
        assert noisy_stats.parse_error_reasons.get("not-ip", 0) > 0

    def test_merge_preserves_order(self, small_workload):
        _, tcp_packets = small_workload
        noise = NoiseGenerator(duration_ns=5 * NS_PER_S, seed=5)
        merged = list(merge_streams(iter(tcp_packets), noise.packets()))
        stamps = [p.timestamp_ns for p in merged]
        assert stamps == sorted(stamps)
