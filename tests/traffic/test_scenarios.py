"""Scenario and injector tests."""

import random

from repro.traffic.flows import FlowSpec
from repro.traffic.scenarios import (
    AucklandLaScenario,
    ConnectionSurgeInjector,
    FirewallGlitchInjector,
    SynFloodInjector,
)

NS_PER_S = 1_000_000_000
NS_PER_HOUR = 3600 * NS_PER_S


def _spec(start_ns):
    return FlowSpec(
        start_ns=start_ns, client_ip=1, server_ip=2,
        client_port=1000, server_port=443,
        internal_rtt_ms=10, external_rtt_ms=100, server_delay_ms=1.0,
    )


class TestAucklandLaScenario:
    def test_build_produces_generator(self):
        generator = AucklandLaScenario(
            duration_ns=2 * NS_PER_S, mean_flows_per_s=20, diurnal=False
        ).build()
        packets = generator.packet_list()
        assert packets
        assert generator.config.tap_city == "Auckland"

    def test_diurnal_toggle(self):
        flat = AucklandLaScenario(diurnal=False).build()
        shaped = AucklandLaScenario(diurnal=True).build()
        assert len(set(flat.config.profile.hourly)) == 1
        assert len(set(shaped.config.profile.hourly)) > 1


class TestFirewallGlitch:
    def test_window_membership(self):
        injector = FirewallGlitchInjector(
            window_start_offset_ns=3 * NS_PER_HOUR, window_ns=60 * NS_PER_S
        )
        assert injector.in_window(3 * NS_PER_HOUR)
        assert injector.in_window(3 * NS_PER_HOUR + 59 * NS_PER_S)
        assert not injector.in_window(3 * NS_PER_HOUR + 60 * NS_PER_S)
        assert not injector.in_window(2 * NS_PER_HOUR)

    def test_nightly_repetition(self):
        injector = FirewallGlitchInjector(window_start_offset_ns=3 * NS_PER_HOUR)
        day = 24 * NS_PER_HOUR
        assert injector.in_window(day + 3 * NS_PER_HOUR + NS_PER_S)
        assert injector.in_window(5 * day + 3 * NS_PER_HOUR)

    def test_adds_4000ms_in_window(self):
        injector = FirewallGlitchInjector(
            window_start_offset_ns=0, window_ns=10 * NS_PER_S
        )
        rng = random.Random(1)
        affected = injector.adjust(_spec(5 * NS_PER_S), rng)
        assert affected.server_delay_ms == 4001.0
        unaffected = injector.adjust(_spec(20 * NS_PER_S), rng)
        assert unaffected.server_delay_ms == 1.0
        assert injector.affected_flows == 1


class TestSynFlood:
    def test_flood_flows_never_complete(self):
        injector = SynFloodInjector(
            flood_start_ns=0, flood_duration_ns=NS_PER_S, rate_per_s=100
        )
        flows = list(injector.extra_flows(random.Random(2)))
        assert len(flows) == 100
        assert all(not flow.completes for flow in flows)
        assert all(flow.server_port == 443 for flow in flows)
        targets = {flow.server_ip for flow in flows}
        assert len(targets) == 1  # one victim

    def test_flood_in_window(self):
        injector = SynFloodInjector(
            flood_start_ns=5 * NS_PER_S, flood_duration_ns=2 * NS_PER_S,
            rate_per_s=50,
        )
        flows = list(injector.extra_flows(random.Random(3)))
        assert all(
            5 * NS_PER_S <= flow.start_ns < 7 * NS_PER_S for flow in flows
        )

    def test_sources_spoofed(self):
        injector = SynFloodInjector(rate_per_s=200, flood_duration_ns=NS_PER_S)
        flows = list(injector.extra_flows(random.Random(4)))
        sources = {flow.client_ip for flow in flows}
        assert len(sources) > 150  # nearly all distinct


class TestConnectionSurge:
    def test_surge_flows_complete_between_pair(self, plan):
        injector = ConnectionSurgeInjector(
            src_city="Wellington", dst_city="Los Angeles",
            surge_start_ns=0, surge_duration_ns=NS_PER_S, rate_per_s=40,
        )
        flows = list(injector.extra_flows(random.Random(5)))
        assert len(flows) == 40
        for flow in flows:
            assert flow.completes
            assert plan.city_of(flow.client_ip).name == "Wellington"
            assert plan.city_of(flow.server_ip).name == "Los Angeles"

    def test_integration_with_generator(self):
        surge = ConnectionSurgeInjector(
            surge_start_ns=0, surge_duration_ns=NS_PER_S, rate_per_s=30
        )
        generator = AucklandLaScenario(
            duration_ns=2 * NS_PER_S, mean_flows_per_s=10, diurnal=False
        ).build(injectors=[surge], keep_specs=True)
        generator.packet_list()
        assert surge.flows_injected == 30
        assert generator.flows_generated > 30
