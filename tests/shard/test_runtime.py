"""End-to-end sharded runs: conservation, equivalence, chaos, recovery.

Every test here forks real worker processes and ends by checking the
global ledger ``ingested == processed + dropped + deadlettered + shed
+ lost_at_crash`` — the invariant a crash may bend the *terms* of but
never the *sum*.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.mq.codec import decode_latency_record, encode_latency_record
from repro.shard.runtime import ShardedRuntime
from repro.traffic.generator import GeneratorConfig, TrafficGenerator

NS_PER_S = 1_000_000_000


@pytest.fixture(scope="module")
def packets():
    config = GeneratorConfig(
        duration_ns=3 * NS_PER_S, mean_flows_per_s=40, seed=11
    )
    return TrafficGenerator(config=config).packet_list()


def run_sharded(packets, num_shards=2, batch_size=64, **kwargs):
    runtime = ShardedRuntime(num_shards, PipelineConfig(), **kwargs)
    try:
        return runtime.run(packets, batch_size=batch_size)
    finally:
        runtime.close()


class TestCleanRun:
    def test_clean_run_conserves_and_reconciles(self, packets):
        records = []
        report = run_sharded(packets, record_sink=records.append)
        assert report.ok, report.failed_checks()
        ledger = report.ledger
        assert ledger.ingested == len(packets)
        assert ledger.processed == len(packets)
        assert (
            ledger.dropped
            == ledger.deadlettered
            == ledger.shed
            == ledger.lost_at_crash
            == 0
        )
        assert report.restarts == 0
        assert set(report.states.values()) == {"drained"}
        assert report.records["emitted"] == len(records) > 0
        assert report.records["delivered"] == report.records["emitted"]

    def test_rss_spreads_work_across_shards(self, packets):
        report = run_sharded(packets, num_shards=2)
        dispatched = [
            report.shards[name]["dispatched"]
            for name in ("shard-0", "shard-1")
        ]
        assert all(d > 0 for d in dispatched)

    def test_record_multiset_matches_single_process_pipeline(self, packets):
        """The tentpole equivalence: sharding across OS processes is
        pure mechanism — it must not change a single measurement."""
        sharded = []
        report = run_sharded(
            packets, num_shards=2, record_sink=sharded.append
        )
        assert report.ok

        pipeline = RuruPipeline(PipelineConfig(num_queues=2))
        pipeline.run_packets(packets)
        single = [
            encode_latency_record(r) for r in pipeline.measurements
        ]
        assert len(sharded) == len(single) > 0
        assert sorted(sharded) == sorted(single)

    def test_records_carry_their_shard_queue_id(self, packets):
        records = []
        report = run_sharded(
            packets, num_shards=2, record_sink=records.append
        )
        assert report.ok
        queues = {decode_latency_record(r).queue_id for r in records}
        assert queues == {0, 1}


class TestChaos:
    def test_scheduled_kill_recovers_with_exact_books(
        self, packets, tmp_path
    ):
        """SIGKILL one shard mid-run with durability on: the shard
        restarts from checkpoint + WAL, rejoins, and every ledger —
        global, parent per-shard, and the child's own — balances."""
        runtime = ShardedRuntime(
            2,
            PipelineConfig(),
            state_dir=str(tmp_path),
            checkpoint_every_batches=4,
        )
        runtime.schedule_kill(1, at_seq=6)
        try:
            report = runtime.run(packets, batch_size=64)
        finally:
            runtime.close()
        assert report.ok, report.failed_checks()
        victim = report.shards["shard-1"]
        assert victim["restarts"] == 1
        assert victim["lost_at_crash"] > 0
        assert "scheduled-kill" in victim["causes"]
        assert report.ledger.lost_at_crash == victim["lost_at_crash"]
        # Durability made reconciliation exact despite the crash.
        child = report.child_ledgers["shard-1"]
        assert child["packets_processed"] == victim["acked"]

    def test_protect_handshakes_sheds_payload_with_attribution(
        self, packets
    ):
        runtime = ShardedRuntime(2, PipelineConfig(), restart_delay_batches=3)
        runtime.schedule_kill(0, at_seq=3)
        try:
            report = runtime.run(packets, batch_size=64)
        finally:
            runtime.close()
        assert report.ok, report.failed_checks()
        assert report.rerouted_packets > 0  # handshakes kept alive
        assert sum(report.shed_by_class.values()) == report.ledger.shed
        assert report.shed_by_class.get("handshake", 0) == 0

    def test_reroute_all_never_sheds_while_a_shard_lives(self, packets):
        runtime = ShardedRuntime(
            2,
            PipelineConfig(),
            policy="reroute-all",
            restart_delay_batches=3,
        )
        runtime.schedule_kill(0, at_seq=3)
        try:
            report = runtime.run(packets, batch_size=64)
        finally:
            runtime.close()
        assert report.ok, report.failed_checks()
        assert report.ledger.shed == 0
        assert report.rerouted_packets > 0

    def test_budget_exhaustion_degrades_but_still_balances(self, packets):
        """Two kills against a budget of one: the shard is failed
        forever, its traffic reroutes for the rest of the run, and the
        books still close."""
        runtime = ShardedRuntime(
            2,
            PipelineConfig(),
            max_restarts_per_shard=1,
            policy="reroute-all",
        )
        runtime.schedule_kill(1, at_seq=3)
        try:
            runtime.start()
            batch, fed = [], 0
            iterator = iter(packets)
            for packet in iterator:
                batch.append(packet)
                if len(batch) == 64:
                    runtime.offer(batch)
                    batch, fed = [], fed + 64
                    if runtime.supervisor.handles[1].restarts == 1:
                        break
            runtime.schedule_kill(1, at_seq=runtime.supervisor.handles[1].next_seq + 1)
            for packet in iterator:
                batch.append(packet)
                if len(batch) == 64:
                    runtime.offer(batch)
                    batch = []
            if batch:
                runtime.offer(batch)
            report = runtime.drain()
        finally:
            runtime.close()
        assert report.ledger.ok, str(report.ledger)
        assert report.states["shard-1"] == "failed"
        assert report.restarts == 1

    def test_wallclock_mode_declares_by_heartbeat_deadline(self, packets):
        """Kill a shard under wall-clock supervision: only the victim
        is declared, with the heartbeat-deadline cause."""
        runtime = ShardedRuntime(
            2,
            PipelineConfig(),
            heartbeat_deadline_ms=150.0,
            heartbeat_interval_ms=10.0,
        )
        killed = False
        try:
            runtime.start()
            batch = []
            for packet in packets:
                batch.append(packet)
                if len(batch) == 64:
                    runtime.offer(batch)
                    batch = []
                    if not killed and runtime._round >= 3:
                        runtime.kill_shard(1)
                        killed = True
            if batch:
                runtime.offer(batch)
            report = runtime.drain()
        finally:
            runtime.close()
        assert report.ledger.ok, str(report.ledger)
        victim = report.shards["shard-1"]
        assert victim["causes"], "the kill was never declared"
        assert all(
            c in ("heartbeat-deadline", "transport-eof")
            for c in victim["causes"]
        )
        assert report.shards["shard-0"]["causes"] == []


class TestAnalyticsPlacement:
    def _make_analytics(self):
        from repro.stack import build_shard_analytics

        return build_shard_analytics(num_workers=2)

    def test_analytics_process_shard_enriches_records(self, packets):
        report = run_sharded(
            packets[:600],
            analytics="process",
            make_analytics=self._make_analytics(),
        )
        assert report.ok, report.failed_checks()
        summary = report.child_ledgers["shard-analytics"]
        assert summary["records_ingested"] == report.records["emitted"] > 0
        assert summary["enriched"] == summary["records_ingested"]

    def test_analytics_parent_placement_enriches_in_process(self, packets):
        report = run_sharded(
            packets[:600],
            analytics="parent",
            make_analytics=self._make_analytics(),
        )
        assert report.ok, report.failed_checks()
        assert report.analytics["enriched"] == report.records["emitted"] > 0


class TestGuards:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ShardedRuntime(2, policy="coin-flip")

    def test_process_analytics_requires_a_factory(self):
        with pytest.raises(ValueError):
            ShardedRuntime(2, analytics="process")

    def test_double_drain_rejected(self, packets):
        runtime = ShardedRuntime(1, PipelineConfig())
        try:
            runtime.run(packets[:64])
            with pytest.raises(RuntimeError):
                runtime.drain()
        finally:
            runtime.close()
