"""Heartbeats and the deadline failure detector."""

import pytest

from repro.mq.frames import Message
from repro.shard.heartbeat import (
    FailureDetector,
    HeartbeatError,
    decode_heartbeat,
    encode_heartbeat,
)


class TestCodec:
    def test_round_trip(self):
        message = encode_heartbeat(3, 17, now_ns=123456789)
        assert decode_heartbeat(message) == (3, 17, 123456789)

    def test_default_stamp_is_monotonic(self):
        _, _, sent = decode_heartbeat(encode_heartbeat(0, 0))
        assert sent > 0

    def test_wrong_topic_rejected(self):
        with pytest.raises(HeartbeatError):
            decode_heartbeat(Message([b"ack", b"x" * 20]))

    def test_malformed_payload_rejected(self):
        with pytest.raises(HeartbeatError):
            decode_heartbeat(Message([b"hb", b"short"]))


class TestFailureDetector:
    def test_expires_after_silence(self):
        detector = FailureDetector(deadline_ns=100)
        detector.watch(0, now_ns=1_000)
        detector.watch(1, now_ns=1_000)
        detector.observe(1, sent_ns=1_050, received_ns=1_060)
        assert detector.expired(now_ns=1_101) == [0]
        assert detector.expired(now_ns=1_160) == [0]
        assert detector.expired(now_ns=1_161) == [0, 1]

    def test_watch_starts_the_lease_at_spawn(self):
        """A shard that never says hello still expires one deadline
        after spawn — silence from birth is also a failure."""
        detector = FailureDetector(deadline_ns=50)
        detector.watch(7, now_ns=0)
        assert detector.expired(now_ns=51) == [7]

    def test_observe_resets_the_lease_and_reports_latency(self):
        detector = FailureDetector(deadline_ns=100)
        detector.watch(0, now_ns=0)
        latency = detector.observe(0, sent_ns=90, received_ns=95)
        assert latency == 5
        assert detector.last_latency_ns(0) == 5
        assert detector.expired(now_ns=100) == []

    def test_forget_stops_watching(self):
        detector = FailureDetector(deadline_ns=10)
        detector.watch(0, now_ns=0)
        detector.forget(0)
        assert detector.expired(now_ns=1_000) == []

    def test_disabled_detector_never_expires(self):
        detector = FailureDetector(deadline_ns=None)
        assert not detector.enabled
        detector.watch(0, now_ns=0)
        assert detector.expired(now_ns=10**18) == []

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError):
            FailureDetector(deadline_ns=0)
