"""Placement derivation: the topology decides who runs where."""

import pytest

from repro.shard.placement import (
    ANALYTICS_PLACEMENTS,
    PlacementError,
    derive_placement,
)
from repro.stack.topology import stage_names


class TestDerivePlacement:
    def test_parent_keeps_admission_and_router(self):
        plan = derive_placement(4)
        assert plan.parent.stages == ("overload", "nic")

    def test_one_worker_process_per_queue(self):
        plan = derive_placement(4)
        workers = [s for s in plan.shards if "workers" in s.stages]
        assert len(workers) == 4
        assert [w.queue_id for w in workers] == [0, 1, 2, 3]
        assert [w.shard_id for w in workers] == [0, 1, 2, 3]

    def test_mq_is_an_edge_not_a_process(self):
        plan = derive_placement(2)
        for spec in (plan.parent, *plan.shards):
            assert "mq" not in spec.stages
        assert all(edge.stage == "mq" for edge in plan.edges)
        assert len(plan.edges) == 2

    def test_analytics_none_omits_the_tail(self):
        plan = derive_placement(2, analytics="none")
        hosted = set(plan.parent.stages)
        for spec in plan.shards:
            hosted.update(spec.stages)
        assert "analytics" not in hosted
        assert plan.analytics_shard is None

    def test_analytics_parent_moves_tail_into_parent(self):
        plan = derive_placement(2, analytics="parent")
        assert "analytics" in plan.parent.stages
        assert plan.analytics_shard is None

    def test_analytics_process_adds_one_shard_and_edge(self):
        plan = derive_placement(2, analytics="process")
        spec = plan.analytics_shard
        assert spec is not None
        assert spec.name == "shard-analytics"
        assert spec.shard_id == 2
        assert "analytics" in spec.stages
        assert len(plan.edges) == 3
        assert plan.num_worker_shards == 2

    def test_every_topology_stage_is_placed_or_an_edge(self):
        plan = derive_placement(3, analytics="process")
        placed = set(plan.parent.stages)
        for spec in plan.shards:
            placed.update(spec.stages)
        placed.update(edge.stage for edge in plan.edges)
        assert placed == set(stage_names())

    def test_describe_mentions_every_process(self):
        text = derive_placement(2, analytics="process").describe()
        for name in ("parent", "shard-0", "shard-1", "shard-analytics"):
            assert name in text

    def test_zero_shards_rejected(self):
        with pytest.raises(PlacementError):
            derive_placement(0)

    def test_unknown_analytics_placement_rejected(self):
        with pytest.raises(PlacementError):
            derive_placement(2, analytics="moon")
        assert "moon" not in ANALYTICS_PLACEMENTS
