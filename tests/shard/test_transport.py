"""Transports over real fds: framing, EOF, partial writes, deadlock."""

import os
import signal

import pytest

from repro.mq.frames import Message
from repro.shard.transport import (
    Transport,
    TransportClosed,
    TransportError,
    loopback_pair,
    make_fd_pair,
    pipe_pair,
    socketpair_pair,
)


def msg(*frames: bytes) -> Message:
    return Message(list(frames))


class TestLoopback:
    def test_send_recv_round_trip_both_kinds(self):
        a, b = loopback_pair()
        a.send(msg(b"topic", b"payload"))
        received = b.recv(timeout=1.0)
        assert received.frames == (b"topic", b"payload")
        b.send(msg(b"reply"))
        assert a.recv(timeout=1.0).frames == (b"reply",)
        a.close()
        b.close()

    def test_recv_timeout_returns_none(self):
        a, b = loopback_pair()
        assert b.recv(timeout=0.0) is None
        a.close()
        b.close()

    def test_recv_all_drains_in_order(self):
        a, b = loopback_pair()
        for i in range(5):
            a.send(msg(b"t", bytes([i])))
        out = b.recv_all()
        assert [m.frames[1] for m in out] == [bytes([i]) for i in range(5)]
        a.close()
        b.close()

    def test_eof_raises_transport_closed_once_inbox_empties(self):
        a, b = loopback_pair()
        a.send(msg(b"last"))
        a.close()
        assert b.recv(timeout=1.0).frames == (b"last",)
        with pytest.raises(TransportClosed):
            b.recv(timeout=1.0)
        b.close()

    def test_send_to_dead_peer_raises_closed(self):
        a, b = loopback_pair()
        b.close()
        with pytest.raises(TransportClosed):
            # A socketpair may absorb a buffer's worth first; keep
            # writing until the kernel reports the peer is gone.
            for _ in range(64):
                a.send(msg(b"x" * 65536))
        a.close()

    def test_send_stall_times_out_instead_of_hanging(self):
        a, b = loopback_pair()
        big = msg(b"x" * (1 << 22))  # 4 MiB >> socket buffers
        with pytest.raises(TransportError):
            a.send(big, timeout=0.2)
        a.close()
        b.close()

    def test_pump_latches_eof_without_raising(self):
        a, b = loopback_pair()
        a.close()
        b.pump()
        assert b.eof
        b.close()


class TestTornTail:
    def test_torn_tail_from_killed_writer_stays_buffered(self):
        """A peer SIGKILLed mid-message must not poison the reader."""
        a, b = loopback_pair()
        blob = bytes(memoryview(bytearray(1024)))
        # Write a complete message then a torn prefix of another, raw.
        from repro.shard.wire import encode_message

        encoded = encode_message(msg(b"whole", blob))
        torn = encode_message(msg(b"torn", blob))[:-7]
        os.write(a.fileno(), encoded + torn)
        a.close()
        assert b.recv(timeout=1.0).frames[0] == b"whole"
        with pytest.raises(TransportClosed):
            b.recv(timeout=1.0)  # torn tail never surfaces as a message
        b.close()


class TestFdPairs:
    @pytest.mark.parametrize("kind", ["pipe", "socketpair"])
    def test_cross_process_round_trip(self, kind):
        pair = make_fd_pair(kind)
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                child = pair.adopt_child()
                message = child.recv(timeout=5.0)
                child.send(msg(b"echo", *message.frames))
                child.close()
                code = 0
            finally:
                os._exit(code)
        parent = pair.adopt_parent()
        parent.send(msg(b"ping", b"data"))
        reply = parent.recv(timeout=5.0)
        assert reply.frames == (b"echo", b"ping", b"data")
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        parent.close()

    @pytest.mark.parametrize("kind", ["pipe", "socketpair"])
    def test_child_sigkill_produces_eof(self, kind):
        pair = make_fd_pair(kind)
        pid = os.fork()
        if pid == 0:
            pair.adopt_child()
            signal.pause()
            os._exit(0)
        parent = pair.adopt_parent()
        os.kill(pid, signal.SIGKILL)
        os.waitpid(pid, 0)
        with pytest.raises(TransportClosed):
            while True:
                if parent.recv(timeout=5.0) is None:
                    pytest.fail("no EOF after child SIGKILL")
        parent.close()

    def test_large_message_survives_partial_writes(self):
        """A message far beyond the pipe buffer crosses intact because
        send loops over short writes while the child drains."""
        pair = pipe_pair()
        payload = os.urandom(1 << 20)  # 1 MiB >> 64 KiB pipe buffer
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                child = pair.adopt_child()
                message = child.recv(timeout=10.0)
                ok = message.frames[1] == payload
                child.send(msg(b"ok" if ok else b"bad"))
                code = 0
            finally:
                os._exit(code)
        parent = pair.adopt_parent()
        parent.send(msg(b"big", payload), timeout=10.0)
        assert parent.recv(timeout=10.0).frames[0] == b"ok"
        os.waitpid(pid, 0)
        parent.close()

    def test_bidirectional_flood_does_not_deadlock(self):
        """Both sides writing more than the pipe holds: send's
        drain-while-blocked loop must break the write-write cycle."""
        pair = socketpair_pair()
        chunk = os.urandom(1 << 18)  # 256 KiB each way
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                child = pair.adopt_child()
                child.send(msg(b"flood", chunk), timeout=10.0)
                message = child.recv(timeout=10.0)
                assert message.frames[1] == chunk
                code = 0
            finally:
                os._exit(code)
        parent = pair.adopt_parent()
        parent.send(msg(b"flood", chunk), timeout=10.0)
        reply = parent.recv(timeout=10.0)
        assert reply.frames[1] == chunk
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        parent.close()
