"""Shard supervision: spawn, crash containment, restart, drain.

These tests fork real processes; the entry functions below are tiny
state machines standing in for the full worker body so each property
(heartbeats, restore delivery, crashes) can be exercised in isolation.
"""

import os
import signal

import pytest

from repro.resilience import RestartBudget
from repro.shard import protocol
from repro.shard.heartbeat import FailureDetector, encode_heartbeat
from repro.shard.placement import derive_placement
from repro.shard.supervisor import (
    SHARD_DOWN,
    SHARD_DRAINED,
    SHARD_FAILED,
    SHARD_UP,
    ShardSupervisor,
)
from repro.shard.transport import TransportClosed


def _obedient_entry(shard_id, transport):
    """Replies to drain; echoes a heartbeat or its restore on request."""
    restored = None
    while True:
        try:
            message = transport.recv(timeout=10.0)
        except TransportClosed:
            return 0
        if message is None:
            return 1  # silence from the parent is a test bug
        topic = message.topic
        if topic == protocol.RESTORE_TOPIC:
            restored = protocol.decode_json(message)
        elif topic == b"hb-now":
            transport.send(encode_heartbeat(shard_id, 1))
        elif topic == protocol.DRAIN_TOPIC:
            transport.send(
                protocol.encode_json(
                    protocol.DRAINED_TOPIC,
                    {"shard_id": shard_id, "restored": restored},
                )
            )
            return 0


def _make_supervisor(num_shards=2, **kwargs):
    plan = derive_placement(num_shards)
    return ShardSupervisor(plan.shards, _obedient_entry, **kwargs)


def _drain_all(supervisor):
    for handle in supervisor.handles.values():
        supervisor.drain_shard(handle, timeout_s=10.0)


class TestSpawnAndDrain:
    def test_start_spawns_one_live_process_per_spec(self):
        supervisor = _make_supervisor(3)
        try:
            supervisor.start()
            assert supervisor.states() == {
                "shard-0": SHARD_UP,
                "shard-1": SHARD_UP,
                "shard-2": SHARD_UP,
            }
            pids = {h.pid for h in supervisor.handles.values()}
            assert len(pids) == 3 and None not in pids
            assert os.getpid() not in pids
        finally:
            _drain_all(supervisor)
            supervisor.shutdown()

    def test_drain_handshake_returns_the_child_payload(self):
        supervisor = _make_supervisor(2)
        supervisor.start()
        try:
            handle = supervisor.handles[1]
            payload = supervisor.drain_shard(handle, timeout_s=10.0)
            assert payload is not None and payload["shard_id"] == 1
            assert handle.state == SHARD_DRAINED
            assert handle.transport is None and handle.pid is None
        finally:
            _drain_all(supervisor)
            supervisor.shutdown()

    def test_heartbeats_feed_the_detector(self):
        detector = FailureDetector(deadline_ns=60_000_000_000)
        supervisor = _make_supervisor(1, detector=detector)
        supervisor.start()
        try:
            from repro.mq.frames import Message

            handle = supervisor.handles[0]
            handle.transport.send(Message([b"hb-now"]))
            message = handle.transport.recv(timeout=10.0)
            assert supervisor.handle_control_message(handle, message)
            assert supervisor.heartbeats_seen == 1
            assert detector.last_latency_ns(0) is not None
        finally:
            _drain_all(supervisor)
            supervisor.shutdown()


class TestCrashContainment:
    def test_sigkill_is_contained_and_charged_to_the_crash(self):
        """A SIGKILLed shard never takes the parent down: the death is
        observed as EOF, declared, and its inflight charged as lost."""
        supervisor = _make_supervisor(2)
        supervisor.start()
        try:
            victim = supervisor.handles[0]
            victim.inflight = {7: 42}  # pretend a batch was in flight
            supervisor.kill(0, signal.SIGKILL)
            lost = supervisor.declare_down(0, cause="chaos")
            assert lost == 42
            assert victim.lost_at_crash == 42
            assert victim.inflight == {}
            assert victim.state == SHARD_DOWN
            assert victim.causes == ["chaos"]
            # The sibling is untouched.
            assert supervisor.handles[1].state == SHARD_UP
        finally:
            _drain_all(supervisor)
            supervisor.shutdown()

    def test_declare_down_drains_predeath_control_messages(self):
        """A heartbeat already in the pipe when the shard dies still
        counts — work that escaped the crash is not lost."""
        supervisor = _make_supervisor(1)
        supervisor.start()
        try:
            from repro.mq.frames import Message

            handle = supervisor.handles[0]
            handle.transport.send(Message([b"hb-now"]))
            # Give the child time to reply, then kill it.
            import time

            deadline = time.monotonic() + 5.0
            while not handle.transport.pump():
                if time.monotonic() > deadline:
                    pytest.fail("child never replied")
                time.sleep(0.01)
            supervisor.kill(0)
            supervisor.declare_down(0, cause="chaos")
            assert supervisor.heartbeats_seen == 1
        finally:
            supervisor.shutdown()

    def test_declare_down_is_idempotent(self):
        supervisor = _make_supervisor(1)
        supervisor.start()
        try:
            supervisor.kill(0)
            supervisor.declare_down(0, cause="first")
            assert supervisor.declare_down(0, cause="second") == 0
            assert supervisor.handles[0].causes == ["first"]
        finally:
            supervisor.shutdown()


class TestRestart:
    def test_restart_respawns_and_delivers_the_restore_payload(self):
        supervisor = _make_supervisor(1)
        supervisor.start()
        try:
            old_pid = supervisor.handles[0].pid
            supervisor.kill(0)
            supervisor.declare_down(0, cause="chaos")
            assert supervisor.restart(0, {"state": {"last_seq": 9}})
            handle = supervisor.handles[0]
            assert handle.state == SHARD_UP
            assert handle.pid != old_pid
            assert handle.restarts == 1
            assert supervisor.total_restarts == 1
            payload = supervisor.drain_shard(handle, timeout_s=10.0)
            assert payload["restored"] == {"state": {"last_seq": 9}}
        finally:
            _drain_all(supervisor)
            supervisor.shutdown()

    def test_restart_in_wrong_state_raises(self):
        supervisor = _make_supervisor(1)
        supervisor.start()
        try:
            with pytest.raises(RuntimeError):
                supervisor.restart(0)
        finally:
            _drain_all(supervisor)
            supervisor.shutdown()

    def test_budget_exhaustion_marks_the_shard_failed_forever(self):
        supervisor = _make_supervisor(
            1, restart_budget=RestartBudget(max_restarts=1)
        )
        supervisor.start()
        try:
            supervisor.kill(0)
            supervisor.declare_down(0, cause="chaos-1")
            assert supervisor.restart(0) is True
            supervisor.kill(0)
            supervisor.declare_down(0, cause="chaos-2")
            assert supervisor.restart(0) is False
            assert supervisor.handles[0].state == SHARD_FAILED
            assert supervisor.budget.exhausted("shard-0")
        finally:
            supervisor.shutdown()


class TestObservability:
    def test_bind_registry_exports_liveness_and_crash_counters(self):
        from repro.obs.registry import MetricsRegistry

        supervisor = _make_supervisor(2)
        supervisor.start()
        try:
            registry = MetricsRegistry()
            supervisor.bind_registry(registry)
            supervisor.kill(0)
            supervisor.declare_down(0, cause="chaos")
            snap = registry.snapshot()
            up = {
                s["labels"]["shard"]: s["value"]
                for s in snap["ruru_shard_up"]["samples"]
            }
            assert up == {"shard-0": 0, "shard-1": 1}
            lost = {
                s["labels"]["shard"]: s["value"]
                for s in snap["ruru_shard_lost_at_crash_total"]["samples"]
            }
            assert lost["shard-0"] == 0  # nothing was in flight
        finally:
            _drain_all(supervisor)
            supervisor.shutdown()
