"""The wire framing: exact round-trips, and fuzzed failure discipline.

The contract under test mirrors the codec fuzz suite one layer down:
for *any* fragmentation of valid messages the decoder yields exactly
those messages in order; for torn reads, short writes, truncated
length headers and arbitrary garbage it either waits for more bytes
or raises :class:`FrameDecodeError` — it never hangs, never yields a
wrong message, never silently desynchronizes, and never leaks
``struct.error``/``IndexError``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mq.frames import Message
from repro.shard.wire import (
    MAX_FRAMES,
    MAX_FRAME_BYTES,
    FrameDecodeError,
    StreamDecoder,
    encode_message,
)


def msg(*frames: bytes) -> Message:
    return Message(list(frames))


class TestRoundTrip:
    def test_single_message_round_trips(self):
        decoder = StreamDecoder()
        out = decoder.feed(encode_message(msg(b"topic", b"payload")))
        assert [m.frames for m in out] == [(b"topic", b"payload")]

    def test_many_messages_in_one_feed(self):
        blob = b"".join(
            encode_message(msg(b"t", bytes([i]))) for i in range(10)
        )
        out = StreamDecoder().feed(blob)
        assert [m.frames[1] for m in out] == [bytes([i]) for i in range(10)]

    def test_empty_frames_are_preserved(self):
        out = StreamDecoder().feed(encode_message(msg(b"", b"", b"x")))
        assert out[0].frames == (b"", b"", b"x")

    def test_byte_at_a_time_torn_reads(self):
        blob = encode_message(msg(b"topic", b"some payload bytes"))
        decoder = StreamDecoder()
        seen = []
        for i in range(len(blob)):
            seen.extend(decoder.feed(blob[i : i + 1]))
        assert len(seen) == 1
        assert seen[0].frames == (b"topic", b"some payload bytes")
        decoder.check_eof()  # no torn tail

    def test_counters(self):
        blob = encode_message(msg(b"a")) + encode_message(msg(b"b"))
        decoder = StreamDecoder()
        decoder.feed(blob)
        assert decoder.messages_decoded == 2
        assert decoder.bytes_consumed == len(blob)


class TestFailureDiscipline:
    def test_bad_magic_raises(self):
        with pytest.raises(FrameDecodeError):
            StreamDecoder().feed(b"XX" + b"\x00" * 16)

    def test_bad_version_raises(self):
        blob = bytearray(encode_message(msg(b"x")))
        blob[2] = 99
        with pytest.raises(FrameDecodeError):
            StreamDecoder().feed(bytes(blob))

    def test_zero_frames_raises(self):
        import struct

        header = struct.pack("!2sBH", b"RW", 1, 0)
        with pytest.raises(FrameDecodeError):
            StreamDecoder().feed(header)

    def test_oversized_frame_length_raises(self):
        import struct

        header = struct.pack("!2sBH", b"RW", 1, 1)
        lengths = struct.pack("!I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameDecodeError):
            StreamDecoder().feed(header + lengths)

    def test_encode_rejects_too_many_frames(self):
        with pytest.raises(FrameDecodeError):
            encode_message(Message([b"x"] * (MAX_FRAMES + 1)))

    def test_truncated_tail_is_an_eof_error_not_a_hang(self):
        blob = encode_message(msg(b"topic", b"payload"))
        decoder = StreamDecoder()
        assert decoder.feed(blob[:-3]) == []
        with pytest.raises(FrameDecodeError):
            decoder.check_eof()

    def test_truncated_length_header_is_an_eof_error(self):
        blob = encode_message(msg(b"a", b"b"))
        decoder = StreamDecoder()
        assert decoder.feed(blob[:5]) == []  # mid length table
        with pytest.raises(FrameDecodeError):
            decoder.check_eof()

    def test_decoder_is_poisoned_after_error(self):
        decoder = StreamDecoder()
        with pytest.raises(FrameDecodeError):
            decoder.feed(b"garbage-bytes-here")
        # Even valid input is refused: a desynced stream has no safe
        # resynchronization point.
        with pytest.raises(FrameDecodeError):
            decoder.feed(encode_message(msg(b"ok")))


# -- fuzz --------------------------------------------------------------------

frames_strategy = st.lists(
    st.binary(min_size=0, max_size=64), min_size=1, max_size=8
)
messages_strategy = st.lists(frames_strategy, min_size=1, max_size=6)


@st.composite
def fragmented_stream(draw):
    """A list of valid messages plus an arbitrary fragmentation of
    their concatenated encoding."""
    frame_lists = draw(messages_strategy)
    blob = b"".join(
        encode_message(Message(frames)) for frames in frame_lists
    )
    cuts = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(blob)),
            min_size=0,
            max_size=12,
        )
    )
    offsets = sorted(set([0, *cuts, len(blob)]))
    chunks = [
        blob[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)
    ]
    return frame_lists, chunks


class TestFuzz:
    @given(fragmented_stream())
    @settings(max_examples=200, deadline=None)
    def test_any_fragmentation_round_trips_in_order(self, case):
        frame_lists, chunks = case
        decoder = StreamDecoder()
        out = []
        for chunk in chunks:
            out.extend(decoder.feed(chunk))
        decoder.check_eof()
        assert [list(m.frames) for m in out] == frame_lists

    @given(
        st.binary(min_size=0, max_size=256),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_corrupted_streams_never_leak_other_exceptions(
        self, junk, flip_value, flip_at
    ):
        blob = bytearray(
            encode_message(msg(b"topic", b"payload")) + junk
        )
        if blob:
            blob[flip_at % len(blob)] ^= flip_value
        decoder = StreamDecoder()
        try:
            decoder.feed(bytes(blob))
            decoder.check_eof()
        except FrameDecodeError:
            pass  # the only sanctioned failure

    @given(st.binary(min_size=1, max_size=512))
    @settings(max_examples=200, deadline=None)
    def test_pure_garbage_errors_or_waits_but_never_yields(self, junk):
        decoder = StreamDecoder()
        try:
            out = decoder.feed(junk)
        except FrameDecodeError:
            return
        # Whatever was accepted must be decodable back to its own
        # encoding — no fabricated messages.
        for message in out:
            assert encode_message(message) in junk
