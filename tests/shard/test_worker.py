"""The shard worker body: batch processing, acks, restore arithmetic."""

import pytest

from repro.mq.codec import decode_latency_record
from repro.shard import protocol
from repro.shard.worker import ShardWorker
from tests.conftest import make_handshake


def handshake_triples(rss_hash=7, client_port=40000):
    return [
        (p.timestamp_ns, rss_hash, p.data)
        for p in make_handshake(client_port=client_port)
    ]


class TestShardWorker:
    def test_batch_yields_ack_with_counts_and_records(self):
        worker = ShardWorker(shard_id=0)
        ack = worker.process_batch(1, handshake_triples())
        seq, processed, parse_errors, records = protocol.decode_ack(ack)
        assert (seq, processed, parse_errors) == (1, 3, 0)
        assert len(records) == 1
        record = decode_latency_record(records[0])
        assert record.external_ns == 50_000_000
        assert record.queue_id == 0

    def test_records_carry_the_shard_queue_id(self):
        worker = ShardWorker(shard_id=3)
        ack = worker.process_batch(1, handshake_triples())
        _, _, _, records = protocol.decode_ack(ack)
        assert decode_latency_record(records[0]).queue_id == 3

    def test_parse_errors_counted_not_fatal(self):
        worker = ShardWorker(shard_id=0)
        batch = [(1, 0, b"\x00" * 40), *handshake_triples()]
        _, processed, parse_errors, records = protocol.decode_ack(
            worker.process_batch(1, batch)
        )
        assert processed == 4
        assert parse_errors == 1
        assert len(records) == 1

    def test_flow_sampling_matches_queue_worker_semantics(self):
        from repro.core.config import PipelineConfig

        config = PipelineConfig(flow_sample_modulus=2)
        worker = ShardWorker(shard_id=0, config=config)
        worker.process_batch(1, handshake_triples(rss_hash=3))  # 3 % 2 != 0
        assert worker.packets_sampled_out == 3
        assert worker.records_emitted == 0
        worker.process_batch(2, handshake_triples(rss_hash=4))
        assert worker.records_emitted == 1

    def test_state_round_trip(self):
        worker = ShardWorker(shard_id=1)
        worker.process_batch(5, handshake_triples())
        clone = ShardWorker(shard_id=1)
        clone.load_state(worker.state_dict())
        assert clone.ledger() == worker.ledger()

    def test_state_refuses_the_wrong_shard(self):
        worker = ShardWorker(shard_id=1)
        with pytest.raises(ValueError):
            ShardWorker(shard_id=2).load_state(worker.state_dict())

    def test_apply_ack_deltas_restores_the_books_exactly(self):
        """Checkpoint + WAL replay: the restored ledger must equal the
        pre-crash one even though the flow table rows are history."""
        original = ShardWorker(shard_id=0)
        original.process_batch(1, handshake_triples())
        checkpointed = original.state_dict()
        original.process_batch(
            2, handshake_triples(rss_hash=9, client_port=40002)
        )  # post-checkpoint, WAL'd as a delta

        restored = ShardWorker(shard_id=0)
        restored.load_state(checkpointed)
        restored.apply_ack_deltas(
            [{"seq": 2, "processed": 3, "parse_errors": 0, "records": 1}]
        )
        assert restored.ledger() == original.ledger()
