"""Dual-stack (IPv6) end-to-end tests."""

import random

import pytest

from repro.analytics.service import AnalyticsService
from repro.core.config import PipelineConfig
from repro.core.pipeline import RuruPipeline
from repro.geo.builder import GeoDbBuilder, SyntheticGeoPlan
from repro.mq.socket import Context
from repro.traffic.endpoints import EndpointPopulation
from repro.traffic.generator import GeneratorConfig, TrafficGenerator
from repro.tsdb.query import Query

NS_PER_S = 1_000_000_000


@pytest.fixture(scope="module")
def dual_stack_run():
    config = GeneratorConfig(
        duration_ns=5 * NS_PER_S, mean_flows_per_s=40, seed=23,
        ipv6_fraction=0.4,
        handshake_only_fraction=0.0, rst_fraction=0.0, syn_loss_fraction=0.0,
    )
    generator = TrafficGenerator(config=config, keep_specs=True)
    packets = generator.packet_list()
    return generator, packets


class TestIpv6Plan:
    def test_v6_blocks_disjoint(self, plan):
        for i in range(len(plan.cities) - 1):
            assert plan.block6_end(i) < plan.block6_start(i + 1)

    def test_v6_ground_truth(self, plan):
        rng = random.Random(1)
        for index in (0, 7, len(plan.cities) - 1):
            host = plan.random_host6(index, rng)
            assert plan.city_of6(host) is plan.cities[index]
            assert plan.asn_of6(host) == plan.incumbent_asn(index)

    def test_v6_outside_plan(self, plan):
        assert plan.city_of6(0xFE80 << 112) is None

    def test_misaligned_v6_base_rejected(self):
        with pytest.raises(ValueError):
            SyntheticGeoPlan(ipv6_base=(0x20010DB8 << 96) | 1)


class TestIpv6Databases:
    def test_geo6_resolves_plan_hosts(self, plan):
        geo6 = GeoDbBuilder(plan=plan, country_accuracy=1.0).build_geo6()
        rng = random.Random(2)
        for index, city in enumerate(plan.cities):
            host = plan.random_host6(index, rng)
            record = geo6.lookup(host)
            assert record is not None
            assert record.city == city.name

    def test_asn6_lpm(self, plan):
        asn6 = GeoDbBuilder(plan=plan).build_asn6()
        rng = random.Random(3)
        host = plan.random_host6(5, rng)
        assert asn6.lookup(host).asn == plan.incumbent_asn(5)
        assert asn6.lookup(0xFE80 << 112) is None


class TestDualStackPipeline:
    def test_v6_flows_measured(self, dual_stack_run):
        generator, packets = dual_stack_run
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
        stats = pipeline.run_packets(packets)
        assert stats.measurements == len(generator.specs)
        v6_records = [r for r in pipeline.measurements if r.is_ipv6]
        v6_specs = [s for s in generator.specs if s.is_ipv6]
        assert len(v6_records) == len(v6_specs)
        assert len(v6_records) > 0
        # Ground-truth latency also holds for v6 flows.
        truth = {(s.client_ip, s.client_port): s for s in v6_specs}
        for record in v6_records:
            spec = truth[(record.src_ip, record.src_port)]
            assert abs(record.external_ns - spec.expected_external_ns()) <= 1_000_000

    def test_v6_fraction_respected(self, dual_stack_run):
        generator, _ = dual_stack_run
        fraction = sum(1 for s in generator.specs if s.is_ipv6) / len(generator.specs)
        # ~200 flows: allow generous binomial noise around 0.4.
        assert 0.25 < fraction < 0.55

    def test_v6_rss_symmetry_preserved(self, dual_stack_run):
        """Both directions of v6 flows also share a queue."""
        generator, packets = dual_stack_run
        pipeline = RuruPipeline(config=PipelineConfig(num_queues=8))
        stats = pipeline.run_packets(packets)
        assert stats.tracker.orphan_synack == 0
        assert stats.measurements == len(generator.specs)

    def test_v6_enrichment_end_to_end(self, dual_stack_run, plan):
        generator, packets = dual_stack_run
        builder = GeoDbBuilder(plan=generator.plan, country_accuracy=1.0)
        geo, asn = builder.build()
        geo6, asn6 = builder.build6()
        service = AnalyticsService(
            Context(), geo, asn, geo6=geo6, asn6=asn6
        )
        pipeline = RuruPipeline(sink=service.make_sink())
        stats = pipeline.run_packets(packets)
        service.finish()
        assert service.enriched_count == stats.measurements
        # No endpoint should remain unknown: v6 resolves via geo6.
        countries = service.tsdb.tag_values("latency", "src_country")
        assert "ZZ" not in countries

    def test_v6_unknown_without_v6_databases(self, dual_stack_run):
        generator, packets = dual_stack_run
        geo, asn = GeoDbBuilder(plan=generator.plan).build()
        service = AnalyticsService(Context(), geo, asn)  # no geo6
        pipeline = RuruPipeline(sink=service.make_sink())
        pipeline.run_packets(packets)
        service.finish()
        assert "ZZ" in service.tsdb.tag_values("latency", "src_country")
