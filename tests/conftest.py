"""Shared fixtures: the address plan, geo databases, and small workloads."""

from __future__ import annotations

import pytest

from repro.geo.builder import GeoDbBuilder, SyntheticGeoPlan
from repro.net.addresses import ip_to_int
from repro.net.packet import build_tcp_packet
from repro.net.parser import PacketParser
from repro.net.tcp import TCP_FLAG_ACK, TCP_FLAG_SYN
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


@pytest.fixture(scope="session")
def plan():
    """The default world address plan."""
    return SyntheticGeoPlan()


@pytest.fixture(scope="session")
def geo_asn(plan):
    """A perfect-accuracy geo/AS database pair over the plan."""
    builder = GeoDbBuilder(plan=plan, country_accuracy=1.0)
    return builder.build()


@pytest.fixture(scope="session")
def small_workload():
    """A 5-second, flat-rate Auckland-LA workload (packets + generator)."""
    generator = AucklandLaScenario(
        duration_ns=5 * NS_PER_S, mean_flows_per_s=30, seed=11, diurnal=False
    ).build(keep_specs=True)
    packets = generator.packet_list()
    return generator, packets


@pytest.fixture()
def parser():
    return PacketParser(extract_timestamps=True)


def make_handshake(
    client_ip="10.0.0.1",
    server_ip="192.168.1.1",
    client_port=40000,
    server_port=443,
    syn_ns=1_000_000,
    external_ns=50 * NS_PER_MS,
    internal_ns=10 * NS_PER_MS,
    client_isn=1000,
    server_isn=9000,
):
    """Three raw handshake frames with controllable latencies."""
    c_ip, s_ip = ip_to_int(client_ip), ip_to_int(server_ip)
    syn = build_tcp_packet(
        c_ip, s_ip, client_port, server_port, TCP_FLAG_SYN,
        seq=client_isn, timestamp_ns=syn_ns,
    )
    synack = build_tcp_packet(
        s_ip, c_ip, server_port, client_port, TCP_FLAG_SYN | TCP_FLAG_ACK,
        seq=server_isn, ack=client_isn + 1, timestamp_ns=syn_ns + external_ns,
    )
    ack = build_tcp_packet(
        c_ip, s_ip, client_port, server_port, TCP_FLAG_ACK,
        seq=client_isn + 1, ack=server_isn + 1,
        timestamp_ns=syn_ns + external_ns + internal_ns,
    )
    return [syn, synack, ack]
