"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.duration == 30.0
        assert args.output == "ruru-trace.pcap"


class TestCommands:
    def test_generate_then_measure(self, tmp_path, capsys):
        trace = str(tmp_path / "t.pcap")
        assert main(["generate", "--duration", "2", "--rate", "20",
                     "--output", trace]) == 0
        output = capsys.readouterr().out
        assert "wrote" in output
        assert main(["measure", "--pcap", trace, "--show", "3"]) == 0
        output = capsys.readouterr().out
        assert "pipeline stats" in output
        assert "measurements" in output

    def test_generate_pcapng_then_measure(self, tmp_path, capsys):
        trace = str(tmp_path / "t.pcapng")
        assert main(["generate", "--duration", "2", "--rate", "20",
                     "--format", "pcapng", "--output", trace]) == 0
        capsys.readouterr()
        assert main(["measure", "--pcap", trace, "--show", "1"]) == 0
        assert "measurements" in capsys.readouterr().out

    def test_measure_generates_when_no_pcap(self, capsys):
        assert main(["measure", "--duration", "2", "--rate", "20"]) == 0
        assert "queue balance" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo", "--duration", "2", "--rate", "20"]) == 0
        output = capsys.readouterr().out
        assert "tsdb points" in output
        assert "map frames" in output
        assert "arc colours" in output

    def test_detect_glitch(self, capsys):
        assert main(["detect", "--duration", "60", "--rate", "30",
                     "--glitch"]) == 0
        output = capsys.readouterr().out
        assert "latency-spike" in output

    def test_detect_flood(self, capsys):
        assert main(["detect", "--duration", "30", "--rate", "20",
                     "--flood"]) == 0
        assert "syn-flood" in capsys.readouterr().out

    def test_detect_clean_traffic_returns_nonzero(self, capsys):
        assert main(["detect", "--duration", "5", "--rate", "20"]) == 1
        assert "no anomalies" in capsys.readouterr().out

    def test_export_then_query(self, tmp_path, capsys):
        lp = str(tmp_path / "m.lp")
        grafana = str(tmp_path / "dash.json")
        assert main(["export", "--duration", "3", "--rate", "20",
                     "--output", lp, "--grafana", grafana]) == 0
        output = capsys.readouterr().out
        assert "wrote" in output and "Grafana" in output
        assert main([
            "query", "--file", lp,
            "SELECT mean(total_ms) FROM latency GROUP BY dst_country",
        ]) == 0
        output = capsys.readouterr().out
        assert "dst_country=" in output

    def test_query_show_statements(self, tmp_path, capsys):
        lp = str(tmp_path / "m.lp")
        main(["export", "--duration", "2", "--rate", "15", "--output", lp])
        capsys.readouterr()
        assert main(["query", "--file", lp, "SHOW MEASUREMENTS"]) == 0
        assert "latency" in capsys.readouterr().out
        assert main([
            "query", "--file", lp,
            "SHOW TAG VALUES FROM latency WITH KEY = direction",
        ]) == 0
        assert "outbound" in capsys.readouterr().out

    def test_query_no_rows(self, tmp_path, capsys):
        lp = tmp_path / "empty.lp"
        lp.write_text("latency total_ms=1.0 0\n")
        assert main([
            "query", "--file", str(lp),
            "SELECT mean(total_ms) FROM nothing",
        ]) == 1
        assert "no rows" in capsys.readouterr().out

    def test_dump(self, capsys):
        assert main(["dump", "--duration", "1", "--rate", "10",
                     "--count", "5"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") == 5
        assert "Flags [S]" in output

    def test_dump_from_pcap(self, tmp_path, capsys):
        trace = str(tmp_path / "t.pcap")
        main(["generate", "--duration", "1", "--rate", "10",
              "--output", trace])
        capsys.readouterr()
        assert main(["dump", "--pcap", trace, "--count", "3"]) == 0
        assert capsys.readouterr().out.count("\n") == 3

    def test_analyze(self, capsys):
        assert main(["analyze", "--duration", "30", "--rate", "25",
                     "--glitch", "--top", "4"]) == 0
        output = capsys.readouterr().out
        assert "mixture fits" in output
        assert "heatmap" in output

    def test_grafana_export_is_valid_json(self, tmp_path):
        import json

        grafana = tmp_path / "dash.json"
        main(["export", "--duration", "2", "--rate", "10",
              "--output", str(tmp_path / "m.lp"), "--grafana", str(grafana)])
        model = json.loads(grafana.read_text())
        assert model["panels"]


class TestTelemetry:
    def test_metrics_emits_prometheus_exposition(self, capsys):
        assert main(["metrics", "--duration", "2", "--rate", "20"]) == 0
        output = capsys.readouterr().out
        type_lines = [l for l in output.splitlines() if l.startswith("# TYPE")]
        # The acceptance bar: >= 15 distinct series families, and every
        # TYPE line names a valid metric kind.
        assert len(type_lines) >= 15
        assert all(
            l.split()[-1] in ("counter", "gauge", "histogram") for l in type_lines
        )
        assert "ruru_packets_offered_total" in output
        assert "ruru_tracker_events_total{event=\"syn\"}" in output
        assert "ruru_analytics_enriched_total" in output

    def test_measure_with_telemetry_flag(self, capsys):
        assert main(["measure", "--duration", "2", "--rate", "20",
                     "--telemetry"]) == 0
        output = capsys.readouterr().out
        assert "--- telemetry ---" in output
        assert "self-monitoring exports" in output
        assert "ruru_measurements_total" in output
        assert "packets_processed" in output  # satellite: worker counters surfaced

    def test_export_with_selfmon_dashboard(self, tmp_path, capsys):
        import json

        selfmon = tmp_path / "selfmon.json"
        assert main(["export", "--duration", "2", "--rate", "15", "--telemetry",
                     "--output", str(tmp_path / "m.lp"),
                     "--grafana-selfmon", str(selfmon)]) == 0
        model = json.loads(selfmon.read_text())
        titles = [panel["title"] for panel in model["panels"]]
        assert "NIC drops (imissed)" in titles
        # Self-monitoring series ride along in the line-protocol export.
        lp_text = (tmp_path / "m.lp").read_text()
        assert "ruru_packets_offered_total" in lp_text


class TestChaosCommands:
    CHAOS = ["--duration", "3", "--rate", "25", "--seed", "42"]

    def test_chaos_run_ok(self, capsys):
        assert main(["chaos", "--profile", "lossy-mq", *self.CHAOS]) == 0
        output = capsys.readouterr().out
        assert "verdict: OK" in output
        assert "conservation:" in output
        assert "[OK]" in output

    def test_chaos_metrics_flag_exposes_families(self, capsys):
        assert main(
            ["chaos", "--profile", "lossy-mq", "--metrics", *self.CHAOS]
        ) == 0
        output = capsys.readouterr().out
        for family in (
            "ruru_retry_total",
            "ruru_breaker_state",
            "ruru_dlq_depth",
            "ruru_supervisor_restarts_total",
        ):
            assert family in output, family

    def test_chaos_list_profiles(self, capsys):
        assert main(["chaos", "--list"]) == 0
        output = capsys.readouterr().out
        assert "lossy-mq" in output
        assert "tsdb-brownout" in output

    def test_chaos_list_prints_description_column(self, capsys):
        from repro.faults import PROFILES

        assert main(["chaos", "--list"]) == 0
        output = capsys.readouterr().out
        for name, profile in PROFILES.items():
            assert profile.description in output, name
        # Descriptions align into one column after the longest name.
        width = max(len(name) for name in PROFILES) + 2
        line = next(l for l in output.splitlines() if l.startswith("clean"))
        assert line.index(PROFILES["clean"].description) == width

    def test_chaos_unknown_profile_errors(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            main(["chaos", "--profile", "nope", *self.CHAOS])

    def test_dlq_inspection(self, capsys):
        assert main(["dlq", "--profile", "lossy-mq", *self.CHAOS]) == 0
        output = capsys.readouterr().out
        assert "dead-letter queue:" in output
        assert "mq.decode" in output


class TestDurabilityCommands:
    ARGS = ["--duration", "3", "--rate", "25", "--seed", "42"]

    def test_live_then_recover(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["live", "--state-dir", state, *self.ARGS]) == 0
        output = capsys.readouterr().out
        assert "graceful drain:" in output
        assert "clean checkpoint:" in output
        assert "checkpoints:" in output

        assert main(["recover", "--state-dir", state, *self.ARGS]) == 0
        output = capsys.readouterr().out
        assert "recovery report:" in output
        assert "clean shutdown" in output
        assert "verdict: OK" in output

    def test_recover_empty_dir_cold_starts(self, tmp_path, capsys):
        assert main(
            ["recover", "--state-dir", str(tmp_path / "none"), *self.ARGS]
        ) == 0
        assert "cold start" in capsys.readouterr().out

    def test_recover_drain_leaves_clean_checkpoint(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["live", "--state-dir", state, *self.ARGS]) == 0
        capsys.readouterr()
        assert main(
            ["recover", "--state-dir", state, "--drain", *self.ARGS]
        ) == 0
        output = capsys.readouterr().out
        assert "graceful drain:" in output
        assert output.count("verdict: OK") == 2

    def test_recovery_trial(self, tmp_path, capsys):
        assert main([
            "recover", "--state-dir", str(tmp_path / "trial"),
            "--trial", "mq.publish", *self.ARGS,
        ]) == 0
        output = capsys.readouterr().out
        assert "recovery trial:" in output
        assert "crashed: True" in output
        assert "verdict: OK" in output

    def test_trial_faulty_profile(self, tmp_path, capsys):
        assert main([
            "recover", "--state-dir", str(tmp_path / "trial"),
            "--trial", "analytics.ingest", "--profile", "lossy-mq",
            *self.ARGS,
        ]) == 0
        assert "lost_at_crash" in capsys.readouterr().out


class TestProfCommand:
    def test_prof_prints_stage_table(self, capsys):
        assert main(["prof", "--duration", "2", "--rate", "20",
                     "--sample", "4"]) == 0
        output = capsys.readouterr().out
        assert "stage" in output
        assert "workers" in output
        assert "ns/pkt" in output
        assert "--- slo ---" in output

    def test_prof_writes_collapsed_and_json(self, tmp_path, capsys):
        collapsed = str(tmp_path / "stacks.txt")
        profile = str(tmp_path / "prof.json")
        assert main(["prof", "--duration", "2", "--rate", "20",
                     "--sample", "2", "--collapsed", collapsed,
                     "--json", profile]) == 0
        capsys.readouterr()
        with open(collapsed) as handle:
            lines = handle.read().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack.startswith("ruru;")
            assert int(count) >= 1
        import json as json_mod

        with open(profile) as handle:
            document = json_mod.load(handle)
        assert "workers" in document["stage_profile"]
        assert document["meta"]["git_rev"]
        assert document["batches"] >= document["batches_sampled"]


class TestPerfCommand:
    @staticmethod
    def write_resultset(path, value):
        from repro.obs.bench import Resultset

        rs = Resultset("bench", meta={"git_rev": "test", "platform": "p"})
        rs.record("pipeline.packets_per_s", value, unit="packets/s")
        rs.write(str(path))
        return str(path)

    def test_compare_ok_exits_zero(self, tmp_path, capsys):
        base = self.write_resultset(tmp_path / "base.json", 100.0)
        cur = self.write_resultset(tmp_path / "cur.json", 98.0)
        assert main(["perf", "compare", base, cur]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        base = self.write_resultset(tmp_path / "base.json", 100.0)
        cur = self.write_resultset(tmp_path / "cur.json", 50.0)
        assert main(["perf", "compare", base, cur]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_threshold_flag(self, tmp_path, capsys):
        base = self.write_resultset(tmp_path / "base.json", 100.0)
        cur = self.write_resultset(tmp_path / "cur.json", 50.0)
        assert main(["perf", "compare", base, cur,
                     "--threshold", "0.6"]) == 0

    def test_show_prints_metrics(self, tmp_path, capsys):
        path = self.write_resultset(tmp_path / "rs.json", 123.0)
        assert main(["perf", "show", path]) == 0
        output = capsys.readouterr().out
        assert "pipeline.packets_per_s" in output
        assert "123" in output


class TestSloGate:
    def test_metrics_prints_slo_section(self, capsys):
        assert main(["metrics", "--duration", "2", "--rate", "20"]) == 0
        output = capsys.readouterr().out
        assert "--- slo ---" in output
        assert "nic-drop-rate: ok" in output

    def test_slo_gate_passes_clean_run(self, capsys):
        assert main(["metrics", "--duration", "2", "--rate", "20",
                     "--slo-gate"]) == 0

    def test_slo_gate_fails_on_violated_config(self, tmp_path, capsys):
        import json as json_mod

        config = tmp_path / "slo.json"
        config.write_text(json_mod.dumps({
            "impossible-throughput": {
                "sum": "ruru_packets_offered_total",
                "min": 10**15,
            }
        }))
        assert main(["metrics", "--duration", "2", "--rate", "20",
                     "--slo-gate", "--slo-config", str(config)]) == 1
        assert "impossible-throughput: violated" in capsys.readouterr().out


class TestScenarioCommand:
    TINY = ('name = "cli-tiny"\ndescription = "cli probe"\n'
            '[traffic]\nduration_s = 2.0\nrate = 20.0\n')

    def tiny_path(self, tmp_path):
        path = tmp_path / "cli-tiny.toml"
        path.write_text(self.TINY)
        return str(path)

    def test_list_prints_library_with_descriptions(self, capsys):
        from repro.scenarios import load_library

        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        specs = load_library()
        assert len(specs) >= 6
        width = max(len(name) for name in specs) + 2
        for name, spec in specs.items():
            line = next(l for l in output.splitlines() if l.startswith(name))
            assert line.index(spec.description) == width, name

    def test_show_prints_spec_and_baseline(self, capsys):
        assert main(["scenario", "show", "syn-flood-burst"]) == 0
        output = capsys.readouterr().out
        assert '"syn-flood-burst"' in output
        assert "baseline:" in output and "missing" not in output

    def test_run_spec_file_with_overrides(self, tmp_path, capsys):
        out = str(tmp_path / "rs.json")
        assert main(["scenario", "run", self.tiny_path(tmp_path),
                     "--set", "traffic.rate=30", "--out", out]) == 0
        output = capsys.readouterr().out
        assert "verdict: OK" in output
        from repro.obs.bench import load_resultset

        archived = load_resultset(out)
        assert archived.meta["spec"]["traffic"]["rate"] == 30

    def test_run_failing_expectation_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "never.toml"
        path.write_text(self.TINY.replace('"cli-tiny"', '"never"')
                        + "[expect.syn-flood]\nmin = 5\n")
        assert main(["scenario", "run", str(path)]) == 1
        assert "FAIL] expect.syn-flood" in capsys.readouterr().out

    def test_batch_then_resume(self, tmp_path, capsys, monkeypatch):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "cli-tiny.toml").write_text(self.TINY)
        monkeypatch.setenv("RURU_SCENARIO_PATH", str(specs))
        out = str(tmp_path / "grid")
        assert main(["scenario", "batch", "cli-tiny",
                     "--seeds", "5,6", "--out", out]) == 0
        assert "2 ran, 0 skipped" in capsys.readouterr().out
        assert main(["scenario", "batch", "cli-tiny",
                     "--seeds", "5,6", "--out", out]) == 0
        assert "0 ran, 2 skipped" in capsys.readouterr().out

    def test_batch_variant_axis(self, tmp_path, capsys, monkeypatch):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "cli-tiny.toml").write_text(self.TINY)
        monkeypatch.setenv("RURU_SCENARIO_PATH", str(specs))
        assert main(["scenario", "batch", "cli-tiny",
                     "--variant", "hot:traffic.rate=40",
                     "--out", str(tmp_path / "grid")]) == 0
        output = capsys.readouterr().out
        assert "cli-tiny--s7" in output
        assert "cli-tiny--s7--hot" in output

    def test_compare_write_then_gate(self, tmp_path, capsys, monkeypatch):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "cli-tiny.toml").write_text(self.TINY)
        monkeypatch.setenv("RURU_SCENARIO_PATH", str(specs))
        baselines = str(tmp_path / "baselines")
        assert main(["scenario", "compare", "cli-tiny",
                     "--baseline-dir", baselines, "--write"]) == 0
        capsys.readouterr()
        assert main(["scenario", "compare", "cli-tiny",
                     "--baseline-dir", baselines]) == 0
        assert "cli-tiny: ok" in capsys.readouterr().out
