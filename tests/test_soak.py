"""Scale soak: a larger run with noise and tap impairments together.

Not a micro test — one realistic minute of a busy tap (background TCP
+ non-TCP noise + capture impairments + injected anomalies) through
the full co-scheduled runtime, asserting the global invariants that
must hold at any scale.
"""

import pytest

from repro.runtime import RuruRuntime
from repro.traffic.noise import NoiseGenerator, merge_streams
from repro.traffic.scenarios import (
    AucklandLaScenario,
    FirewallGlitchInjector,
    SynFloodInjector,
)
from repro.traffic.tap import TapImpairments
from repro.tsdb.query import Query

NS_PER_S = 1_000_000_000
DURATION_S = 60


@pytest.fixture(scope="module")
def soak_report():
    glitch = FirewallGlitchInjector(
        window_start_offset_ns=20 * NS_PER_S, window_ns=10 * NS_PER_S
    )
    flood = SynFloodInjector(
        flood_start_ns=40 * NS_PER_S, flood_duration_ns=5 * NS_PER_S,
        rate_per_s=1500,
    )
    generator = AucklandLaScenario(
        duration_ns=DURATION_S * NS_PER_S, mean_flows_per_s=80,
        seed=101, diurnal=False,
    ).build(injectors=[glitch, flood], keep_specs=True)
    noise = NoiseGenerator(
        plan=generator.plan, duration_ns=DURATION_S * NS_PER_S,
        udp_rate_per_s=60, icmp_rate_per_s=6, seed=102,
    )
    impairments = TapImpairments(
        loss_rate=0.01, duplicate_rate=0.02, reorder_rate=0.05, seed=103
    )
    stream = impairments.apply(
        merge_streams(generator.packets(), noise.packets())
    )
    runtime = RuruRuntime.build(generator.plan)
    report = runtime.run(stream)
    return generator, runtime, report


class TestSoak:
    def test_scale(self, soak_report):
        generator, _, report = soak_report
        assert report.pipeline_stats.packets_offered > 30_000
        assert generator.flows_generated > 4_000  # incl. flood flows

    def test_measurement_coverage_under_everything(self, soak_report):
        generator, _, report = soak_report
        completing = sum(
            1 for s in generator.specs
            if s.completes and not s.rst_after_synack
        )
        # 1% loss costs ~3% of handshakes; everything else is neutral.
        assert report.measurements > 0.9 * completing
        assert report.measurements <= completing

    def test_all_tiers_consistent(self, soak_report):
        _, runtime, report = soak_report
        tsdb_count = report.tsdb.query(
            Query("latency", "total_ms", "count")
        ).scalar()
        assert tsdb_count == report.measurements
        assert report.map_view.arcs_in == report.measurements
        status = runtime.status()
        assert status["analytics"]["input_queue_depth"] == 0

    def test_both_anomalies_found(self, soak_report):
        _, _, report = soak_report
        kinds = {event.kind for event in report.anomalies}
        assert "latency-spike" in kinds
        assert "syn-flood" in kinds

    def test_noise_accounted(self, soak_report):
        _, _, report = soak_report
        reasons = report.pipeline_stats.parse_error_reasons
        assert reasons.get("not-tcp", 0) > 1000
        assert reasons.get("not-ip", 0) > 50

    def test_memory_bounded(self, soak_report):
        _, runtime, _ = soak_report
        # Flow tables hold only expirable residue, not the whole run.
        for occupancy in runtime.pipeline.flow_table_occupancy():
            assert occupancy < 10_000
