"""NetFlow baseline tests."""

import pytest

from repro.baselines.netflow import NetflowExporter
from repro.net.parser import PacketParser, ParsedPacket

NS_PER_S = 1_000_000_000


def pkt(src, dst, sport, dport, flags, t_ns, payload=0):
    return ParsedPacket(
        src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
        flags=flags, seq=0, ack=0, payload_len=payload, timestamp_ns=t_ns,
    )


class TestExporter:
    def test_accumulates_per_direction(self):
        exporter = NetflowExporter()
        exporter.on_packet(pkt(1, 2, 10, 443, 0x18, 0, payload=100))
        exporter.on_packet(pkt(1, 2, 10, 443, 0x18, NS_PER_S, payload=200))
        exporter.on_packet(pkt(2, 1, 443, 10, 0x18, NS_PER_S, payload=500))
        records = exporter.flush()
        assert len(records) == 2  # one per direction, as NetFlow keys
        forward = next(r for r in records if r.key[0] == 1)
        assert forward.packets == 2
        assert forward.octets == 100 + 200 + 80

    def test_fin_exports_immediately(self):
        exporter = NetflowExporter()
        exporter.on_packet(pkt(1, 2, 10, 443, 0x18, 0))
        exporter.on_packet(pkt(1, 2, 10, 443, 0x11, NS_PER_S))  # FIN|ACK
        assert len(exporter.exported) == 1
        assert exporter.flush() == exporter.exported

    def test_inactive_timeout_splits_flow(self):
        exporter = NetflowExporter(inactive_timeout_ns=10 * NS_PER_S)
        exporter.on_packet(pkt(1, 2, 10, 443, 0x18, 0))
        exporter.on_packet(pkt(1, 2, 10, 443, 0x18, 60 * NS_PER_S))
        records = exporter.flush()
        assert len(records) == 2

    def test_active_timeout_splits_flow(self):
        exporter = NetflowExporter(active_timeout_ns=30 * NS_PER_S,
                                   inactive_timeout_ns=3600 * NS_PER_S)
        for second in range(0, 100, 5):
            exporter.on_packet(pkt(1, 2, 10, 443, 0x18, second * NS_PER_S))
        records = exporter.flush()
        assert len(records) >= 3

    def test_flag_accumulation(self):
        exporter = NetflowExporter()
        exporter.on_packet(pkt(1, 2, 10, 443, 0x02, 0))        # SYN
        exporter.on_packet(pkt(1, 2, 10, 443, 0x10, NS_PER_S))  # ACK
        record = exporter.flush()[0]
        assert record.tcp_flags == 0x12

    def test_validation(self):
        with pytest.raises(ValueError):
            NetflowExporter(active_timeout_ns=0)


class TestAggregateView:
    def test_five_minute_buckets(self):
        exporter = NetflowExporter()
        for minute in (1, 2, 7, 8):
            exporter.on_packet(pkt(
                1, 2, 10, 443, 0x18, minute * 60 * NS_PER_S, payload=1000
            ))
        exporter.flush()
        aggregate = exporter.aggregate(interval_ns=300 * NS_PER_S)
        assert len(aggregate) >= 1  # records keyed by first-packet window
        total_octets = sum(cell["octets"] for cell in aggregate.values())
        assert total_octets == 4 * 1040

    def test_latency_visibility_is_none(self):
        """The structural point of the baseline."""
        assert NetflowExporter().latency_visibility() is None


class TestOnRealTrace:
    def test_glitch_invisible_in_netflow_aggregates(self, small_workload):
        """The paper's motivating claim, executed: add 4 s to every
        handshake and NetFlow's aggregate view barely changes."""
        from repro.traffic.scenarios import AucklandLaScenario, FirewallGlitchInjector

        def run(injectors):
            generator = AucklandLaScenario(
                duration_ns=5 * NS_PER_S, mean_flows_per_s=30, seed=11,
                diurnal=False,
            ).build(injectors=injectors)
            parser = PacketParser()
            exporter = NetflowExporter()
            for packet in generator.packets():
                exporter.on_packet(parser.parse(packet.data, packet.timestamp_ns))
            exporter.flush()
            return exporter.aggregate(interval_ns=5 * NS_PER_S)

        glitch = FirewallGlitchInjector(
            window_start_offset_ns=0, window_ns=5 * NS_PER_S
        )
        clean = run([])
        glitched = run([glitch])
        # Same windows, near-identical octet totals: the 4000 ms delay
        # shifts *when* bytes flow, not *how many* — NetFlow sees nothing.
        clean_octets = sum(c["octets"] for c in clean.values())
        glitch_octets = sum(c["octets"] for c in glitched.values())
        assert abs(glitch_octets - clean_octets) / clean_octets < 0.02
