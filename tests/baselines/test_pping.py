"""pping baseline tests."""

import random

from repro.baselines.pping import PpingEstimator
from repro.core.pipeline import RuruPipeline
from repro.net.parser import PacketParser
from repro.traffic.flows import FlowSpec, FlowSynthesizer

MS = 1_000_000


def _flow_packets(internal=10.0, external=140.0, exchanges=3, seed=1):
    spec = FlowSpec(
        start_ns=0,
        client_ip=0x0A000001, server_ip=0x14000001,
        client_port=40000, server_port=443,
        internal_rtt_ms=internal, external_rtt_ms=external,
        server_delay_ms=0.5, client_delay_ms=0.2,
        data_exchanges=exchanges,
    )
    packets = FlowSynthesizer(random.Random(seed)).synthesize(spec)
    parser = PacketParser(extract_timestamps=True)
    return spec, [parser.parse(p.data, p.timestamp_ns) for p in packets]


class TestPpingEstimator:
    def test_produces_samples(self):
        _, parsed = _flow_packets()
        estimator = PpingEstimator()
        samples = estimator.run(parsed)
        assert len(samples) >= 2

    def test_rtt_magnitudes_match_path(self):
        spec, parsed = _flow_packets(internal=10.0, external=140.0)
        samples = PpingEstimator().run(parsed)
        # Every sample is tap<->client (~internal) or tap<->server
        # (~external), within scheduling noise.
        for sample in samples:
            near_internal = abs(sample.rtt_ms - 10.0) < 8.0
            near_external = abs(sample.rtt_ms - 140.0) < 8.0
            assert near_internal or near_external

    def test_more_exchanges_more_samples_than_handshake_only(self):
        _, short = _flow_packets(exchanges=0)
        _, long = _flow_packets(exchanges=5)
        short_samples = PpingEstimator().run(short)
        long_samples = PpingEstimator().run(long)
        assert len(long_samples) > len(short_samples)

    def test_samples_per_flow(self):
        _, parsed = _flow_packets()
        estimator = PpingEstimator()
        estimator.run(parsed)
        counts = estimator.samples_per_flow()
        assert len(counts) == 1
        assert list(counts.values())[0] == len(estimator.samples)

    def test_packets_without_timestamps_ignored(self):
        from repro.net.parser import ParsedPacket

        _, parsed = _flow_packets()
        stripped = [
            ParsedPacket(
                src_ip=p.src_ip, dst_ip=p.dst_ip, src_port=p.src_port,
                dst_port=p.dst_port, flags=p.flags, seq=p.seq, ack=p.ack,
                payload_len=p.payload_len, timestamp_ns=p.timestamp_ns,
            )
            for p in parsed
        ]
        assert PpingEstimator().run(stripped) == []

    def test_state_bounded(self):
        _, parsed = _flow_packets(exchanges=2)
        estimator = PpingEstimator(max_entries=2)
        estimator.run(parsed)
        assert len(estimator._first_seen) <= 2

    def test_nonnegative_rtts(self):
        _, parsed = _flow_packets()
        for sample in PpingEstimator().run(parsed):
            assert sample.rtt_ns >= 0


class TestComparisonWithRuru:
    def test_pping_denser_than_handshake_method(self, small_workload):
        """E9's core claim: pping samples continuously, Ruru once per flow."""
        _, packets = small_workload
        parser = PacketParser(extract_timestamps=True)
        parsed = [parser.parse(p.data, p.timestamp_ns) for p in packets]
        pping_samples = len(PpingEstimator().run(parsed))

        pipeline = RuruPipeline()
        stats = pipeline.run_packets(packets)
        assert pping_samples > stats.measurements
