"""Active-probe baseline tests."""

import pytest

from repro.baselines.active_probe import (
    ActiveProber,
    detection_probability,
    glitch_model,
)

NS_PER_S = 1_000_000_000
NS_PER_MIN = 60 * NS_PER_S
NS_PER_HOUR = 3600 * NS_PER_S


class TestProbeSchedule:
    def test_period_respected(self):
        prober = ActiveProber(period_ns=NS_PER_MIN, seed=1)
        times = prober.probe_times(0, NS_PER_HOUR)
        assert 59 <= len(times) <= 61
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap == NS_PER_MIN for gap in gaps)  # zero jitter

    def test_jitter_bounded(self):
        prober = ActiveProber(period_ns=NS_PER_MIN, jitter_ns=5 * NS_PER_S, seed=2)
        times = prober.probe_times(0, NS_PER_HOUR)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(50 * NS_PER_S <= gap <= 70 * NS_PER_S for gap in gaps)

    def test_phase_varies_with_seed(self):
        a = ActiveProber(period_ns=NS_PER_MIN, seed=1).probe_times(0, NS_PER_HOUR)
        b = ActiveProber(period_ns=NS_PER_MIN, seed=2).probe_times(0, NS_PER_HOUR)
        assert a[0] != b[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ActiveProber(period_ns=0)
        with pytest.raises(ValueError):
            ActiveProber(period_ns=10, jitter_ns=6)


class TestGlitchVisibility:
    def test_probe_inside_window_sees_glitch(self):
        model = glitch_model(
            baseline_ms=140.0,
            glitch_start_ns=10 * NS_PER_MIN,
            glitch_ns=NS_PER_MIN,
            glitch_extra_ms=4000.0,
        )
        assert model(10 * NS_PER_MIN + 1) == pytest.approx(4140.0)
        assert model(5 * NS_PER_MIN) == pytest.approx(140.0)

    def test_sparse_prober_usually_misses_short_window(self):
        """~60 s window, 15-min probe period: detection ≈ 1/15."""
        window = NS_PER_MIN
        period = 15 * NS_PER_MIN
        probability = detection_probability(period, window, trials=800, seed=3)
        assert probability < 0.15
        assert probability == pytest.approx(window / period, abs=0.05)

    def test_dense_prober_always_catches(self):
        probability = detection_probability(
            period_ns=30 * NS_PER_S, window_ns=NS_PER_MIN, trials=300, seed=4
        )
        assert probability == 1.0

    def test_end_to_end_miss_example(self):
        """A concrete night where the 1/15-min prober misses the
        glitch entirely while its threshold alert stays silent."""
        glitch_start = 3 * NS_PER_HOUR
        model = glitch_model(140.0, glitch_start, NS_PER_MIN, 4000.0)
        missed = 0
        for seed in range(40):
            prober = ActiveProber(period_ns=15 * NS_PER_MIN, seed=seed)
            samples = prober.run(model, 0, 6 * NS_PER_HOUR)
            if not prober.detects(samples, baseline_ms=140.0):
                missed += 1
        # The vast majority of phases miss the one-minute window.
        assert missed >= 30
