"""tcptrace baseline tests."""

import random

from repro.baselines.tcptrace import TcptraceAnalyzer
from repro.net.parser import PacketParser
from repro.traffic.flows import FlowSpec, FlowSynthesizer

MS = 1_000_000


def _parsed_flow(seed=1, **overrides):
    fields = dict(
        start_ns=0,
        client_ip=0x0A000001, server_ip=0x14000001,
        client_port=40000, server_port=443,
        internal_rtt_ms=10.0, external_rtt_ms=140.0,
        server_delay_ms=0.0, client_delay_ms=0.0,
        data_exchanges=2,
    )
    fields.update(overrides)
    spec = FlowSpec(**fields)
    parser = PacketParser()
    packets = FlowSynthesizer(random.Random(seed)).synthesize(spec)
    return spec, [parser.parse(p.data, p.timestamp_ns) for p in packets]


class TestTcptraceAnalyzer:
    def test_reconstructs_handshake_rtts(self):
        spec, parsed = _parsed_flow()
        report = TcptraceAnalyzer().run(parsed)[0]
        assert report.handshake_complete
        assert report.external_rtt_ns == spec.expected_external_ns()
        assert report.internal_rtt_ns == spec.expected_internal_ns()
        assert report.total_rtt_ns == spec.expected_total_ns()

    def test_direction_accounting(self):
        spec, parsed = _parsed_flow(data_exchanges=3, fin_close=False)
        report = TcptraceAnalyzer().run(parsed)[0]
        forward_first = (report.flow_key[0], report.flow_key[1]) == (
            spec.client_ip, spec.client_port
        )
        client_dir = report.fwd if forward_first else report.rev
        server_dir = report.rev if forward_first else report.fwd
        assert client_dir.bytes == 3 * spec.request_bytes
        assert server_dir.bytes == 3 * spec.response_bytes
        assert report.total_packets == len(parsed)

    def test_termination_fin(self):
        _, parsed = _parsed_flow(fin_close=True)
        assert TcptraceAnalyzer().run(parsed)[0].termination == "fin"

    def test_termination_rst(self):
        _, parsed = _parsed_flow(rst_after_synack=True)
        assert TcptraceAnalyzer().run(parsed)[0].termination == "rst"

    def test_termination_open(self):
        _, parsed = _parsed_flow(fin_close=False)
        assert TcptraceAnalyzer().run(parsed)[0].termination == "open"

    def test_incomplete_handshake(self):
        _, parsed = _parsed_flow(completes=False)
        report = TcptraceAnalyzer().run(parsed)[0]
        assert not report.handshake_complete
        assert report.external_rtt_ns is None

    def test_retransmission_detection(self):
        _, parsed = _parsed_flow(data_exchanges=1, fin_close=False)
        data = [p for p in parsed if p.payload_len > 0]
        doubled = parsed + [data[0]]  # replay one data segment
        report = TcptraceAnalyzer().run(doubled)[0]
        assert report.fwd.retransmissions + report.rev.retransmissions == 1

    def test_duration(self):
        _, parsed = _parsed_flow()
        report = TcptraceAnalyzer().run(parsed)[0]
        assert report.duration_ns == parsed[-1].timestamp_ns - parsed[0].timestamp_ns

    def test_multiple_flows_separated(self):
        _, flow_a = _parsed_flow(seed=1, client_port=40000)
        _, flow_b = _parsed_flow(seed=2, client_port=40001)
        analyzer = TcptraceAnalyzer()
        reports = analyzer.run(flow_a + flow_b)
        assert len(reports) == 2

    def test_summary(self, small_workload):
        generator, packets = small_workload
        parser = PacketParser()
        analyzer = TcptraceAnalyzer()
        for packet in packets:
            analyzer.on_packet(parser.parse(packet.data, packet.timestamp_ns))
        summary = analyzer.summary()
        assert summary["flows"] == generator.flows_generated
        assert summary["packets"] == len(packets)
        assert summary["complete_handshakes"] <= summary["flows"]
