"""Simulated NIC tests."""

from repro.dpdk.mbuf import MbufPool
from repro.dpdk.nic import NicPort
from repro.dpdk.rss import DEFAULT_RSS_KEY
from repro.net.packet import Packet, build_tcp_packet
from repro.net.tcp import TCP_FLAG_ACK, TCP_FLAG_SYN


def _flow_packets(src, dst, sport, dport):
    """A SYN one way plus an ACK the other way."""
    return [
        build_tcp_packet(src, dst, sport, dport, TCP_FLAG_SYN, timestamp_ns=1),
        build_tcp_packet(dst, src, dport, sport, TCP_FLAG_ACK, timestamp_ns=2),
    ]


class TestClassification:
    def test_both_directions_same_queue(self):
        nic = NicPort(num_queues=8)
        for i in range(50):
            syn, ack = _flow_packets(1000 + i, 2000 + i, 10000 + i, 443)
            nic.receive(syn)
            nic.receive(ack)
            syn_mbuf = None
            for queue in nic.queues:
                for mbuf in queue.rx_burst(64):
                    if syn_mbuf is None:
                        syn_mbuf = mbuf
                    else:
                        assert mbuf.queue_id == syn_mbuf.queue_id
                        assert mbuf.rss_hash == syn_mbuf.rss_hash

    def test_asymmetric_key_splits_directions(self):
        nic = NicPort(num_queues=8, rss_key=DEFAULT_RSS_KEY)
        split = 0
        for i in range(50):
            syn, ack = _flow_packets(3_000_000 + i, 9_000_000 + i, 20000 + i, 443)
            nic.receive(syn)
            nic.receive(ack)
            queues = [
                mbuf.queue_id
                for queue in nic.queues
                for mbuf in queue.rx_burst(64)
            ]
            if len(set(queues)) > 1:
                split += 1
        assert split > 30  # the ablation premise: asymmetric keys split flows

    def test_non_ip_goes_to_queue_zero(self):
        nic = NicPort(num_queues=4)
        arp = Packet(data=b"\xff" * 12 + b"\x08\x06" + b"\x00" * 28, timestamp_ns=5)
        assert nic.receive(arp)
        assert len(nic.queues[0]) == 1

    def test_rx_metadata(self):
        nic = NicPort(num_queues=2)
        packet = build_tcp_packet(7, 8, 9, 10, TCP_FLAG_SYN, timestamp_ns=1234)
        nic.receive(packet)
        mbuf = next(m for q in nic.queues for m in q.rx_burst(4))
        assert mbuf.timestamp_ns == 1234
        assert mbuf.data == packet.data


class TestDrops:
    def test_pool_exhaustion_counts_misses(self):
        nic = NicPort(num_queues=1, mbuf_pool=MbufPool(size=2))
        packets = [build_tcp_packet(1, 2, i, 443, TCP_FLAG_SYN) for i in range(5)]
        accepted = nic.receive_burst(packets)
        assert accepted == 2
        assert nic.stats.imissed == 3

    def test_ring_overflow_counts_misses_and_frees_mbuf(self):
        pool = MbufPool(size=100)
        nic = NicPort(num_queues=1, mbuf_pool=pool, queue_capacity=4)
        packets = [build_tcp_packet(1, 2, i, 443, TCP_FLAG_SYN) for i in range(10)]
        accepted = nic.receive_burst(packets)
        assert accepted == 4
        assert nic.stats.imissed == 6
        # Mbufs of dropped frames must be returned to the pool.
        assert pool.in_use == 4


class TestStats:
    def test_counters_and_balance(self):
        nic = NicPort(num_queues=4)
        packets = [
            build_tcp_packet(100 + i, 200 + i, 3000 + i, 443, TCP_FLAG_SYN)
            for i in range(400)
        ]
        nic.receive_burst(packets)
        assert nic.stats.ipackets == 400
        assert nic.stats.ibytes == sum(len(p.data) for p in packets)
        balance = nic.stats.queue_balance()
        assert abs(sum(balance) - 1.0) < 1e-9
        assert all(share > 0.1 for share in balance)

    def test_pending(self):
        nic = NicPort(num_queues=2)
        nic.receive(build_tcp_packet(1, 2, 3, 4, TCP_FLAG_SYN))
        assert nic.pending() == 1
        for queue in nic.queues:
            queue.rx_burst(8)
        assert nic.pending() == 0
