"""Port statistics tests."""

from repro.dpdk.port_stats import PortStats


class TestPortStats:
    def test_record_rx(self):
        stats = PortStats()
        stats.record_rx(0, 100)
        stats.record_rx(1, 60)
        stats.record_rx(1, 40)
        assert stats.ipackets == 3
        assert stats.ibytes == 200
        assert stats.q_ipackets == {0: 1, 1: 2}

    def test_misses_and_errors(self):
        stats = PortStats()
        stats.record_miss()
        stats.record_error()
        stats.record_error()
        assert stats.imissed == 1
        assert stats.ierrors == 2

    def test_queue_balance(self):
        stats = PortStats()
        for _ in range(3):
            stats.record_rx(0, 10)
        stats.record_rx(1, 10)
        assert stats.queue_balance() == [0.75, 0.25]

    def test_balance_empty(self):
        assert PortStats().queue_balance() == []

    def test_reset(self):
        stats = PortStats()
        stats.record_rx(0, 10)
        stats.record_miss()
        stats.reset()
        assert stats.ipackets == 0
        assert stats.imissed == 0
        assert stats.q_ipackets == {}
