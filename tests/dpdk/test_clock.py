"""Virtual clock tests."""

import pytest

from repro.dpdk.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_custom_start(self):
        assert VirtualClock(start_ns=500).now_ns == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ns=-1)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(100) == 100
        assert clock.advance(50) == 150

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_to_never_rewinds(self):
        clock = VirtualClock(start_ns=1000)
        clock.advance_to(500)
        assert clock.now_ns == 1000
        clock.advance_to(2000)
        assert clock.now_ns == 2000

    def test_unit_conversions(self):
        clock = VirtualClock(start_ns=1_500_000_000)
        assert clock.now_s == 1.5
        assert clock.now_ms == 1500.0
        assert clock.now_us == 1_500_000.0
