"""Ring buffer tests."""

import pytest

from repro.dpdk.ring import Ring, RingEmpty, RingFull


class TestRing:
    def test_fifo_order(self):
        ring = Ring(capacity=4)
        for item in "abcd":
            ring.enqueue(item)
        assert [ring.dequeue() for _ in range(4)] == list("abcd")

    def test_full_raises_and_counts(self):
        ring = Ring(capacity=1)
        ring.enqueue(1)
        with pytest.raises(RingFull):
            ring.enqueue(2)
        assert ring.drops == 1

    def test_empty_raises(self):
        with pytest.raises(RingEmpty):
            Ring(capacity=1).dequeue()

    def test_burst_enqueue_partial(self):
        ring = Ring(capacity=3)
        accepted = ring.enqueue_burst(range(10))
        assert accepted == 3
        assert ring.drops == 7
        assert len(ring) == 3

    def test_burst_dequeue(self):
        ring = Ring(capacity=10)
        ring.enqueue_burst(range(5))
        assert ring.dequeue_burst(3) == [0, 1, 2]
        assert ring.dequeue_burst(10) == [3, 4]
        assert ring.dequeue_burst(1) == []

    def test_burst_dequeue_negative_rejected(self):
        with pytest.raises(ValueError):
            Ring(capacity=1).dequeue_burst(-1)

    def test_high_watermark(self):
        ring = Ring(capacity=10)
        ring.enqueue_burst(range(7))
        ring.dequeue_burst(5)
        ring.enqueue_burst(range(2))
        assert ring.high_watermark == 7

    def test_state_properties(self):
        ring = Ring(capacity=2)
        assert ring.is_empty and not ring.is_full
        ring.enqueue(1)
        assert ring.free_space == 1
        ring.enqueue(2)
        assert ring.is_full

    def test_counters(self):
        ring = Ring(capacity=100)
        ring.enqueue_burst(range(30))
        ring.dequeue_burst(12)
        assert ring.enqueued == 30
        assert ring.dequeued == 12

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Ring(capacity=0)


class TestBurstAccounting:
    def test_partial_burst_counts_every_side(self):
        ring = Ring(capacity=3)
        ring.enqueue(0)
        accepted = ring.enqueue_burst(range(1, 6))
        assert accepted == 2
        assert ring.enqueued == 3
        assert ring.drops == 3
        assert len(ring) == 3
        # Accepted items preserve FIFO order; dropped ones vanish.
        assert ring.dequeue_burst(3) == [0, 1, 2]

    def test_overflowing_burst_still_raises_watermark(self):
        ring = Ring(capacity=4)
        ring.enqueue_burst(range(100))
        assert ring.high_watermark == 4
        assert ring.drops == 96

    def test_interleaved_bursts_accumulate_drops(self):
        ring = Ring(capacity=2)
        assert ring.enqueue_burst("ab") == 2
        assert ring.enqueue_burst("cd") == 0
        ring.dequeue_burst(1)
        assert ring.enqueue_burst("ef") == 1
        assert ring.drops == 3
        assert ring.enqueued == 3
        assert ring.dequeued == 1


class TestPeakAndDisplacement:
    def test_take_peak_tracks_within_batch_high(self):
        ring = Ring(capacity=16)
        ring.enqueue_burst(range(9))
        ring.dequeue_burst(9)
        assert ring.take_peak() == 9
        assert ring.take_peak() == 0

    def test_displace_newest_matching(self):
        ring = Ring(capacity=4)
        ring.enqueue_burst([1, 2, 3, 4])
        victim = ring.displace_newest(lambda item: item % 2 == 0)
        assert victim == 4
        assert ring.displaced == 1
        assert list(ring.dequeue_burst(4)) == [1, 2, 3]

    def test_displace_none_matching(self):
        ring = Ring(capacity=2)
        ring.enqueue_burst([1, 3])
        assert ring.displace_newest(lambda item: item % 2 == 0) is None
        assert ring.displaced == 0
        assert len(ring) == 2

    def test_displacement_keeps_order_of_survivors(self):
        ring = Ring(capacity=5)
        ring.enqueue_burst(["h1", "p1", "h2", "p2", "h3"])
        assert ring.displace_newest(lambda item: item.startswith("p")) == "p2"
        assert ring.displace_newest(lambda item: item.startswith("p")) == "p1"
        assert ring.dequeue_burst(5) == ["h1", "h2", "h3"]
        assert ring.displaced == 2
