"""Ring buffer tests."""

import pytest

from repro.dpdk.ring import Ring, RingEmpty, RingFull


class TestRing:
    def test_fifo_order(self):
        ring = Ring(capacity=4)
        for item in "abcd":
            ring.enqueue(item)
        assert [ring.dequeue() for _ in range(4)] == list("abcd")

    def test_full_raises_and_counts(self):
        ring = Ring(capacity=1)
        ring.enqueue(1)
        with pytest.raises(RingFull):
            ring.enqueue(2)
        assert ring.drops == 1

    def test_empty_raises(self):
        with pytest.raises(RingEmpty):
            Ring(capacity=1).dequeue()

    def test_burst_enqueue_partial(self):
        ring = Ring(capacity=3)
        accepted = ring.enqueue_burst(range(10))
        assert accepted == 3
        assert ring.drops == 7
        assert len(ring) == 3

    def test_burst_dequeue(self):
        ring = Ring(capacity=10)
        ring.enqueue_burst(range(5))
        assert ring.dequeue_burst(3) == [0, 1, 2]
        assert ring.dequeue_burst(10) == [3, 4]
        assert ring.dequeue_burst(1) == []

    def test_burst_dequeue_negative_rejected(self):
        with pytest.raises(ValueError):
            Ring(capacity=1).dequeue_burst(-1)

    def test_high_watermark(self):
        ring = Ring(capacity=10)
        ring.enqueue_burst(range(7))
        ring.dequeue_burst(5)
        ring.enqueue_burst(range(2))
        assert ring.high_watermark == 7

    def test_state_properties(self):
        ring = Ring(capacity=2)
        assert ring.is_empty and not ring.is_full
        ring.enqueue(1)
        assert ring.free_space == 1
        ring.enqueue(2)
        assert ring.is_full

    def test_counters(self):
        ring = Ring(capacity=100)
        ring.enqueue_burst(range(30))
        ring.dequeue_burst(12)
        assert ring.enqueued == 30
        assert ring.dequeued == 12

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Ring(capacity=0)
