"""RSS hash tests — including the symmetry property Ruru depends on."""

import random
import struct

import pytest

from repro.dpdk.rss import (
    DEFAULT_RSS_KEY,
    SYMMETRIC_RSS_KEY,
    RssHasher,
    make_symmetric_key,
    toeplitz_hash,
)


class TestToeplitzReference:
    def test_microsoft_verification_vector(self):
        # Known-answer test from the Microsoft RSS specification:
        # 66.9.149.187:2794 -> 161.142.100.80:1766 => 0x51ccc178
        data = struct.pack(
            "!IIHH",
            int.from_bytes(bytes([66, 9, 149, 187]), "big"),
            int.from_bytes(bytes([161, 142, 100, 80]), "big"),
            2794,
            1766,
        )
        # The spec orders the tuple dst,src on the wire; its published
        # input is (src addr, dst addr, src port, dst port) of the
        # *receive* direction: 161.142.100.80:1766 <- 66.9.149.187:2794.
        data = struct.pack(
            "!IIHH",
            int.from_bytes(bytes([66, 9, 149, 187]), "big"),
            int.from_bytes(bytes([161, 142, 100, 80]), "big"),
            2794,
            1766,
        )
        assert toeplitz_hash(DEFAULT_RSS_KEY, data) == 0x51CCC178

    def test_second_verification_vector(self):
        # 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea
        data = struct.pack(
            "!IIHH",
            int.from_bytes(bytes([199, 92, 111, 2]), "big"),
            int.from_bytes(bytes([65, 69, 140, 83]), "big"),
            14230,
            4739,
        )
        assert toeplitz_hash(DEFAULT_RSS_KEY, data) == 0xC626B0EA

    def test_key_too_short_rejected(self):
        with pytest.raises(ValueError):
            toeplitz_hash(b"\x01" * 10, b"\x00" * 12)


class TestSymmetricKey:
    def test_pattern_repeats(self):
        key = make_symmetric_key(40, b"\xab\xcd")
        assert key == b"\xab\xcd" * 20

    def test_odd_length(self):
        assert len(make_symmetric_key(39)) == 39

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            make_symmetric_key(40, b"\x01")


class TestRssHasher:
    def test_table_matches_reference(self):
        hasher = RssHasher(key=DEFAULT_RSS_KEY)
        rng = random.Random(3)
        for _ in range(50):
            data = bytes(rng.getrandbits(8) for _ in range(12))
            assert hasher.hash_bytes(data) == toeplitz_hash(DEFAULT_RSS_KEY, data)

    def test_symmetric_key_is_symmetric_ipv4(self):
        hasher = RssHasher(key=SYMMETRIC_RSS_KEY)
        rng = random.Random(9)
        for _ in range(100):
            src, dst = rng.getrandbits(32), rng.getrandbits(32)
            sport, dport = rng.getrandbits(16), rng.getrandbits(16)
            forward = hasher.hash_ipv4_tuple(src, dst, sport, dport)
            reverse = hasher.hash_ipv4_tuple(dst, src, dport, sport)
            assert forward == reverse

    def test_symmetric_key_is_symmetric_ipv6(self):
        hasher = RssHasher(key=SYMMETRIC_RSS_KEY)
        rng = random.Random(10)
        for _ in range(30):
            src, dst = rng.getrandbits(128), rng.getrandbits(128)
            sport, dport = rng.getrandbits(16), rng.getrandbits(16)
            forward = hasher.hash_ipv6_tuple(src, dst, sport, dport)
            reverse = hasher.hash_ipv6_tuple(dst, src, dport, sport)
            assert forward == reverse

    def test_default_key_is_not_symmetric(self):
        hasher = RssHasher(key=DEFAULT_RSS_KEY)
        asymmetric = 0
        rng = random.Random(4)
        for _ in range(50):
            src, dst = rng.getrandbits(32), rng.getrandbits(32)
            sport, dport = rng.getrandbits(16), rng.getrandbits(16)
            if hasher.hash_ipv4_tuple(src, dst, sport, dport) != hasher.hash_ipv4_tuple(
                dst, src, dport, sport
            ):
                asymmetric += 1
        assert asymmetric > 40  # virtually all tuples break symmetry

    def test_is_symmetric_property(self):
        assert RssHasher(key=SYMMETRIC_RSS_KEY).is_symmetric
        assert not RssHasher(key=DEFAULT_RSS_KEY).is_symmetric

    def test_queue_selection_in_range(self):
        hasher = RssHasher(num_queues=6)
        rng = random.Random(5)
        for _ in range(200):
            queue = hasher.queue_for_hash(rng.getrandbits(32))
            assert 0 <= queue < 6

    def test_queue_spread_roughly_uniform(self):
        hasher = RssHasher(num_queues=4)
        rng = random.Random(6)
        counts = [0, 0, 0, 0]
        total = 4000
        for _ in range(total):
            h = hasher.hash_ipv4_tuple(
                rng.getrandbits(32), rng.getrandbits(32),
                rng.getrandbits(16), rng.getrandbits(16),
            )
            counts[hasher.queue_for_hash(h)] += 1
        for count in counts:
            assert 0.15 < count / total < 0.35

    def test_custom_reta(self):
        hasher = RssHasher(num_queues=2)
        hasher.set_reta([1] * 128)
        assert hasher.queue_for_hash(12345) == 1

    def test_reta_validation(self):
        hasher = RssHasher(num_queues=2)
        with pytest.raises(ValueError):
            hasher.set_reta([0, 1, 2, 3])  # queue 2,3 out of range
        with pytest.raises(ValueError):
            hasher.set_reta([0] * 100)  # not a power of two

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RssHasher(num_queues=0)
        with pytest.raises(ValueError):
            RssHasher(reta_size=100)
        with pytest.raises(ValueError):
            RssHasher(key=b"\x01" * 8)
