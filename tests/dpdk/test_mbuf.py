"""Mbuf pool tests."""

import pytest

from repro.dpdk.mbuf import Mbuf, MbufPool, MbufPoolExhausted


class TestMbufPool:
    def test_alloc_free_cycle(self):
        pool = MbufPool(size=4)
        mbuf = pool.alloc(b"frame", timestamp_ns=7, rss_hash=0xAB, queue_id=2)
        assert mbuf.data == b"frame"
        assert mbuf.timestamp_ns == 7
        assert mbuf.rss_hash == 0xAB
        assert mbuf.queue_id == 2
        assert pool.in_use == 1
        mbuf.free()
        assert pool.in_use == 0
        assert pool.available == 4

    def test_exhaustion_raises_and_counts(self):
        pool = MbufPool(size=2)
        pool.alloc(b"a")
        pool.alloc(b"b")
        with pytest.raises(MbufPoolExhausted):
            pool.alloc(b"c")
        assert pool.exhausted_count == 1

    def test_free_returns_capacity(self):
        pool = MbufPool(size=1)
        mbuf = pool.alloc(b"x")
        mbuf.free()
        assert pool.alloc(b"y").data == b"y"

    def test_double_free_rejected(self):
        pool = MbufPool(size=2)
        mbuf = pool.alloc(b"x")
        mbuf.free()
        with pytest.raises(ValueError):
            pool.free(mbuf)

    def test_foreign_mbuf_rejected(self):
        pool_a, pool_b = MbufPool(size=1), MbufPool(size=1)
        mbuf = pool_a.alloc(b"x")
        with pytest.raises(ValueError):
            pool_b.free(mbuf)

    def test_data_cleared_on_free(self):
        pool = MbufPool(size=1)
        mbuf = pool.alloc(b"secret")
        mbuf.free()
        assert mbuf.data == b""

    def test_counters(self):
        pool = MbufPool(size=8)
        buffers = [pool.alloc(b"p") for _ in range(5)]
        for buffer in buffers:
            buffer.free()
        assert pool.alloc_count == 5
        assert pool.free_count == 5

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MbufPool(size=0)

    def test_poolless_mbuf_free_is_noop(self):
        Mbuf(data=b"loose").free()
