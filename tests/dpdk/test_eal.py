"""EAL scheduler tests."""

import pytest

from repro.dpdk.eal import Eal


class TestEal:
    def test_launch_assigns_ids(self):
        eal = Eal()
        a = eal.launch(lambda: 0, role="rx")
        b = eal.launch(lambda: 0, role="tx")
        assert (a.lcore_id, b.lcore_id) == (0, 1)
        assert a.role == "rx"

    def test_step_all_sums_work(self):
        eal = Eal()
        eal.launch(lambda: 3)
        eal.launch(lambda: 4)
        assert eal.step_all() == 7

    def test_run_until_idle_drains_workload(self):
        work = [5, 3, 0, 0, 0]
        state = {"i": 0}

        def poll():
            index = min(state["i"], len(work) - 1)
            state["i"] += 1
            return work[index]

        eal = Eal()
        eal.launch(poll)
        rounds = eal.run_until_idle(idle_rounds=2)
        assert rounds >= 4

    def test_run_until_idle_raises_on_livelock(self):
        eal = Eal()
        eal.launch(lambda: 1)  # never goes idle
        with pytest.raises(RuntimeError):
            eal.run_until_idle(max_rounds=10)

    def test_stats_track_work_and_idle(self):
        eal = Eal()
        values = iter([2, 0, 0])
        eal.launch(lambda: next(values, 0))
        eal.run_until_idle(idle_rounds=2)
        stats = eal.stats()[0]
        assert stats["work_done"] == 2
        assert stats["idle_polls"] >= 2
