"""Retry policy and retry queue tests."""

import pytest

from repro.resilience import RetryPolicy, RetryQueue

NS_PER_MS = 1_000_000


class TestRetryPolicy:
    def test_delays_grow_exponentially(self):
        policy = RetryPolicy(base_delay_ns=10 * NS_PER_MS, jitter=0.0)
        assert policy.delay_ns(1) == 10 * NS_PER_MS
        assert policy.delay_ns(2) == 20 * NS_PER_MS
        assert policy.delay_ns(3) == 40 * NS_PER_MS

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(
            base_delay_ns=10 * NS_PER_MS, max_delay_ns=25 * NS_PER_MS, jitter=0.0
        )
        assert policy.delay_ns(10) == 25 * NS_PER_MS

    def test_jitter_stays_within_spread(self):
        policy = RetryPolicy(base_delay_ns=100 * NS_PER_MS, jitter=0.1, seed=1)
        for attempt in range(1, 5):
            delay = policy.delay_ns(attempt)
            nominal = min(100 * NS_PER_MS * 2 ** (attempt - 1), policy.max_delay_ns)
            assert 0.9 * nominal <= delay <= 1.1 * nominal

    def test_same_seed_same_schedule(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.delay_ns(i) for i in (1, 2, 3, 1)] == [
            b.delay_ns(i) for i in (1, 2, 3, 1)
        ]

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_ns(0)

    def test_exhausted_at_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ns=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestRetryQueue:
    def _queue(self, max_pending=4):
        return RetryQueue(
            RetryPolicy(base_delay_ns=10 * NS_PER_MS, jitter=0.0),
            max_pending=max_pending,
        )

    def test_not_due_before_deadline(self):
        queue = self._queue()
        queue.schedule("a", now_ns=0, attempt=1)
        assert queue.due(now_ns=5 * NS_PER_MS) == []
        assert len(queue) == 1

    def test_due_after_deadline_with_attempt(self):
        queue = self._queue()
        queue.schedule("a", now_ns=0, attempt=2)
        # attempt 2 → 20ms backoff
        assert queue.due(now_ns=30 * NS_PER_MS) == [("a", 2)]
        assert len(queue) == 0

    def test_eviction_returns_oldest_when_full(self):
        queue = self._queue(max_pending=2)
        assert queue.schedule("a", 0, 1) is None
        assert queue.schedule("b", 0, 1) is None
        assert queue.schedule("c", 0, 1) == "a"
        assert queue.evicted == 1
        assert queue.scheduled == 3

    def test_drain_returns_everything(self):
        queue = self._queue()
        queue.schedule("a", 0, 1)
        queue.schedule("b", 0, 3)
        assert sorted(queue.drain()) == [("a", 1), ("b", 3)]
        assert len(queue) == 0
