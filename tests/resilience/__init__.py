"""Tests for the repro.resilience subsystem."""
