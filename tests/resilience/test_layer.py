"""ResilienceLayer bundle + registry bridging tests."""

from repro.obs import Telemetry
from repro.resilience import ResilienceLayer


class TestResilienceLayer:
    def test_defaults_wired(self):
        layer = ResilienceLayer(seed=7)
        assert layer.enrich_breaker.name == "enrich"
        assert layer.tsdb_breaker.name == "tsdb"
        assert len(layer.breakers) == 2
        assert len(layer.retry_queue) == 0
        assert layer.dlq.total == 0

    def test_registry_exposes_required_families(self):
        telemetry = Telemetry()
        layer = ResilienceLayer(seed=7)
        layer.bind_registry(telemetry.registry)
        layer.retries = 3
        layer.degraded_published = 2
        layer.dlq.push("mq.decode", "CodecError: x", b"\x00", 0)
        for t in range(3):
            layer.tsdb_breaker.record_failure(t)

        text = telemetry.registry.exposition()
        assert 'ruru_retry_total{stage="tsdb"} 3' in text
        assert 'ruru_breaker_state{breaker="tsdb"} 1' in text
        assert 'ruru_breaker_state{breaker="enrich"} 0' in text
        assert 'ruru_breaker_opened_total{breaker="tsdb"} 1' in text
        assert "ruru_dlq_depth 1" in text
        assert 'ruru_dlq_total{stage="mq.decode",reason="CodecError: x"} 1' in text
        assert "ruru_degraded_published_total 2" in text
        assert "ruru_retry_pending 0" in text
