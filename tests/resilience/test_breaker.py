"""Circuit breaker state-machine tests (all on virtual time)."""

import pytest

from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)

NS = 1
MS = 1_000_000


def _breaker(**overrides):
    kwargs = dict(
        failure_threshold=3, recovery_timeout_ns=100 * MS, half_open_successes=2
    )
    kwargs.update(overrides)
    return CircuitBreaker("test", **kwargs)


class TestTripping:
    def test_stays_closed_below_threshold(self):
        breaker = _breaker()
        breaker.record_failure(0)
        breaker.record_failure(1)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow(2)

    def test_opens_at_threshold(self):
        breaker = _breaker()
        for t in range(3):
            breaker.record_failure(t)
        assert breaker.state == BREAKER_OPEN
        assert breaker.opened_count == 1
        assert not breaker.allow(3)

    def test_success_resets_failure_streak(self):
        breaker = _breaker()
        breaker.record_failure(0)
        breaker.record_failure(1)
        breaker.record_success(2)
        breaker.record_failure(3)
        breaker.record_failure(4)
        assert breaker.state == BREAKER_CLOSED


class TestRecovery:
    def _tripped(self):
        breaker = _breaker()
        for t in range(3):
            breaker.record_failure(t)
        return breaker

    def test_blocks_until_timeout(self):
        breaker = self._tripped()
        assert not breaker.allow(2 + 99 * MS)

    def test_half_open_probe_after_timeout(self):
        breaker = self._tripped()
        assert breaker.allow(2 + 100 * MS)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_closes_after_enough_probe_successes(self):
        breaker = self._tripped()
        now = 2 + 100 * MS
        assert breaker.allow(now)
        breaker.record_success(now)
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success(now + 1)
        assert breaker.state == BREAKER_CLOSED

    def test_probe_failure_reopens_immediately(self):
        breaker = self._tripped()
        now = 2 + 100 * MS
        assert breaker.allow(now)
        breaker.record_failure(now)
        assert breaker.state == BREAKER_OPEN
        assert breaker.opened_count == 2
        assert not breaker.allow(now + 1)

    def test_recovery_time_measured_open_to_closed(self):
        breaker = self._tripped()  # opened at t=2
        now = 2 + 100 * MS
        breaker.allow(now)
        breaker.record_success(now)
        breaker.record_success(now + 5)
        assert breaker.recovery_times_ns() == [100 * MS + 5]

    def test_transitions_are_timestamped(self):
        breaker = self._tripped()
        assert breaker.transitions == [(2, BREAKER_CLOSED, BREAKER_OPEN)]


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", recovery_timeout_ns=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", half_open_successes=0)

    def test_state_name(self):
        assert _breaker().state_name == "closed"
