"""Conservation-ledger tests."""

import pytest

from repro.resilience import ConservationLedger, InvariantViolation


class TestConservationLedger:
    def test_balanced_ledger_ok(self):
        ledger = ConservationLedger(
            ingested=10, processed=7, dropped=2, deadlettered=1
        )
        assert ledger.ok
        assert ledger.balance == 0
        ledger.check()  # does not raise

    def test_unbalanced_ledger_raises_with_detail(self):
        ledger = ConservationLedger(
            ingested=10, processed=7, dropped=2, deadlettered=0
        )
        assert not ledger.ok
        assert ledger.balance == 1
        with pytest.raises(InvariantViolation, match="ingested=10"):
            ledger.check()

    def test_violation_is_an_assertion_error(self):
        assert issubclass(InvariantViolation, AssertionError)

    def test_as_dict_and_str(self):
        ledger = ConservationLedger(
            ingested=3, processed=3, dropped=0, deadlettered=0
        )
        assert ledger.as_dict()["balance"] == 0
        assert "OK" in str(ledger)
        bad = ConservationLedger(ingested=3, processed=1, dropped=0, deadlettered=0)
        assert "VIOLATED" in str(bad)
