"""Dead-letter queue tests: bounded memory, full provenance."""

import pytest

from repro.resilience import DeadLetterQueue


class TestDeadLetterQueue:
    def test_push_records_provenance(self):
        dlq = DeadLetterQueue(capacity=4)
        letter = dlq.push(
            stage="mq.decode", reason="CodecError: boom", payload=b"\x01\x02",
            timestamp_ns=123,
        )
        assert letter.seq == 0
        assert letter.stage == "mq.decode"
        assert letter.payload == b"\x01\x02"
        assert len(dlq) == 1
        assert dlq.total == 1

    def test_drop_oldest_beyond_capacity(self):
        dlq = DeadLetterQueue(capacity=2)
        for i in range(5):
            dlq.push("s", "r", bytes([i]), timestamp_ns=i)
        assert len(dlq) == 2
        assert dlq.total == 5
        assert dlq.overflowed == 3
        # The survivors are the newest two, oldest first.
        assert [letter.payload for letter in dlq.entries()] == [b"\x03", b"\x04"]

    def test_summary_counts_by_stage_and_reason(self):
        dlq = DeadLetterQueue(capacity=8)
        dlq.push("mq.decode", "CodecError: short", b"x", 0)
        dlq.push("mq.decode", "CodecError: short", b"y", 1)
        dlq.push("mq.decode", "CodecError: version", b"z", 2)
        assert dlq.summary() == {
            ("mq.decode", "CodecError: short"): 2,
            ("mq.decode", "CodecError: version"): 1,
        }

    def test_summary_survives_overflow(self):
        dlq = DeadLetterQueue(capacity=1)
        dlq.push("s", "r", b"a", 0)
        dlq.push("s", "r", b"b", 1)
        assert dlq.summary() == {("s", "r"): 2}

    def test_entries_limit_returns_newest(self):
        dlq = DeadLetterQueue(capacity=8)
        for i in range(5):
            dlq.push("s", "r", bytes([i]), i)
        newest = dlq.entries(limit=2)
        assert [letter.seq for letter in newest] == [3, 4]

    def test_preview_truncates_hex(self):
        dlq = DeadLetterQueue()
        letter = dlq.push("s", "r", bytes(range(64)), 0)
        assert letter.preview(width=4) == "00010203.."

    def test_format_table_mentions_depth_and_reasons(self):
        dlq = DeadLetterQueue(capacity=4)
        dlq.push("mq.decode", "CodecError: short", b"\xff", 1_000_000)
        table = dlq.format_table()
        assert "depth=1" in table
        assert "mq.decode" in table
        assert "CodecError: short" in table
        assert "ff" in table

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=0)
