"""Supervisor tests: crashes are caught, counted, and state survives."""

import pytest

from repro.obs import Telemetry
from repro.resilience import Supervisor


class TestSupervisor:
    def test_crash_is_caught_and_counted(self):
        supervisor = Supervisor()

        def poll():
            raise RuntimeError("boom")

        wrapped = supervisor.supervise(poll, role="worker-0")
        assert wrapped() == 0
        assert supervisor.restarts_by_role["worker-0"] == 1
        assert supervisor.total_restarts == 1
        assert supervisor.crash_log == [("worker-0", "RuntimeError('boom')")]

    def test_worker_state_survives_crashes(self):
        supervisor = Supervisor()
        state = {"count": 0, "crash_next": False}

        def poll():
            if state["crash_next"]:
                state["crash_next"] = False
                raise RuntimeError("injected")
            state["count"] += 1
            return 1

        wrapped = supervisor.supervise(poll, role="w")
        assert wrapped() == 1
        state["crash_next"] = True
        assert wrapped() == 0  # crash swallowed
        assert wrapped() == 1  # same closure state, work continues
        assert state["count"] == 2
        assert supervisor.total_restarts == 1

    def test_roles_counted_independently(self):
        supervisor = Supervisor()

        def crash():
            raise ValueError("x")

        a = supervisor.supervise(crash, role="a")
        b = supervisor.supervise(crash, role="b")
        a(), a(), b()
        assert supervisor.restarts_by_role == {"a": 2, "b": 1}

    def test_restart_budget_exhaustion_reraises(self):
        supervisor = Supervisor(max_restarts_per_role=2)

        def crash():
            raise RuntimeError("always")

        wrapped = supervisor.supervise(crash, role="w")
        wrapped()
        wrapped()
        with pytest.raises(RuntimeError, match="exceeded 2 restarts"):
            wrapped()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Supervisor(max_restarts_per_role=0)

    def test_registry_exposes_restarts_by_role(self):
        telemetry = Telemetry()
        supervisor = Supervisor()
        supervisor.bind_registry(telemetry.registry)

        def crash():
            raise RuntimeError("x")

        wrapped = supervisor.supervise(crash, role="rx-worker-q0")
        wrapped()
        text = telemetry.registry.exposition()
        assert 'ruru_supervisor_restarts_total{role="rx-worker-q0"} 1' in text


class TestBudgetExhaustion:
    """The re-raise path: once a role blows its budget, every further
    crash escalates — the supervisor never resumes swallowing."""

    def _always_crash(self, supervisor, role="w"):
        def crash():
            raise ValueError("persistent fault")

        return supervisor.supervise(crash, role=role)

    def test_reraise_chains_the_original_exception(self):
        supervisor = Supervisor(max_restarts_per_role=1)
        wrapped = self._always_crash(supervisor)
        wrapped()
        with pytest.raises(RuntimeError) as excinfo:
            wrapped()
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "persistent fault" in str(excinfo.value)
        assert "'w'" in str(excinfo.value)

    def test_every_crash_past_the_budget_reraises(self):
        supervisor = Supervisor(max_restarts_per_role=1)
        wrapped = self._always_crash(supervisor)
        wrapped()
        for _ in range(3):
            with pytest.raises(RuntimeError, match="exceeded 1 restarts"):
                wrapped()
        assert supervisor.restarts_by_role["w"] == 4

    def test_exhaustion_is_per_role(self):
        supervisor = Supervisor(max_restarts_per_role=1)
        a = self._always_crash(supervisor, role="a")
        b = self._always_crash(supervisor, role="b")
        a()
        with pytest.raises(RuntimeError):
            a()
        assert b() == 0  # b's budget is untouched

    def test_success_after_exhaustion_still_returns_normally(self):
        supervisor = Supervisor(max_restarts_per_role=1)
        state = {"crash": True}

        def flaky():
            if state["crash"]:
                raise ValueError("x")
            return 7

        wrapped = supervisor.supervise(flaky, role="w")
        wrapped()
        with pytest.raises(RuntimeError):
            wrapped()
        state["crash"] = False
        assert wrapped() == 7  # only crashes escalate, not calls

    def test_crash_log_is_bounded(self):
        supervisor = Supervisor()

        def crash():
            raise ValueError("x")

        wrapped = supervisor.supervise(crash, role="w")
        for _ in range(300):
            wrapped()
        assert len(supervisor.crash_log) == 256
        assert supervisor.restarts_by_role["w"] == 300


class TestRestartBudget:
    """The counting half extracted for process shards (repro.shard)."""

    def test_consume_until_exhausted(self):
        from repro.resilience import RestartBudget

        budget = RestartBudget(max_restarts=2)
        assert budget.consume("shard-0") is True
        assert budget.consume("shard-0") is True
        assert budget.consume("shard-0") is False
        assert budget.exhausted("shard-0")
        assert budget.remaining("shard-0") == 0

    def test_keys_are_independent(self):
        from repro.resilience import RestartBudget

        budget = RestartBudget(max_restarts=1)
        assert budget.consume("a") is True
        assert budget.consume("a") is False
        assert budget.consume("b") is True
        assert budget.spent_by_key == {"a": 1, "b": 1}
        assert budget.total_spent == 2

    def test_zero_budget_never_allows(self):
        from repro.resilience import RestartBudget

        budget = RestartBudget(max_restarts=0)
        assert budget.consume("x") is False
        assert budget.exhausted("x")

    def test_negative_budget_rejected(self):
        from repro.resilience import RestartBudget

        with pytest.raises(ValueError):
            RestartBudget(max_restarts=-1)

    def test_remaining_before_any_consume(self):
        from repro.resilience import RestartBudget

        assert RestartBudget(max_restarts=3).remaining("fresh") == 3
