"""Supervisor tests: crashes are caught, counted, and state survives."""

import pytest

from repro.obs import Telemetry
from repro.resilience import Supervisor


class TestSupervisor:
    def test_crash_is_caught_and_counted(self):
        supervisor = Supervisor()

        def poll():
            raise RuntimeError("boom")

        wrapped = supervisor.supervise(poll, role="worker-0")
        assert wrapped() == 0
        assert supervisor.restarts_by_role["worker-0"] == 1
        assert supervisor.total_restarts == 1
        assert supervisor.crash_log == [("worker-0", "RuntimeError('boom')")]

    def test_worker_state_survives_crashes(self):
        supervisor = Supervisor()
        state = {"count": 0, "crash_next": False}

        def poll():
            if state["crash_next"]:
                state["crash_next"] = False
                raise RuntimeError("injected")
            state["count"] += 1
            return 1

        wrapped = supervisor.supervise(poll, role="w")
        assert wrapped() == 1
        state["crash_next"] = True
        assert wrapped() == 0  # crash swallowed
        assert wrapped() == 1  # same closure state, work continues
        assert state["count"] == 2
        assert supervisor.total_restarts == 1

    def test_roles_counted_independently(self):
        supervisor = Supervisor()

        def crash():
            raise ValueError("x")

        a = supervisor.supervise(crash, role="a")
        b = supervisor.supervise(crash, role="b")
        a(), a(), b()
        assert supervisor.restarts_by_role == {"a": 2, "b": 1}

    def test_restart_budget_exhaustion_reraises(self):
        supervisor = Supervisor(max_restarts_per_role=2)

        def crash():
            raise RuntimeError("always")

        wrapped = supervisor.supervise(crash, role="w")
        wrapped()
        wrapped()
        with pytest.raises(RuntimeError, match="exceeded 2 restarts"):
            wrapped()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Supervisor(max_restarts_per_role=0)

    def test_registry_exposes_restarts_by_role(self):
        telemetry = Telemetry()
        supervisor = Supervisor()
        supervisor.bind_registry(telemetry.registry)

        def crash():
            raise RuntimeError("x")

        wrapped = supervisor.supervise(crash, role="rx-worker-q0")
        wrapped()
        text = telemetry.registry.exposition()
        assert 'ruru_supervisor_restarts_total{role="rx-worker-q0"} 1' in text
