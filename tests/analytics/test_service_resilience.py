"""Analytics service under the resilience layer.

Covers the failure paths the chaos harness exercises end-to-end, but
surgically: undecodable payloads dead-letter, a failing enricher trips
its breaker and degrades instead of dropping, and failing TSDB writes
defer/retry/shed — all while the conservation ledger stays balanced.
"""

import pytest

from repro.analytics.service import AnalyticsService, LATENCY_TOPIC
from repro.core.latency import LatencyRecord
from repro.mq.codec import decode_enriched, encode_latency_record
from repro.mq.frames import Message
from repro.mq.socket import Context
from repro.resilience import ResilienceLayer

NS_PER_MS = 1_000_000


def _record(i=0, timestamp_ns=None):
    return LatencyRecord(
        src_ip=0x0A000001 + i,
        dst_ip=0x14000001,
        src_port=40_000 + i,
        dst_port=443,
        internal_ns=10 * NS_PER_MS,
        external_ns=140 * NS_PER_MS,
        syn_ns=(timestamp_ns or (1_000_000_000 + i * 1_000_000)),
        synack_ns=(timestamp_ns or (1_000_000_000 + i * 1_000_000)) + 150 * NS_PER_MS,
        ack_ns=(timestamp_ns or (1_000_000_000 + i * 1_000_000)) + 160 * NS_PER_MS,
        queue_id=0,
        rss_hash=0xABC + i,
    )


def _service(geo_asn, layer, **kwargs):
    geo, asn = geo_asn
    return AnalyticsService(
        Context(), geo, asn, resilience=layer, num_workers=1, **kwargs
    )


def _feed(service, records):
    push = service.connect_pipeline()
    for record in records:
        push.send(Message.with_topic(LATENCY_TOPIC, encode_latency_record(record)))
    service.poll(max_messages=1 << 20)


class _BrokenGeo:
    """A geo database that always raises (hard dependency outage)."""

    def lookup(self, address):
        raise RuntimeError("geo backend down")


class _FlakyTsdb:
    """Fails the first *failures* write batches, then recovers."""

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = failures
        self.attempts = 0

    def write_batch(self, points):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise RuntimeError("store unavailable")
        return self.inner.write_batch(points)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestDecodeFailures:
    def test_garbage_routed_to_dlq(self, geo_asn):
        layer = ResilienceLayer(seed=1)
        service = _service(geo_asn, layer)
        push = service.connect_pipeline()
        push.send(Message.with_topic(LATENCY_TOPIC, b"\xde\xad\xbe\xef"))
        service.poll()
        assert service.decode_errors == 1
        assert service.deadlettered == 1
        assert len(layer.dlq) == 1
        letter = layer.dlq.entries()[0]
        assert letter.stage == "mq.decode"
        assert letter.reason.startswith("CodecError")
        assert letter.payload == b"\xde\xad\xbe\xef"
        service.conservation_ledger().check()

    def test_dlq_reasons_have_digits_collapsed(self, geo_asn):
        # Metric label cardinality must stay bounded: lengths and
        # offsets inside exception text collapse to 'N'.
        layer = ResilienceLayer(seed=1)
        service = _service(geo_asn, layer)
        push = service.connect_pipeline()
        push.send(Message.with_topic(LATENCY_TOPIC, b"\x01" + b"x" * 7))
        push.send(Message.with_topic(LATENCY_TOPIC, b"\x01" + b"x" * 11))
        service.poll()
        reasons = {reason for _, reason in layer.dlq.summary()}
        assert len(reasons) == 1
        assert not any(ch.isdigit() for reason in reasons for ch in reason)

    def test_without_layer_decode_failures_still_counted(self, geo_asn):
        geo, asn = geo_asn
        service = AnalyticsService(Context(), geo, asn, num_workers=1)
        push = service.connect_pipeline()
        push.send(Message.with_topic(LATENCY_TOPIC, b"junk"))
        service.poll()
        assert service.decode_errors == 1
        assert service.dropped_records == 1
        service.conservation_ledger().check()


class TestEnrichmentBreaker:
    def test_degrades_instead_of_dropping(self, geo_asn):
        _, asn = geo_asn
        layer = ResilienceLayer(seed=1)
        service = AnalyticsService(
            Context(), _BrokenGeo(), asn, resilience=layer, num_workers=1
        )
        sub = service.subscribe_frontend()
        _feed(service, [_record(i) for i in range(20)])
        # Every record published; none lost to the dead dependency.
        assert service.processed == service.records_in == 20
        service.conservation_ledger().check()
        # The breaker tripped after its failure threshold...
        assert layer.enrich_breaker.opened_count >= 1
        assert layer.enrich_failures >= layer.enrich_breaker.failure_threshold
        # ...and open-breaker records short-circuited to degraded.
        assert layer.degraded_published == 20
        measurements = [decode_enriched(m.payload[0]) for m in sub.recv_all()]
        assert len(measurements) == 20
        assert all(m.degraded for m in measurements)
        assert all(m.src_country == "ZZ" for m in measurements)

    def test_degraded_keeps_latency_components(self, geo_asn):
        _, asn = geo_asn
        layer = ResilienceLayer(seed=1)
        service = AnalyticsService(
            Context(), _BrokenGeo(), asn, resilience=layer, num_workers=1
        )
        sub = service.subscribe_frontend()
        _feed(service, [_record(0)])
        measurement = decode_enriched(sub.recv_all()[0].payload[0])
        assert measurement.internal_ns == 10 * NS_PER_MS
        assert measurement.external_ns == 140 * NS_PER_MS

    def test_healthy_enricher_never_degrades(self, geo_asn):
        layer = ResilienceLayer(seed=1)
        service = _service(geo_asn, layer)
        _feed(service, [_record(i) for i in range(5)])
        assert layer.degraded_published == 0
        assert layer.enrich_breaker.opened_count == 0


class TestGuardedWrites:
    def test_transient_failure_retries_then_lands(self, geo_asn):
        layer = ResilienceLayer(seed=1)
        service = _service(geo_asn, layer)
        flaky = _FlakyTsdb(service.tsdb, failures=1)
        service.tsdb = flaky
        _feed(service, [_record(0)])
        service.finish()
        assert layer.tsdb_write_failures == 1
        assert layer.retries >= 1
        assert layer.points_written > 0
        service.conservation_ledger().check()

    def test_dead_store_sheds_points_with_accounting(self, geo_asn):
        layer = ResilienceLayer(seed=1)
        service = _service(geo_asn, layer)
        service.tsdb = _FlakyTsdb(service.tsdb, failures=1 << 30)
        _feed(service, [_record(i) for i in range(10)])
        service.finish()
        # Nothing landed; every point was shed *and counted*.
        assert layer.points_written == 0
        assert layer.points_lost > 0
        assert len(layer.retry_queue) == 0
        assert layer.tsdb_breaker.opened_count >= 1
        # Records still published downstream — losing the store does
        # not lose the measurement feed.
        assert service.processed == service.records_in == 10
        service.conservation_ledger().check()

    def test_open_breaker_defers_without_hammering(self, geo_asn):
        layer = ResilienceLayer(seed=1)
        service = _service(geo_asn, layer)
        flaky = _FlakyTsdb(service.tsdb, failures=1 << 30)
        service.tsdb = flaky
        _feed(service, [_record(i) for i in range(10)])
        # Once open, the breaker stops write attempts: far fewer
        # attempts than records.
        assert flaky.attempts < 10
        assert layer.tsdb_breaker.opened_count >= 1
