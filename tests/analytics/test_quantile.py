"""P² streaming quantile tests."""

import math
import random

import pytest

from repro.analytics.quantile import P2Quantile
from repro.tsdb.functions import percentile


class TestP2Quantile:
    def test_empty(self):
        assert P2Quantile(0.99).value is None

    def test_small_sample_exact(self):
        estimator = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            estimator.add(value)
        assert estimator.value == 2.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_uniform_accuracy(self, q):
        rng = random.Random(1)
        estimator = P2Quantile(q)
        samples = [rng.uniform(0, 1000) for _ in range(10_000)]
        for value in samples:
            estimator.add(value)
        exact = percentile(samples, q * 100)
        assert abs(estimator.value - exact) < 25  # within 2.5% of range

    def test_lognormal_latency_accuracy(self):
        """The actual use case: p99 of a latency population."""
        rng = random.Random(2)
        estimator = P2Quantile(0.99)
        samples = [rng.lognormvariate(math.log(150.0), 0.25) for _ in range(20_000)]
        for value in samples:
            estimator.add(value)
        exact = percentile(samples, 99)
        assert abs(estimator.value - exact) / exact < 0.08

    def test_monotone_stream(self):
        estimator = P2Quantile(0.9)
        for value in range(1, 1001):
            estimator.add(float(value))
        assert abs(estimator.value - 900) < 30

    def test_constant_stream(self):
        estimator = P2Quantile(0.95)
        for _ in range(100):
            estimator.add(42.0)
        assert estimator.value == pytest.approx(42.0)

    def test_estimate_within_observed_range(self):
        rng = random.Random(3)
        estimator = P2Quantile(0.75)
        low, high = math.inf, -math.inf
        for _ in range(500):
            value = rng.gauss(100, 15)
            low, high = min(low, value), max(high, value)
            estimator.add(value)
        assert low <= estimator.value <= high

    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)
