"""Space-Saving top-K tests."""

import random

import pytest

from repro.analytics.topk import SpaceSaving


class TestSpaceSaving:
    def test_exact_under_capacity(self):
        tracker = SpaceSaving(capacity=10)
        for key, count in (("a", 5), ("b", 3), ("c", 1)):
            tracker.add(key, count)
        top = tracker.top(3)
        assert [(e.key, e.count, e.error) for e in top] == [
            ("a", 5, 0), ("b", 3, 0), ("c", 1, 0)
        ]

    def test_memory_bounded(self):
        tracker = SpaceSaving(capacity=20)
        rng = random.Random(1)
        for _ in range(10_000):
            tracker.add(rng.randrange(1000))
        assert len(tracker) <= 20

    def test_heavy_hitters_survive_noise(self):
        """Items above the N/m guarantee must be reported."""
        tracker = SpaceSaving(capacity=50)
        rng = random.Random(2)
        # Three genuinely heavy keys among a sea of one-off noise.
        for _ in range(2000):
            tracker.add("heavy-1")
        for _ in range(1500):
            tracker.add("heavy-2")
        for _ in range(1000):
            tracker.add("heavy-3")
        for i in range(3000):
            tracker.add(f"noise-{i}")
        top_keys = [entry.key for entry in tracker.top(3)]
        assert set(top_keys) == {"heavy-1", "heavy-2", "heavy-3"}

    def test_error_bound_holds(self):
        tracker = SpaceSaving(capacity=10)
        rng = random.Random(3)
        truth = {}
        for _ in range(5000):
            key = rng.randrange(100)
            truth[key] = truth.get(key, 0) + 1
            tracker.add(key)
        bound = tracker.error_bound
        for entry in tracker.top(10):
            true_count = truth.get(entry.key, 0)
            assert entry.count >= true_count  # never underestimates
            assert entry.count - true_count <= bound + 1e-9
            assert entry.error <= bound

    def test_guaranteed_top(self):
        tracker = SpaceSaving(capacity=100)
        for _ in range(1000):
            tracker.add("dominant")
        for i in range(50):
            tracker.add(f"minor-{i}")
        guaranteed = tracker.guaranteed_top(1)
        assert guaranteed and guaranteed[0].key == "dominant"

    def test_interleaved_increments(self):
        tracker = SpaceSaving(capacity=4)
        for _ in range(3):
            for key in ("a", "b", "c", "d"):
                tracker.add(key)
        tracker.add("e")  # evicts one of the minimum counters
        assert len(tracker) == 4
        entry = next(x for x in tracker.top(4) if x.key == "e")
        assert entry.error == 3  # inherited the evicted floor

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(capacity=0)
        tracker = SpaceSaving(capacity=1)
        with pytest.raises(ValueError):
            tracker.add("x", count=0)
        with pytest.raises(ValueError):
            tracker.top(0)

    def test_pair_tracking_use_case(self, small_workload):
        """Busiest city pairs from a real measurement stream."""
        from repro.core.pipeline import RuruPipeline
        from repro.geo.builder import GeoDbBuilder

        generator, packets = small_workload
        geo, _ = GeoDbBuilder(plan=generator.plan, country_accuracy=1.0).build()
        pipeline = RuruPipeline()
        pipeline.run_packets(packets)
        tracker = SpaceSaving(capacity=32)
        for record in pipeline.measurements:
            src = geo.lookup(record.src_ip)
            dst = geo.lookup(record.dst_ip)
            if src and dst:
                tracker.add((src.city, dst.city))
        top = tracker.top(5)
        assert top
        # The default population makes Auckland the dominant source.
        assert any(entry.key[0] == "Auckland" for entry in top)
