"""Pair aggregation tests."""

import math

import pytest

from repro.analytics.aggregator import PairAggregator, PairStats
from repro.analytics.enricher import EnrichedMeasurement

S = 1_000_000_000
MS = 1_000_000


def _measurement(t_ns, total_ms=100.0, src_city="Auckland", dst_city="Los Angeles",
                 src_asn=1, dst_asn=2):
    total_ns = int(total_ms * MS)
    return EnrichedMeasurement(
        timestamp_ns=t_ns, internal_ns=total_ns // 10,
        external_ns=total_ns - total_ns // 10,
        src_country="NZ", src_city=src_city, src_lat=-36.8, src_lon=174.7,
        src_asn=src_asn, dst_country="US", dst_city=dst_city,
        dst_lat=34.0, dst_lon=-118.2, dst_asn=dst_asn,
    )


class TestPairStats:
    def test_welford_matches_direct(self):
        stats = PairStats()
        values = [3.0, 7.0, 7.0, 19.0]
        for value in values:
            stats.add(value)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert stats.count == 4
        assert stats.mean == pytest.approx(mean)
        assert stats.stddev == pytest.approx(math.sqrt(variance))
        assert stats.min_value == 3.0
        assert stats.max_value == 19.0

    def test_single_sample(self):
        stats = PairStats()
        stats.add(5.0)
        assert stats.stddev == 0.0


class TestPairAggregator:
    def test_window_flush_on_boundary(self):
        aggregator = PairAggregator(window_ns=S)
        aggregator.add(_measurement(int(0.2 * S), total_ms=100))
        aggregator.add(_measurement(int(0.8 * S), total_ms=200))
        assert aggregator.flushed == []  # window still open
        aggregator.add(_measurement(int(1.1 * S), total_ms=300))
        # First window flushed with the two samples.
        location_points = [
            p for p in aggregator.flushed if p.measurement == "latency_by_location"
        ]
        assert len(location_points) == 1
        point = location_points[0]
        assert point.timestamp_ns == 0
        assert point.fields["connections"] == 2
        assert point.fields["mean_ms"] == 150.0
        assert point.fields["min_ms"] == 100.0
        assert point.fields["max_ms"] == 200.0

    def test_both_rollup_measurements_emitted(self):
        aggregator = PairAggregator(window_ns=S)
        aggregator.add(_measurement(0))
        points = aggregator.flush()
        names = {point.measurement for point in points}
        assert names == {"latency_by_location", "latency_by_asn"}

    def test_asn_tags_are_strings(self):
        aggregator = PairAggregator(window_ns=S)
        aggregator.add(_measurement(0, src_asn=64500, dst_asn=64511))
        asn_point = [
            p for p in aggregator.flush() if p.measurement == "latency_by_asn"
        ][0]
        assert asn_point.tags == {"src_asn": "64500", "dst_asn": "64511"}

    def test_separate_pairs_separate_cells(self):
        aggregator = PairAggregator(window_ns=S)
        aggregator.add(_measurement(0, dst_city="Los Angeles"))
        aggregator.add(_measurement(0, dst_city="Seattle"))
        location_points = [
            p for p in aggregator.flush()
            if p.measurement == "latency_by_location"
        ]
        assert len(location_points) == 2

    def test_emit_callback(self):
        batches = []
        aggregator = PairAggregator(window_ns=S, emit=batches.append)
        aggregator.add(_measurement(0))
        aggregator.flush()
        assert len(batches) == 1
        assert aggregator.flushed == []

    def test_late_arrival_folds_into_current_window(self):
        aggregator = PairAggregator(window_ns=S)
        aggregator.add(_measurement(2 * S))
        aggregator.add(_measurement(int(0.5 * S)))  # late
        points = aggregator.flush()
        connections = [
            p.fields["connections"] for p in points
            if p.measurement == "latency_by_location"
        ]
        assert connections == [2]

    def test_flush_empty_is_noop(self):
        assert PairAggregator().flush() == []

    def test_p99_tracking_optional(self):
        plain = PairAggregator(window_ns=S)
        plain.add(_measurement(0))
        assert "p99_ms" not in plain.flush()[0].fields

        tracking = PairAggregator(window_ns=S, track_p99=True)
        for i in range(100):
            tracking.add(_measurement(0, total_ms=100.0 + i))
        point = tracking.flush()[0]
        # p99 of 100..199 sits near the top of the range.
        assert 185.0 < point.fields["p99_ms"] <= 199.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PairAggregator(window_ns=0)
