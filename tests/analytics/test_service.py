"""Analytics service wiring tests (ZMQ in -> TSDB + frontend out)."""

import pytest

from repro.analytics.anonymize import assert_no_addresses
from repro.analytics.service import AnalyticsService
from repro.core.pipeline import RuruPipeline
from repro.mq.codec import decode_enriched
from repro.mq.frames import Message
from repro.mq.socket import Context
from repro.tsdb.query import Query


@pytest.fixture()
def service(geo_asn):
    geo, asn = geo_asn
    return AnalyticsService(Context(), geo, asn, num_workers=3)


def _run_workload(service, packets):
    pipeline = RuruPipeline(sink=service.make_sink())
    stats = pipeline.run_packets(packets)
    service.finish()
    return stats


class TestEndToEnd:
    def test_measurements_reach_tsdb(self, service, small_workload):
        _, packets = small_workload
        stats = _run_workload(service, packets)
        assert stats.measurements > 0
        assert service.enriched_count == stats.measurements
        raw = service.tsdb.query(Query("latency", "total_ms", "count"))
        assert raw.scalar() == stats.measurements

    def test_rollups_written(self, service, small_workload):
        _, packets = small_workload
        _run_workload(service, packets)
        assert "latency_by_location" in service.tsdb.measurements()
        assert "latency_by_asn" in service.tsdb.measurements()

    def test_frontend_receives_enriched(self, service, small_workload):
        _, packets = small_workload
        sub = service.subscribe_frontend()
        stats = _run_workload(service, packets)
        messages = sub.recv_all()
        assert len(messages) == stats.measurements
        measurement = decode_enriched(messages[0].payload[0])
        assert measurement.total_ns > 0

    def test_no_addresses_downstream(self, service, small_workload):
        """The paper's privacy rule: no IP past the enricher."""
        _, packets = small_workload
        sub = service.subscribe_frontend()
        _run_workload(service, packets)
        for message in sub.recv_all():
            assert_no_addresses(decode_enriched(message.payload[0]), "frontend")
        for name in service.tsdb.measurements():
            for series in service.tsdb.storage.series_for(name):
                assert_no_addresses(series.tags, f"tsdb tags ({name})")

    def test_tsdb_tagged_by_geography(self, service, small_workload):
        _, packets = small_workload
        _run_workload(service, packets)
        countries = service.tsdb.tag_values("latency", "src_country")
        assert "NZ" in countries


class TestFilters:
    def test_filter_drops_measurements(self, geo_asn, small_workload):
        geo, asn = geo_asn
        _, packets = small_workload
        keep_nz_sources = lambda m: m.src_country == "NZ"
        service = AnalyticsService(
            Context(), geo, asn, filters=[keep_nz_sources]
        )
        _run_workload(service, packets)
        assert service.filtered_out > 0
        sources = service.tsdb.tag_values("latency", "src_country")
        assert sources == ["NZ"]


class TestRobustness:
    def test_decode_errors_counted(self, service):
        push = service.connect_pipeline()
        push.send(Message.with_topic(b"latency", b"\xff\xffgarbage"))
        service.poll()
        assert service.decode_errors == 1

    def test_workers_round_robin(self, service, small_workload):
        _, packets = small_workload
        _run_workload(service, packets)
        counts = [worker.stats.enriched for worker in service.enrichers]
        assert max(counts) - min(counts) <= 1

    def test_store_raw_points_can_be_disabled(self, geo_asn, small_workload):
        geo, asn = geo_asn
        _, packets = small_workload
        service = AnalyticsService(Context(), geo, asn, store_raw_points=False)
        _run_workload(service, packets)
        assert "latency" not in service.tsdb.measurements()
        assert "latency_by_location" in service.tsdb.measurements()

    def test_validation(self, geo_asn):
        geo, asn = geo_asn
        with pytest.raises(ValueError):
            AnalyticsService(Context(), geo, asn, num_workers=0)
