"""Enrichment tests."""

import random

from repro.analytics.enricher import (
    UNKNOWN_ASN,
    UNKNOWN_CITY,
    UNKNOWN_COUNTRY,
    Enricher,
)
from repro.core.latency import LatencyRecord


def _record(src_ip, dst_ip, internal=10_000_000, external=140_000_000):
    return LatencyRecord(
        src_ip=src_ip, dst_ip=dst_ip, src_port=40000, dst_port=443,
        internal_ns=internal, external_ns=external,
        syn_ns=0, synack_ns=external, ack_ns=external + internal,
    )


class TestEnricher:
    def test_resolves_both_endpoints(self, plan, geo_asn):
        geo, asn = geo_asn
        enricher = Enricher(geo, asn)
        rng = random.Random(1)
        akl = plan.city_index("Auckland")
        la = plan.city_index("Los Angeles")
        record = _record(plan.random_host(akl, rng), plan.random_host(la, rng))
        measurement = enricher.enrich(record)
        assert measurement.src_city == "Auckland"
        assert measurement.src_country == "NZ"
        assert measurement.dst_city == "Los Angeles"
        assert measurement.dst_country == "US"
        assert measurement.src_asn in (
            plan.incumbent_asn(akl), plan.carveout_asn(akl)
        )
        assert enricher.stats.enriched == 1

    def test_latencies_carried_through(self, plan, geo_asn):
        geo, asn = geo_asn
        enricher = Enricher(geo, asn)
        rng = random.Random(2)
        record = _record(
            plan.random_host(0, rng), plan.random_host(1, rng),
            internal=7_000_000, external=93_000_000,
        )
        measurement = enricher.enrich(record)
        assert measurement.internal_ns == 7_000_000
        assert measurement.external_ns == 93_000_000
        assert measurement.total_ms == 100.0
        assert measurement.timestamp_ns == record.timestamp_ns

    def test_unknown_address_tagged(self, geo_asn):
        geo, asn = geo_asn
        enricher = Enricher(geo, asn)
        measurement = enricher.enrich(_record(1, 2))  # far outside the plan
        assert measurement.src_country == UNKNOWN_COUNTRY
        assert measurement.src_city == UNKNOWN_CITY
        assert measurement.src_asn == UNKNOWN_ASN
        assert enricher.stats.geo_misses == 2

    def test_drop_unresolved_policy(self, geo_asn):
        geo, asn = geo_asn
        enricher = Enricher(geo, asn, drop_unresolved=True)
        assert enricher.enrich(_record(1, 2)) is None
        assert enricher.stats.dropped_unresolved == 1

    def test_partial_resolution_kept_even_when_dropping(self, plan, geo_asn):
        geo, asn = geo_asn
        enricher = Enricher(geo, asn, drop_unresolved=True)
        rng = random.Random(3)
        record = _record(plan.random_host(0, rng), 2)
        measurement = enricher.enrich(record)
        assert measurement is not None
        assert measurement.dst_country == UNKNOWN_COUNTRY

    def test_pair_properties(self, plan, geo_asn):
        geo, asn = geo_asn
        enricher = Enricher(geo, asn)
        rng = random.Random(4)
        measurement = enricher.enrich(
            _record(plan.random_host(0, rng), plan.random_host(6, rng))
        )
        assert measurement.location_pair == (
            plan.cities[0].name, plan.cities[6].name
        )
        assert measurement.asn_pair[0] > 0
