"""Privacy boundary tests."""

import pytest

from repro.analytics.anonymize import (
    PrivacyViolation,
    assert_no_addresses,
    find_addresses,
    truncate_ipv4,
    truncate_ipv6,
)
from repro.net.addresses import ip_to_int


class TestTruncation:
    def test_ipv4_keep_24(self):
        address = ip_to_int("192.168.45.200")
        assert truncate_ipv4(address, 24) == ip_to_int("192.168.45.0")

    def test_ipv4_keep_zero_bits(self):
        assert truncate_ipv4(ip_to_int("1.2.3.4"), 0) == 0

    def test_ipv4_keep_all(self):
        address = ip_to_int("9.9.9.9")
        assert truncate_ipv4(address, 32) == address

    def test_ipv6_keep_48(self):
        address = (0x20010DB8ABCD << 80) | 0xFFFF
        assert truncate_ipv6(address, 48) == 0x20010DB8ABCD << 80

    def test_validation(self):
        with pytest.raises(ValueError):
            truncate_ipv4(0, 33)
        with pytest.raises(ValueError):
            truncate_ipv6(0, 129)


class TestAuditor:
    def test_finds_ipv4_in_string(self):
        assert find_addresses("latency from 10.0.0.1 high") == ["10.0.0.1"]

    def test_finds_ipv6(self):
        found = find_addresses("src 2001:db8::1 dst ::")
        assert "2001:db8::1" in found

    def test_ignores_version_numbers(self):
        # Dotted strings that are not valid IPs must not trip the audit.
        assert find_addresses("release 1.2.3, build 999.1.2.3") == []

    def test_walks_nested_structures(self):
        nested = {"a": ["clean", ("also clean", {"deep": "10.1.2.3"})]}
        assert find_addresses(nested) == ["10.1.2.3"]

    def test_walks_dataclasses(self):
        from dataclasses import dataclass

        @dataclass
        class Holder:
            note: str

        assert find_addresses(Holder(note="leak 8.8.8.8")) == ["8.8.8.8"]

    def test_assert_raises_on_leak(self):
        with pytest.raises(PrivacyViolation):
            assert_no_addresses({"msg": "from 10.0.0.1"}, context="tsdb point")

    def test_assert_passes_clean(self):
        assert_no_addresses({"city": "Auckland", "ms": 130.5})
