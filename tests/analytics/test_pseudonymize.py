"""Prefix-preserving pseudonymization tests."""

import random

import pytest

from repro.analytics.pseudonymize import PrefixPreservingAnonymizer
from repro.net.addresses import ip_to_int


@pytest.fixture()
def anonymizer():
    return PrefixPreservingAnonymizer(key=b"test-key-0123456789")


class TestBasicProperties:
    def test_deterministic_same_key(self):
        a = PrefixPreservingAnonymizer(key=b"k1")
        b = PrefixPreservingAnonymizer(key=b"k1")
        address = ip_to_int("192.168.1.77")
        assert a.anonymize(address) == b.anonymize(address)

    def test_different_keys_differ(self):
        a = PrefixPreservingAnonymizer(key=b"k1")
        b = PrefixPreservingAnonymizer(key=b"k2")
        address = ip_to_int("192.168.1.77")
        assert a.anonymize(address) != b.anonymize(address)

    def test_injective_on_sample(self, anonymizer):
        rng = random.Random(1)
        addresses = {rng.getrandbits(32) for _ in range(2000)}
        pseudonyms = {anonymizer.anonymize(a) for a in addresses}
        assert len(pseudonyms) == len(addresses)

    def test_output_in_range(self, anonymizer):
        rng = random.Random(2)
        for _ in range(200):
            assert 0 <= anonymizer.anonymize(rng.getrandbits(32)) < (1 << 32)

    def test_address_usually_changes(self, anonymizer):
        rng = random.Random(3)
        unchanged = sum(
            1 for _ in range(500)
            if (a := rng.getrandbits(32)) == anonymizer.anonymize(a)
        )
        assert unchanged == 0  # probability ~2^-32 each


class TestPrefixPreservation:
    def test_exact_shared_prefix_preserved(self, anonymizer):
        rng = random.Random(4)
        for _ in range(300):
            a = rng.getrandbits(32)
            # Flip one bit at a random depth: shared prefix = depth.
            depth = rng.randrange(32)
            b = a ^ (1 << (31 - depth))
            assert anonymizer.verify_prefix_preservation(a, b)

    def test_same_subnet_stays_same_subnet(self, anonymizer):
        base = ip_to_int("10.20.30.0")
        pseudo_net = anonymizer.anonymize(base) >> 8
        for host in range(1, 50):
            assert anonymizer.anonymize(base + host) >> 8 == pseudo_net

    def test_unrelated_addresses_unrelated(self, anonymizer):
        a = ip_to_int("10.0.0.1")       # leading bit 0
        b = ip_to_int("192.168.0.1")    # leading bit 1
        shared = anonymizer.shared_prefix_len(
            anonymizer.anonymize(a), anonymizer.anonymize(b), 32
        )
        assert shared == 0


class TestIpv6Width:
    def test_128_bit(self):
        anonymizer = PrefixPreservingAnonymizer(key=b"v6", width=128)
        rng = random.Random(5)
        a = rng.getrandbits(128)
        b = a ^ (1 << 60)  # shared /67 prefix
        assert anonymizer.verify_prefix_preservation(a, b)

    def test_width_guard(self):
        anonymizer = PrefixPreservingAnonymizer(key=b"k", width=32)
        with pytest.raises(ValueError):
            anonymizer.anonymize(1 << 32)

    def test_alias_guard(self):
        anonymizer = PrefixPreservingAnonymizer(key=b"k", width=128)
        with pytest.raises(ValueError):
            anonymizer.anonymize_ipv4(1)


class TestValidation:
    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(key=b"")

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(key=b"k", width=0)

    def test_shared_prefix_len(self):
        f = PrefixPreservingAnonymizer.shared_prefix_len
        assert f(0b1100, 0b1100, 4) == 4
        assert f(0b1100, 0b1101, 4) == 3
        assert f(0b1100, 0b0100, 4) == 0
