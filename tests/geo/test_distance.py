"""Great-circle geometry tests."""

import pytest

from repro.geo.distance import (
    haversine_km,
    propagation_delay_ms,
    rtt_floor_ms,
)
from repro.geo.locations import city_by_name


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_auckland_la_known_distance(self):
        akl = city_by_name("Auckland")
        la = city_by_name("Los Angeles")
        distance = haversine_km(akl.lat, akl.lon, la.lat, la.lon)
        # Real-world great-circle distance is ~10,480 km.
        assert 10300 < distance < 10700

    def test_symmetry(self):
        a = haversine_km(-36.8, 174.7, 34.0, -118.2)
        b = haversine_km(34.0, -118.2, -36.8, 174.7)
        assert abs(a - b) < 1e-9

    def test_antipodal_near_half_circumference(self):
        distance = haversine_km(0, 0, 0, 180)
        assert 19900 < distance < 20100


class TestDelay:
    def test_propagation_delay_scales_linearly(self):
        assert propagation_delay_ms(200, path_stretch=1.0) == pytest.approx(1.0)
        assert propagation_delay_ms(2000, path_stretch=1.0) == pytest.approx(10.0)

    def test_auckland_la_rtt_floor_plausible(self):
        akl = city_by_name("Auckland")
        la = city_by_name("Los Angeles")
        floor = rtt_floor_ms(akl.lat, akl.lon, la.lat, la.lon)
        # Observed Auckland-LA RTTs run ~120-140 ms; the fibre floor
        # with 1.3x stretch should land just below that.
        assert 100 < floor < 160

    def test_validation(self):
        with pytest.raises(ValueError):
            propagation_delay_ms(-1)
        with pytest.raises(ValueError):
            propagation_delay_ms(100, path_stretch=0.5)
