"""Synthetic geo plan and builder tests."""

import random

import pytest

from repro.geo.builder import GeoDbBuilder, SyntheticGeoPlan
from repro.geo.locations import WORLD_CITIES


class TestSyntheticGeoPlan:
    def test_blocks_are_disjoint_per_city(self, plan):
        starts = {plan.block_start(i) for i in range(len(plan.cities))}
        assert len(starts) == len(plan.cities)
        for i in range(len(plan.cities) - 1):
            assert plan.block_end(i) < plan.block_start(i + 1)

    def test_city_of_ground_truth(self, plan):
        rng = random.Random(1)
        for index in (0, 5, len(plan.cities) - 1):
            host = plan.random_host(index, rng)
            assert plan.city_of(host) is plan.cities[index]

    def test_city_of_outside_plan(self, plan):
        assert plan.city_of(plan.block_start(0) - 1) is None
        assert plan.city_of(plan.block_end(len(plan.cities) - 1) + 1) is None

    def test_asn_ground_truth_carveout(self, plan):
        start = plan.block_start(3)
        assert plan.asn_of(start + 0x1000) == plan.incumbent_asn(3)
        assert plan.asn_of(start + 0xC000) == plan.carveout_asn(3)
        assert plan.asn_of(start + 0xFFFF) == plan.carveout_asn(3)

    def test_city_index(self, plan):
        assert plan.cities[plan.city_index("Auckland")].name == "Auckland"
        with pytest.raises(KeyError):
            plan.city_index("Atlantis")

    def test_random_host_stays_in_block(self, plan):
        rng = random.Random(2)
        for _ in range(100):
            host = plan.random_host(7, rng)
            assert plan.block_start(7) < host < plan.block_end(7)

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            SyntheticGeoPlan(base_network="20.0.1.0")

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            SyntheticGeoPlan(cities=WORLD_CITIES, base_network="255.240.0.0")


class TestGeoDbBuilder:
    def test_perfect_accuracy_resolves_everything(self, plan):
        geo, asn = GeoDbBuilder(plan=plan, country_accuracy=1.0).build()
        rng = random.Random(3)
        for index, city in enumerate(plan.cities):
            host = plan.random_host(index, rng)
            geo_record = geo.lookup(host)
            assert geo_record is not None
            assert geo_record.country_code == city.country_code
            assert geo_record.city == city.name
            as_record = asn.lookup(host)
            assert as_record is not None
            assert as_record.asn == plan.asn_of(host)

    def test_accuracy_knob_mislabels_fraction(self, plan):
        builder = GeoDbBuilder(plan=plan, country_accuracy=0.9, ranges_per_city=16)
        builder.build_geo()
        total_rows = len(plan.cities) * 16
        observed = builder.mislabelled_rows / total_rows
        assert 0.04 < observed < 0.18  # binomial noise around 0.10

    def test_measured_country_accuracy_near_knob(self, plan):
        geo = GeoDbBuilder(plan=plan, country_accuracy=0.98, seed=5).build_geo()
        rng = random.Random(6)
        correct = total = 0
        for _ in range(3000):
            index = rng.randrange(len(plan.cities))
            host = plan.random_host(index, rng)
            result = geo.lookup(host)
            total += 1
            if result and result.country_code == plan.cities[index].country_code:
                correct += 1
        assert 0.95 < correct / total <= 1.0

    def test_deterministic_by_seed(self, plan):
        a = GeoDbBuilder(plan=plan, country_accuracy=0.9, seed=11)
        b = GeoDbBuilder(plan=plan, country_accuracy=0.9, seed=11)
        a.build_geo()
        b.build_geo()
        assert a.mislabelled_rows == b.mislabelled_rows

    def test_validation(self):
        with pytest.raises(ValueError):
            GeoDbBuilder(country_accuracy=1.5)
        with pytest.raises(ValueError):
            GeoDbBuilder(ranges_per_city=7)  # does not divide 65536
