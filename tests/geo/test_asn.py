"""AS database tests."""

from repro.geo.asn import AsnDatabase, AsRecord
from repro.net.addresses import ip_to_int


class TestAsnDatabase:
    def test_lookup_basic(self):
        db = AsnDatabase()
        db.add_prefix(ip_to_int("10.0.0.0"), 8, AsRecord(64500, "TestNet"))
        result = db.lookup(ip_to_int("10.20.30.40"))
        assert result.asn == 64500
        assert result.name == "TestNet"

    def test_more_specific_announcement_wins(self):
        db = AsnDatabase()
        db.add_prefix(ip_to_int("10.0.0.0"), 8, AsRecord(100, "wide"))
        db.add_prefix(ip_to_int("10.5.0.0"), 16, AsRecord(200, "narrow"))
        assert db.lookup(ip_to_int("10.5.1.1")).asn == 200
        assert db.lookup(ip_to_int("10.6.1.1")).asn == 100

    def test_unannounced_misses(self):
        db = AsnDatabase()
        db.add_prefix(ip_to_int("10.0.0.0"), 8, AsRecord(1, "x"))
        assert db.lookup(ip_to_int("11.0.0.1")) is None
        assert db.misses == 1
        assert db.hit_rate == 0.0

    def test_hit_rate(self):
        db = AsnDatabase()
        db.add_prefix(0, 1, AsRecord(1, "half-the-internet"))
        db.lookup(10)          # hit (top bit 0)
        db.lookup(1 << 31)     # miss
        assert db.hit_rate == 0.5

    def test_len(self):
        db = AsnDatabase()
        db.add_prefix(ip_to_int("10.0.0.0"), 8, AsRecord(1, "a"))
        db.add_prefix(ip_to_int("11.0.0.0"), 8, AsRecord(2, "b"))
        assert len(db) == 2
