"""City catalog tests."""

from repro.geo.locations import WORLD_CITIES, cities_in_country, city_by_name


class TestCatalog:
    def test_deployment_cities_present(self):
        # The paper's deployment endpoints must exist.
        for name in ("Auckland", "Los Angeles", "Wellington"):
            assert city_by_name(name) is not None

    def test_lookup_case_insensitive(self):
        assert city_by_name("auckland").name == "Auckland"
        assert city_by_name("LOS ANGELES").name == "Los Angeles"

    def test_unknown_city(self):
        assert city_by_name("Gotham") is None

    def test_coordinates_in_range(self):
        for city in WORLD_CITIES:
            assert -90 <= city.lat <= 90
            assert -180 <= city.lon <= 180

    def test_names_unique(self):
        names = [city.name for city in WORLD_CITIES]
        assert len(names) == len(set(names))

    def test_cities_in_country(self):
        nz = cities_in_country("nz")
        assert len(nz) >= 5
        assert all(city.country_code == "NZ" for city in nz)

    def test_auckland_coordinates(self):
        auckland = city_by_name("Auckland")
        assert abs(auckland.lat - (-36.8485)) < 0.01
        assert abs(auckland.lon - 174.7633) < 0.01
