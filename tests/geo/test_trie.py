"""Radix trie LPM tests."""

import random

import pytest

from repro.geo.trie import RadixTrie
from repro.net.addresses import ip_to_int


class TestRadixTrie:
    def test_exact_and_lpm(self):
        trie = RadixTrie(width=32)
        trie.insert(ip_to_int("10.0.0.0"), 8, "ten-eight")
        trie.insert(ip_to_int("10.1.0.0"), 16, "ten-one")
        assert trie.lookup(ip_to_int("10.1.2.3")) == "ten-one"
        assert trie.lookup(ip_to_int("10.9.9.9")) == "ten-eight"
        assert trie.lookup(ip_to_int("11.0.0.1")) is None

    def test_more_specific_wins(self):
        trie = RadixTrie(width=32)
        trie.insert(ip_to_int("192.168.0.0"), 16, "wide")
        trie.insert(ip_to_int("192.168.1.0"), 24, "narrow")
        trie.insert(ip_to_int("192.168.1.128"), 25, "narrowest")
        assert trie.lookup(ip_to_int("192.168.1.200")) == "narrowest"
        assert trie.lookup(ip_to_int("192.168.1.1")) == "narrow"
        assert trie.lookup(ip_to_int("192.168.2.1")) == "wide"

    def test_default_route(self):
        trie = RadixTrie(width=32)
        trie.insert(0, 0, "default")
        assert trie.lookup(random.Random(1).getrandbits(32)) == "default"

    def test_host_route(self):
        trie = RadixTrie(width=32)
        address = ip_to_int("8.8.8.8")
        trie.insert(address, 32, "host")
        assert trie.lookup(address) == "host"
        assert trie.lookup(address + 1) is None

    def test_replace_value(self):
        trie = RadixTrie(width=32)
        trie.insert(ip_to_int("1.0.0.0"), 8, "old")
        trie.insert(ip_to_int("1.0.0.0"), 8, "new")
        assert trie.lookup(ip_to_int("1.2.3.4")) == "new"
        assert len(trie) == 1

    def test_lookup_exact(self):
        trie = RadixTrie(width=32)
        trie.insert(ip_to_int("10.0.0.0"), 8, "v")
        assert trie.lookup_exact(ip_to_int("10.0.0.0"), 8) == "v"
        assert trie.lookup_exact(ip_to_int("10.0.0.0"), 16) is None

    def test_items_enumerates_all(self):
        trie = RadixTrie(width=32)
        entries = [
            (ip_to_int("10.0.0.0"), 8, "a"),
            (ip_to_int("10.128.0.0"), 9, "b"),
            (ip_to_int("172.16.0.0"), 12, "c"),
        ]
        for prefix, length, value in entries:
            trie.insert(prefix, length, value)
        assert sorted(trie.items()) == sorted(entries)

    def test_ipv6_width(self):
        trie = RadixTrie(width=128)
        prefix = 0x20010DB8 << 96
        trie.insert(prefix, 32, "doc")
        assert trie.lookup(prefix | 0xFFFF) == "doc"

    def test_validation(self):
        trie = RadixTrie(width=32)
        with pytest.raises(ValueError):
            trie.insert(ip_to_int("10.0.0.1"), 8, "x")  # host bits set
        with pytest.raises(ValueError):
            trie.insert(0, 33, "x")
        with pytest.raises(ValueError):
            trie.insert(1 << 32, 32, "x")
        with pytest.raises(ValueError):
            trie.lookup(1 << 32)

    def test_matches_naive_lpm(self):
        rng = random.Random(42)
        trie = RadixTrie(width=32)
        unique = {}
        for _ in range(200):
            length = rng.randint(4, 28)
            prefix = rng.getrandbits(32) >> (32 - length) << (32 - length)
            unique[(prefix, length)] = f"p{len(unique)}"
        table = [(p, l, v) for (p, l), v in unique.items()]
        for prefix, length, value in table:
            trie.insert(prefix, length, value)

        def naive(address):
            best, best_len = None, -1
            for prefix, length, value in table:
                if length > best_len and (address >> (32 - length) << (32 - length)) == prefix:
                    best, best_len = value, length
            return best

        for _ in range(500):
            address = rng.getrandbits(32)
            assert trie.lookup(address) == naive(address)
