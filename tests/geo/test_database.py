"""Range-based geo database tests."""

import pytest

from repro.geo.database import GeoDatabase, GeoRecord, RangeOverlapError
from repro.net.addresses import ip_to_int


def record(city="Auckland", country="NZ"):
    return GeoRecord(
        country_code=country, country="New Zealand", city=city,
        lat=-36.8, lon=174.7,
    )


class TestGeoDatabase:
    def test_lookup_within_range(self):
        db = GeoDatabase()
        db.add_range(ip_to_int("1.0.0.0"), ip_to_int("1.0.0.255"), record())
        assert db.lookup(ip_to_int("1.0.0.128")).city == "Auckland"

    def test_lookup_boundaries_inclusive(self):
        db = GeoDatabase()
        first, last = ip_to_int("5.0.0.0"), ip_to_int("5.0.255.255")
        db.add_range(first, last, record())
        assert db.lookup(first) is not None
        assert db.lookup(last) is not None
        assert db.lookup(first - 1) is None
        assert db.lookup(last + 1) is None

    def test_multiple_ranges_routed_correctly(self):
        db = GeoDatabase()
        db.add_range(100, 199, record("A"))
        db.add_range(300, 399, record("B"))
        db.add_range(200, 299, record("C"))  # out-of-order insert
        assert db.lookup(150).city == "A"
        assert db.lookup(250).city == "C"
        assert db.lookup(350).city == "B"

    def test_gap_misses(self):
        db = GeoDatabase()
        db.add_range(100, 199, record("A"))
        db.add_range(300, 399, record("B"))
        assert db.lookup(250) is None
        assert db.misses == 1

    def test_overlap_detected_at_freeze(self):
        db = GeoDatabase()
        db.add_range(100, 200, record("A"))
        db.add_range(150, 250, record("B"))
        with pytest.raises(RangeOverlapError):
            db.freeze()

    def test_inverted_range_rejected(self):
        db = GeoDatabase()
        with pytest.raises(ValueError):
            db.add_range(200, 100, record())

    def test_add_after_freeze_rejected(self):
        db = GeoDatabase()
        db.add_range(1, 2, record())
        db.freeze()
        with pytest.raises(RuntimeError):
            db.add_range(3, 4, record())

    def test_hit_rate(self):
        db = GeoDatabase()
        db.add_range(0, 9, record())
        db.lookup(5)
        db.lookup(100)
        assert db.hit_rate == 0.5

    def test_empty_database(self):
        db = GeoDatabase()
        assert db.lookup(42) is None
        assert len(db) == 0
