"""Grafana export tests."""

import json

from repro.frontend.dashboard import build_ruru_dashboard
from repro.frontend.grafana import export_grafana_json
from repro.tsdb.ql import parse_query


class TestGrafanaExport:
    def test_valid_json_with_core_fields(self):
        dashboard = build_ruru_dashboard()
        model = json.loads(export_grafana_json(dashboard))
        assert model["title"] == dashboard.title
        assert model["schemaVersion"] == 16
        assert len(model["panels"]) == len(dashboard.panels)

    def test_panel_targets_are_parseable_influxql(self):
        """The exported query text must round-trip through our parser."""
        dashboard = build_ruru_dashboard(
            interval_ns=10 * 1_000_000_000, src_country="NZ"
        )
        model = json.loads(export_grafana_json(dashboard))
        for grafana_panel, panel in zip(model["panels"], dashboard.panels):
            text = grafana_panel["targets"][0]["query"]
            reparsed = parse_query(text)
            assert reparsed.measurement == panel.query.measurement
            assert reparsed.aggregator == panel.query.aggregator
            assert reparsed.tag_filters == panel.query.tag_filters
            assert reparsed.group_by_time_ns == panel.query.group_by_time_ns

    def test_grid_layout_no_overlap(self):
        dashboard = build_ruru_dashboard()
        model = json.loads(export_grafana_json(dashboard))
        positions = {
            (p["gridPos"]["x"], p["gridPos"]["y"]) for p in model["panels"]
        }
        assert len(positions) == len(model["panels"])

    def test_panel_ids_unique(self):
        model = json.loads(export_grafana_json(build_ruru_dashboard()))
        ids = [p["id"] for p in model["panels"]]
        assert len(ids) == len(set(ids))

    def test_units_mapped(self):
        model = json.loads(export_grafana_json(build_ruru_dashboard()))
        latency_panel = model["panels"][0]
        assert latency_panel["yaxes"][0]["format"] == "ms"


class TestSelfMonitoringDashboard:
    def test_exports_valid_json(self):
        from repro.frontend.grafana import build_selfmon_dashboard

        dashboard = build_selfmon_dashboard()
        model = json.loads(export_grafana_json(dashboard, uid="ruru-selfmon"))
        assert model["uid"] == "ruru-selfmon"
        assert len(model["panels"]) == len(dashboard.panels) >= 8
        measurements = {
            panel.query.measurement for panel in dashboard.panels
        }
        assert "ruru_nic_imissed_total" in measurements
        assert "ruru_tracker_events_total" in measurements

    def test_renders_against_exported_telemetry(self):
        from repro.frontend.grafana import build_selfmon_dashboard
        from repro.obs import Telemetry
        from repro.tsdb.database import TimeSeriesDatabase

        telemetry = Telemetry()
        telemetry.registry.counter(
            "ruru_packets_offered_total", help="offered"
        ).inc(100)
        tsdb = TimeSeriesDatabase()
        telemetry.export_to(tsdb)
        telemetry.flush(2_000_000_000)
        dashboard = build_selfmon_dashboard(interval_ns=1_000_000_000)
        rendered = {
            result.title: result for result in dashboard.render(tsdb)
        }
        latest = rendered["packets offered"].latest()
        assert latest["all"] == 100.0
