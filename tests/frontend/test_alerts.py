"""Alert channel tests."""

from repro.anomaly.events import AnomalyEvent, Severity
from repro.frontend.alerts import AlertChannel


def _event(kind="latency-spike", severity=Severity.CRITICAL, start_ns=5_000_000_000):
    return AnomalyEvent(
        kind=kind, start_ns=start_ns, severity=severity,
        description="latency 4000 ms vs baseline 190 ms",
        subject="NZ->US",
        evidence={"observed_ms": 4000.123456},
    )


class TestAlertChannel:
    def test_publish_serializes_event(self):
        alerts = AlertChannel()
        alerts.publish(_event())
        messages = alerts.unacknowledged()
        assert len(messages) == 1
        message = messages[0]
        assert message["type"] == "alert"
        assert message["kind"] == "latency-spike"
        assert message["severity"] == "critical"
        assert message["color"].startswith("#")
        assert message["subject"] == "NZ->US"
        assert message["start_ms"] == 5000
        assert message["ongoing"] is True
        assert message["evidence"]["observed_ms"] == 4000.123

    def test_history_and_counter(self):
        alerts = AlertChannel()
        for _ in range(3):
            alerts.publish(_event())
        assert alerts.published == 3
        assert len(alerts.history) == 3

    def test_worst_active(self):
        alerts = AlertChannel()
        warning = _event(kind="connection-surge", severity=Severity.WARNING)
        critical = _event(kind="syn-flood", severity=Severity.CRITICAL)
        closed = _event(kind="latency-spike", severity=Severity.CRITICAL)
        closed.close(6_000_000_000)
        for event in (warning, critical, closed):
            alerts.publish(event)
        assert alerts.worst_active() is critical

    def test_worst_active_none_when_all_closed(self):
        alerts = AlertChannel()
        event = _event()
        event.close(6_000_000_000)
        alerts.publish(event)
        assert alerts.worst_active() is None

    def test_alert_storm_rate_limited(self):
        alerts = AlertChannel(burst=5, refill_per_s=1.0)
        # 50 events in the same instant: only the burst goes out.
        for i in range(50):
            alerts.publish(_event(start_ns=1_000_000_000))
        assert alerts.published == 5
        assert alerts.suppressed == 45
        assert len(alerts.history) == 50  # nothing lost, only unpushed

    def test_tokens_refill_over_time(self):
        alerts = AlertChannel(burst=2, refill_per_s=1.0)
        alerts.publish(_event(start_ns=0))
        alerts.publish(_event(start_ns=0))
        alerts.publish(_event(start_ns=0))  # bucket empty
        assert alerts.suppressed == 1
        # Three virtual seconds later, tokens are back.
        alerts.publish(_event(start_ns=3_000_000_000))
        assert alerts.published == 3

    def test_rate_limit_validation(self):
        import pytest

        with pytest.raises(ValueError):
            AlertChannel(burst=0)
        with pytest.raises(ValueError):
            AlertChannel(refill_per_s=0)

    def test_integration_with_manager(self):
        """The channel is a drop-in alert_sink for the manager."""
        import random

        from repro.anomaly.manager import AnomalyManager
        from tests.anomaly.test_latency_spike import _measurement

        S = 1_000_000_000
        alerts = AlertChannel()
        manager = AnomalyManager(alert_sink=alerts.publish)
        rng = random.Random(1)
        for i in range(60):
            manager.observe_measurement(
                _measurement(i * S, 150 + rng.uniform(-10, 10))
            )
        for i in range(5):
            manager.observe_measurement(_measurement((60 + i) * S, 4200.0))
        assert alerts.published >= 1
        assert alerts.unacknowledged()[0]["kind"] == "latency-spike"
