"""Heatmap panel tests."""

import pytest

from repro.frontend.heatmap import Heatmap, LatencyBuckets, render_heatmap
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.point import Point

S = 1_000_000_000


class TestLatencyBuckets:
    def test_clamping(self):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=1000, count=10)
        assert buckets.index_of(0.001) == 0
        assert buckets.index_of(99999.0) == 9

    def test_log_spacing_monotone(self):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=10000, count=20)
        last = -1
        for value in (1, 3, 10, 30, 100, 300, 1000, 3000, 9999):
            index = buckets.index_of(float(value))
            assert index >= last
            last = index

    def test_edges_cover_range(self):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=100, count=4)
        edges = buckets.edges()
        assert len(edges) == 5
        assert edges[0] == pytest.approx(1.0)
        assert edges[-1] == pytest.approx(100.0)

    def test_value_falls_within_its_bucket_edges(self):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=10000, count=20)
        edges = buckets.edges()
        for value in (2.5, 17.0, 140.0, 4000.0):
            index = buckets.index_of(value)
            assert edges[index] <= value <= edges[index + 1] * 1.0001

    def test_labels(self):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=100, count=2)
        assert buckets.label(0) == "1-10ms"

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyBuckets(minimum_ms=0)
        with pytest.raises(ValueError):
            LatencyBuckets(minimum_ms=10, maximum_ms=5)
        with pytest.raises(ValueError):
            LatencyBuckets(count=1)


class TestHeatmap:
    def test_windowing(self):
        heatmap = Heatmap(buckets=LatencyBuckets(), window_ns=10 * S)
        heatmap.add(1 * S, 100.0)
        heatmap.add(9 * S, 100.0)
        heatmap.add(11 * S, 100.0)
        assert heatmap.windows() == [0, 10 * S]
        assert heatmap.total == 3

    def test_hottest_bucket(self):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=10000, count=10)
        heatmap = Heatmap(buckets=buckets, window_ns=S)
        for _ in range(5):
            heatmap.add(0, 150.0)
        heatmap.add(0, 4000.0)
        assert heatmap.hottest_bucket(0) == buckets.index_of(150.0)
        assert heatmap.hottest_bucket(99 * S) is None

    def test_column_tracks_band(self):
        buckets = LatencyBuckets(minimum_ms=1, maximum_ms=10000, count=10)
        heatmap = Heatmap(buckets=buckets, window_ns=S)
        glitch_bucket = buckets.index_of(4000.0)
        heatmap.add(0, 150.0)
        heatmap.add(1 * S, 4000.0)
        heatmap.add(2 * S, 150.0)
        assert heatmap.column(glitch_bucket) == [0, 1, 0]

    def test_ascii_rendering(self):
        heatmap = Heatmap(buckets=LatencyBuckets(count=4), window_ns=S)
        heatmap.add(0, 100.0)
        text = heatmap.ascii()
        assert "|" in text
        assert len(text.splitlines()) == 4
        assert Heatmap(buckets=LatencyBuckets(), window_ns=S).ascii() == (
            "(empty heatmap)"
        )


class TestRenderFromTsdb:
    def _db(self):
        db = TimeSeriesDatabase()
        for i in range(30):
            # Steady 150 ms band, one 4000 ms glitch window at t=10-20s.
            value = 4000.0 if 10 <= i < 20 else 150.0
            db.write(Point(
                "latency", i * S,
                tags={"src_country": "NZ"},
                fields={"total_ms": value},
            ))
        return db

    def test_glitch_band_visible(self):
        heatmap = render_heatmap(self._db(), window_ns=10 * S)
        glitch_bucket = heatmap.buckets.index_of(4000.0)
        normal_bucket = heatmap.buckets.index_of(150.0)
        assert heatmap.column(glitch_bucket) == [0, 10, 0]
        assert heatmap.column(normal_bucket) == [10, 0, 10]

    def test_tag_filters_respected(self):
        db = self._db()
        db.write(Point("latency", 0, tags={"src_country": "US"},
                       fields={"total_ms": 150.0}))
        filtered = render_heatmap(
            db, window_ns=10 * S, tag_filters={"src_country": ["US"]}
        )
        assert filtered.total == 1

    def test_time_range_respected(self):
        heatmap = render_heatmap(
            self._db(), window_ns=10 * S, start_ns=10 * S, end_ns=20 * S
        )
        assert heatmap.total == 10
