"""Arc model and colour scale tests."""

import math

import pytest

from repro.analytics.enricher import EnrichedMeasurement
from repro.frontend.arcs import Arc, LatencyColorScale, great_circle_points


def _measurement(total_ms=130.0):
    total_ns = int(total_ms * 1e6)
    return EnrichedMeasurement(
        timestamp_ns=0, internal_ns=total_ns // 10,
        external_ns=total_ns - total_ns // 10,
        src_country="NZ", src_city="Auckland", src_lat=-36.85, src_lon=174.76,
        src_asn=1, dst_country="US", dst_city="Los Angeles",
        dst_lat=34.05, dst_lon=-118.24, dst_asn=2,
    )


class TestColorScale:
    def test_traffic_light_bands(self):
        scale = LatencyColorScale(warn_ms=200, alarm_ms=400)
        assert scale.color_for(130) == "green"
        assert scale.color_for(250) == "yellow"
        assert scale.color_for(4130) == "red"

    def test_boundaries(self):
        scale = LatencyColorScale(warn_ms=200, alarm_ms=400)
        assert scale.color_for(199.999) == "green"
        assert scale.color_for(200.0) == "yellow"
        assert scale.color_for(400.0) == "red"

    def test_rgba_alpha(self):
        scale = LatencyColorScale()
        for latency in (10, 300, 1000):
            r, g, b, a = scale.rgba_for(latency)
            assert 0 <= r <= 255 and 0 <= g <= 255 and 0 <= b <= 255
            assert 0 < a <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyColorScale(warn_ms=400, alarm_ms=200)
        with pytest.raises(ValueError):
            LatencyColorScale(warn_ms=0, alarm_ms=100)


class TestGreatCircle:
    def test_endpoints_exact(self):
        points = great_circle_points(-36.85, 174.76, 34.05, -118.24, segments=8)
        assert len(points) == 9
        assert points[0] == pytest.approx((-36.85, 174.76), abs=1e-6)
        assert points[-1] == pytest.approx((34.05, -118.24), abs=1e-6)

    def test_coincident_points(self):
        points = great_circle_points(10, 20, 10, 20, segments=4)
        assert all(p == (10, 20) for p in points)

    def test_points_on_sphere(self):
        points = great_circle_points(0, 0, 45, 90, segments=16)
        for lat, lon in points:
            assert -90 <= lat <= 90
            assert -180 <= lon <= 180

    def test_equator_path_stays_on_equator(self):
        points = great_circle_points(0, 0, 0, 90, segments=10)
        for lat, _lon in points:
            assert abs(lat) < 1e-9

    def test_midpoint_of_meridian(self):
        points = great_circle_points(0, 0, 90, 0, segments=2)
        assert points[1][0] == pytest.approx(45.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            great_circle_points(0, 0, 1, 1, segments=0)


class TestArc:
    def test_from_measurement(self):
        scale = LatencyColorScale()
        arc = Arc.from_measurement(_measurement(130.0), scale, born_ns=42)
        assert arc.color == "green"
        assert arc.total_ms == 130.0
        assert arc.src_label == "Auckland"
        assert arc.born_ns == 42
        # Auckland-LA is ~10,480 km; apex at 15 %.
        assert 1400 < arc.height_km < 1700

    def test_red_arc_for_glitch_latency(self):
        arc = Arc.from_measurement(_measurement(4130.0), LatencyColorScale(), 0)
        assert arc.color == "red"

    def test_json_shape(self):
        arc = Arc.from_measurement(_measurement(), LatencyColorScale(), 0)
        data = arc.to_json()
        assert set(data) == {"src", "dst", "color", "ms", "h", "from", "to"}
        assert data["from"] == "Auckland"
        assert isinstance(data["src"], list) and len(data["src"]) == 2
