"""Dashboard tests."""

from repro.frontend.dashboard import Dashboard, Panel, build_ruru_dashboard
from repro.tsdb.database import TimeSeriesDatabase
from repro.tsdb.point import Point
from repro.tsdb.query import Query

S = 1_000_000_000


def _db():
    db = TimeSeriesDatabase()
    for i in range(10):
        db.write(Point(
            "latency", i * S,
            tags={"src_country": "NZ", "dst_country": "US"},
            fields={"total_ms": 100.0 + i},
        ))
    db.write(Point(
        "latency_by_location", 0,
        tags={"src_city": "Auckland", "dst_city": "Los Angeles"},
        fields={"connections": 42.0},
    ))
    return db


class TestPanel:
    def test_render_executes_query(self):
        panel = Panel("mean", Query("latency", "total_ms", "mean"))
        result = panel.render(_db())
        assert result.title == "mean"
        assert list(result.groups.values())[0][0][1] == 104.5

    def test_render_overrides_time_range(self):
        panel = Panel("count", Query("latency", "total_ms", "count"))
        result = panel.render(_db(), start_ns=0, end_ns=5 * S)
        assert list(result.groups.values())[0][0][1] == 5.0

    def test_render_does_not_mutate_template(self):
        panel = Panel("count", Query("latency", "total_ms", "count"))
        panel.render(_db(), start_ns=3 * S)
        assert panel.query.start_ns is None

    def test_series_labels_and_latest(self):
        panel = Panel(
            "mean", Query("latency", "total_ms", "mean",
                          group_by_tags=["dst_country"], group_by_time_ns=S),
        )
        result = panel.render(_db())
        assert result.series_labels() == ["dst_country=US"]
        assert result.latest() == {"dst_country=US": 109.0}


class TestDashboard:
    def test_render_all_panels(self):
        dashboard = Dashboard("test")
        dashboard.add_panel(Panel("a", Query("latency", "total_ms", "min")))
        dashboard.add_panel(Panel("b", Query("latency", "total_ms", "max")))
        results = dashboard.render(_db())
        assert [r.title for r in results] == ["a", "b"]


class TestRuruDashboard:
    def test_contains_paper_statistics(self):
        dashboard = build_ruru_dashboard()
        titles = [panel.title for panel in dashboard.panels]
        for stat in ("min", "max", "median", "mean"):
            assert any(title.startswith(stat) for title in titles)

    def test_renders_against_populated_db(self):
        dashboard = build_ruru_dashboard(interval_ns=5 * S)
        results = dashboard.render(_db())
        mean_panel = next(r for r in results if r.title.startswith("mean"))
        rows = mean_panel.groups[
            (("dst_country", "US"), ("src_country", "NZ"))
        ]
        assert len(rows) == 2  # two 5s windows over 10s of data

    def test_country_filters(self):
        dashboard = build_ruru_dashboard(src_country="NZ", dst_country="US")
        for panel in dashboard.panels:
            if panel.query.measurement == "latency":
                assert panel.query.tag_filters == {
                    "src_country": ["NZ"], "dst_country": ["US"]
                }

    def test_connections_panel_reads_rollups(self):
        dashboard = build_ruru_dashboard()
        connections = next(
            panel for panel in dashboard.panels
            if panel.query.measurement == "latency_by_location"
        )
        result = connections.render(_db())
        assert not result.groups == {}
