"""Live map state machine tests: 30 fps batching and arc budgets."""

import pytest

from repro.frontend.map_view import LiveMapView
from repro.frontend.websocket import WebSocketChannel
from tests.frontend.test_arcs import _measurement

S = 1_000_000_000
MS = 1_000_000


class TestFrameBatching:
    def test_tick_respects_fps(self):
        view = LiveMapView(fps=30)
        frame_interval = S // 30
        assert view.tick(0) is not None  # first frame always emits
        assert view.tick(frame_interval // 2) is None
        assert view.tick(frame_interval) is not None

    def test_at_most_fps_frames_per_second(self):
        view = LiveMapView(fps=30)
        frames = 0
        # Tick every millisecond of one virtual second.
        for ms in range(1000):
            view.add_measurement(_measurement(), ms * MS)
            if view.tick(ms * MS):
                frames += 1
        assert frames <= 31

    def test_frame_carries_pending_arcs(self):
        view = LiveMapView(fps=30)
        for _ in range(5):
            view.add_measurement(_measurement(), 0)
        frame = view.flush_frame(0)
        assert len(frame.arcs) == 5
        assert frame.active_arcs == 5

    def test_frame_indexes_increment(self):
        view = LiveMapView()
        first = view.flush_frame(0)
        second = view.flush_frame(S)
        assert (first.frame_index, second.frame_index) == (0, 1)


class TestArcLifecycle:
    def test_arcs_expire_after_ttl(self):
        view = LiveMapView(arc_ttl_s=2.0)
        view.add_measurement(_measurement(), 0)
        view.flush_frame(0)
        assert view.active_arc_count == 1
        view.flush_frame(3 * S)
        assert view.active_arc_count == 0

    def test_color_histogram(self):
        view = LiveMapView()
        view.add_measurement(_measurement(total_ms=100), 0)   # green
        view.add_measurement(_measurement(total_ms=300), 0)   # yellow
        view.add_measurement(_measurement(total_ms=4200), 0)  # red
        view.flush_frame(0)
        assert view.color_histogram() == {"green": 1, "yellow": 1, "red": 1}


class TestBusiestPairs:
    def test_tracks_top_pairs(self):
        view = LiveMapView(max_arcs_per_frame=10_000)
        for _ in range(10):
            view.add_measurement(_measurement(), 0)
        pairs = view.busiest_pairs(3)
        assert pairs[0] == (("Auckland", "Los Angeles"), 10)

    def test_counts_even_budget_dropped_arcs(self):
        # Heavy-hitter stats must reflect offered load, not drawn load.
        view = LiveMapView(max_arcs_per_frame=2)
        for _ in range(10):
            view.add_measurement(_measurement(), 0)
        assert view.busiest_pairs(1)[0][1] == 10


class TestOverload:
    def test_per_frame_budget_drops_overflow(self):
        view = LiveMapView(max_arcs_per_frame=10)
        for _ in range(25):
            view.add_measurement(_measurement(), 0)
        frame = view.flush_frame(0)
        assert len(frame.arcs) == 10
        assert view.arcs_dropped == 15
        assert frame.dropped_arcs == 15

    def test_budget_resets_each_frame(self):
        view = LiveMapView(max_arcs_per_frame=5)
        for _ in range(5):
            view.add_measurement(_measurement(), 0)
        view.flush_frame(0)
        view.add_measurement(_measurement(), S)
        assert view.arcs_dropped == 0


class TestChannelIntegration:
    def test_frames_serialized_to_websocket(self):
        channel = WebSocketChannel()
        view = LiveMapView(channel=channel)
        view.add_measurement(_measurement(), 0)
        view.flush_frame(0)
        message = channel.client_recv_json()
        assert message["frame"] == 0
        assert len(message["arcs"]) == 1
        assert message["arcs"][0]["from"] == "Auckland"

    def test_no_channel_keeps_frames(self):
        view = LiveMapView()
        view.flush_frame(0)
        assert len(view.frames) == 1


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(fps=0), dict(arc_ttl_s=0), dict(max_arcs_per_frame=0),
    ])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LiveMapView(**kwargs)
