"""WebSocket framing and channel tests."""

import pytest

from repro.frontend.websocket import (
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    WebSocketChannel,
    WebSocketError,
    decode_frame,
    encode_frame,
)


class TestFraming:
    def test_small_payload_roundtrip(self):
        frame = encode_frame(OP_TEXT, b"hello")
        opcode, payload, fin, consumed = decode_frame(frame)
        assert opcode == OP_TEXT
        assert payload == b"hello"
        assert fin
        assert consumed == len(frame)

    def test_16bit_length(self):
        payload = b"x" * 500
        frame = encode_frame(OP_BINARY, payload)
        assert frame[1] & 0x7F == 126
        assert decode_frame(frame)[1] == payload

    def test_64bit_length(self):
        payload = b"y" * 70000
        frame = encode_frame(OP_BINARY, payload)
        assert frame[1] & 0x7F == 127
        assert decode_frame(frame)[1] == payload

    def test_masked_roundtrip(self):
        frame = encode_frame(OP_TEXT, b"client data", mask=b"\x01\x02\x03\x04")
        assert frame[1] & 0x80
        opcode, payload, _, _ = decode_frame(frame)
        assert payload == b"client data"

    def test_masking_obscures_wire_bytes(self):
        plain = encode_frame(OP_TEXT, b"secret")
        masked = encode_frame(OP_TEXT, b"secret", mask=b"\xaa\xbb\xcc\xdd")
        assert b"secret" in plain
        assert b"secret" not in masked

    def test_fragmented_fin_flag(self):
        frame = encode_frame(OP_TEXT, b"part", fin=False)
        assert not decode_frame(frame)[2]

    def test_control_frame_rules(self):
        with pytest.raises(WebSocketError):
            encode_frame(OP_PING, b"z" * 126)
        with pytest.raises(WebSocketError):
            encode_frame(OP_CLOSE, b"x", fin=False)

    def test_bad_mask_length(self):
        with pytest.raises(WebSocketError):
            encode_frame(OP_TEXT, b"x", mask=b"\x01")

    def test_unknown_opcode(self):
        with pytest.raises(WebSocketError):
            encode_frame(0x5, b"")
        with pytest.raises(WebSocketError):
            decode_frame(bytes([0x85, 0x00]))

    def test_incomplete_frames_rejected(self):
        frame = encode_frame(OP_TEXT, b"hello world")
        for cut in (0, 1, len(frame) - 1):
            with pytest.raises(WebSocketError):
                decode_frame(frame[:cut])

    def test_reserved_bits_rejected(self):
        frame = bytearray(encode_frame(OP_TEXT, b"x"))
        frame[0] |= 0x40
        with pytest.raises(WebSocketError):
            decode_frame(bytes(frame))


class TestChannel:
    def test_text_roundtrip(self):
        channel = WebSocketChannel()
        channel.server_send_text("map update")
        assert channel.client_recv_text() == "map update"

    def test_json_roundtrip(self):
        channel = WebSocketChannel()
        channel.server_send_json({"arcs": [1, 2], "t": 5})
        assert channel.client_recv_json() == {"arcs": [1, 2], "t": 5}

    def test_fifo_order(self):
        channel = WebSocketChannel()
        for i in range(5):
            channel.server_send_json({"i": i})
        received = channel.client_recv_all_json()
        assert [m["i"] for m in received] == list(range(5))

    def test_byte_accounting(self):
        channel = WebSocketChannel()
        sent = channel.server_send_text("abc")
        assert channel.bytes_to_client == sent
        assert channel.messages_to_client == 1

    def test_close_handshake(self):
        channel = WebSocketChannel()
        channel.server_close(code=1001, reason="going away")
        assert not channel.open
        assert channel.client_recv_text() is None
        assert channel.close_frame.code == 1001
        assert channel.close_frame.reason == "going away"

    def test_send_after_close_rejected(self):
        channel = WebSocketChannel()
        channel.server_close()
        with pytest.raises(WebSocketError):
            channel.server_send_text("too late")

    def test_recv_empty(self):
        assert WebSocketChannel().client_recv_text() is None
