#!/usr/bin/env python
"""Network planning from Ruru data, the paper's second use case.

An operator planning capacity wants to know, per destination: how far
is measured latency from the physical floor, how much of the
end-to-end budget is the international hop, and which paths would
benefit most from a new peering. All of it falls out of the TSDB the
pipeline populates, queried exactly the way Grafana panels would.

Run:  python examples/network_planning.py
"""

from repro import PipelineConfig, RuruPipeline
from repro.analytics.service import AnalyticsService
from repro.frontend.dashboard import build_ruru_dashboard
from repro.geo.builder import GeoDbBuilder
from repro.geo.distance import rtt_floor_ms
from repro.geo.locations import city_by_name
from repro.mq.socket import Context
from repro.tsdb.query import Query
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_S = 1_000_000_000


def main() -> None:
    generator = AucklandLaScenario(
        duration_ns=30 * NS_PER_S, mean_flows_per_s=60, seed=21, diurnal=False
    ).build()
    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan, country_accuracy=1.0).build()
    service = AnalyticsService(context, geo, asn)
    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=4), sink=service.make_sink()
    )
    pipeline.run_packets(generator.packets())
    service.finish()
    tsdb = service.tsdb

    tap = city_by_name("Auckland")

    print(f"{'destination':<16} {'conns':>6} {'median ms':>10} "
          f"{'floor ms':>9} {'slack ms':>9} {'ext share':>9}")
    print("-" * 66)
    rows = []
    for dst_city in tsdb.tag_values("latency", "dst_city"):
        if dst_city in ("Unknown",):
            continue
        city = city_by_name(dst_city)
        if city is None or city.country_code == "NZ":
            continue
        median = tsdb.query(Query(
            "latency", "total_ms", "median",
            tag_filters={"dst_city": [dst_city], "src_country": ["NZ"]},
        )).scalar()
        count = tsdb.query(Query(
            "latency", "total_ms", "count",
            tag_filters={"dst_city": [dst_city], "src_country": ["NZ"]},
        )).scalar()
        external = tsdb.query(Query(
            "latency", "external_ms", "median",
            tag_filters={"dst_city": [dst_city], "src_country": ["NZ"]},
        )).scalar()
        if median is None or count is None or count < 5:
            continue
        floor = rtt_floor_ms(tap.lat, tap.lon, city.lat, city.lon)
        rows.append((dst_city, int(count), median, floor,
                     median - floor, external / median))

    # Rank by absolute slack over the physical floor: the paths where
    # better routing/peering buys the most.
    rows.sort(key=lambda row: row[4], reverse=True)
    for dst, conns, median, floor, slack, ext_share in rows:
        print(f"{dst:<16} {conns:>6} {median:>10.1f} {floor:>9.1f} "
              f"{slack:>9.1f} {ext_share:>8.0%}")

    if rows:
        worst = rows[0]
        print(f"\nBiggest planning opportunity: {worst[0]} — measured median "
              f"{worst[2]:.0f} ms vs {worst[3]:.0f} ms fibre floor "
              f"({worst[4]:.0f} ms of routing/queueing slack).")

    # The standard dashboard over the same database.
    print("\nRuru dashboard, latest mean latency per country pair (ms):")
    dashboard = build_ruru_dashboard(interval_ns=30 * NS_PER_S,
                                     src_country="NZ")
    for panel in dashboard.render(tsdb):
        if panel.title.startswith("mean"):
            for label, value in sorted(panel.latest().items()):
                print(f"  {label:<44} {value:7.1f}")


if __name__ == "__main__":
    main()
