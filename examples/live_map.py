#!/usr/bin/env python
"""The demo's live 3D map, server side: arcs over a WebSocket at 30 fps.

The browser's WebGL renderer is out of scope, but everything it
consumes is produced here: geo-enriched measurements stream over the
PUB/SUB fabric, become colour-coded great-circle arcs, get batched
into ≤30 frames per virtual second with a per-frame arc budget, and
go out as real RFC 6455 text frames. The example prints the frame
statistics and an ASCII rendering of where the arcs land.

Run:  python examples/live_map.py
"""

from collections import Counter

from repro import PipelineConfig, RuruPipeline
from repro.analytics.service import AnalyticsService
from repro.frontend.arcs import great_circle_points
from repro.frontend.map_view import LiveMapView
from repro.frontend.websocket import WebSocketChannel
from repro.geo.builder import GeoDbBuilder
from repro.mq.codec import decode_enriched
from repro.mq.socket import Context
from repro.traffic.scenarios import AucklandLaScenario, FirewallGlitchInjector

NS_PER_S = 1_000_000_000


def ascii_world(arcs, width=72, height=20) -> str:
    """Plot arc paths on a tiny ASCII world grid."""
    grid = [[" "] * width for _ in range(height)]
    for arc in arcs:
        for lat, lon in great_circle_points(*arc.src, *arc.dst, segments=24):
            x = int((lon + 180) / 360 * (width - 1))
            y = int((90 - lat) / 180 * (height - 1))
            mark = {"green": ".", "yellow": "o", "red": "@"}[arc.color]
            if grid[y][x] != "@":  # red always wins the cell
                grid[y][x] = mark
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    # Inject a short glitch so some arcs render red, as in the demo
    # ("red lines in areas where most lines are green").
    glitch = FirewallGlitchInjector(
        window_start_offset_ns=4 * NS_PER_S, window_ns=3 * NS_PER_S
    )
    generator = AucklandLaScenario(
        duration_ns=12 * NS_PER_S, mean_flows_per_s=60, seed=7, diurnal=False
    ).build(injectors=[glitch])

    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan).build()
    service = AnalyticsService(context, geo, asn)
    frontend = service.subscribe_frontend()

    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=4), sink=service.make_sink()
    )
    pipeline.run_packets(generator.packets())
    service.finish()

    channel = WebSocketChannel(name="browser")
    view = LiveMapView(channel=channel, fps=30, arc_ttl_s=30.0,
                       max_arcs_per_frame=1000)
    all_arcs = []
    last_ns = 0
    for message in frontend.recv_all():
        measurement = decode_enriched(message.payload[0])
        view.add_measurement(measurement, measurement.timestamp_ns)
        frame = view.tick(measurement.timestamp_ns)
        if frame:
            all_arcs.extend(frame.arcs)
        last_ns = max(last_ns, measurement.timestamp_ns)
    all_arcs.extend(view.flush_frame(last_ns).arcs)

    print(ascii_world(all_arcs))
    print()
    colors = Counter(arc.color for arc in all_arcs)
    print(f"Arcs drawn:   {len(all_arcs)} "
          f"(green={colors['green']}, yellow={colors['yellow']}, "
          f"red={colors['red']})")
    print(f"Frames sent:  {view.frames_sent} over {last_ns / NS_PER_S:.0f} "
          f"virtual seconds ({view.frames_sent / (last_ns / NS_PER_S):.1f} fps)")
    print(f"Feed volume:  {channel.bytes_to_client / 1024:.1f} KiB on the wire")
    print("Busiest pairs (Space-Saving heavy-hitter estimate):")
    for (src, dst), count in view.busiest_pairs(5):
        print(f"  {src:>16} -> {dst:<16} {count} connections")


if __name__ == "__main__":
    main()
