#!/usr/bin/env python
"""Offline latency analysis: mixture models, drift, and heatmaps.

The paper aggregates measurements "for further analysis" and cites
Fontugne et al.'s lognormal mixture methodology for RTT populations.
This example runs a day-segment of traffic through the co-scheduled
runtime, then analyzes the stored measurements three ways:

1. per-path mixture fits — how many latency states does each path
   have, and where are the modes?
2. window drift — which paths' populations changed between the first
   and second half of the run (the firewall glitch shows up here)?
3. a terminal heatmap of the latency population over time.

Run:  python examples/latency_analysis.py
"""

from repro import RuruRuntime
from repro.analysis.report import analyze_paths, compare_windows
from repro.frontend.heatmap import LatencyBuckets, render_heatmap
from repro.mq.codec import decode_enriched
from repro.traffic.scenarios import AucklandLaScenario, FirewallGlitchInjector

NS_PER_S = 1_000_000_000
DURATION_S = 120


def main() -> None:
    # Glitch in the second half, so the two halves drift apart.
    glitch = FirewallGlitchInjector(
        window_start_offset_ns=80 * NS_PER_S, window_ns=20 * NS_PER_S
    )
    generator = AucklandLaScenario(
        duration_ns=DURATION_S * NS_PER_S, mean_flows_per_s=40,
        seed=61, diurnal=False,
    ).build(injectors=[glitch])

    runtime = RuruRuntime.build(generator.plan, with_anomaly_detection=False)
    # Capture the enriched stream for offline analysis as it passes.
    measurements = []
    sub = runtime.service.subscribe_frontend(hwm=1 << 20)
    report = runtime.run(generator.packets())
    for message in sub.recv_all():
        measurements.append(decode_enriched(message.payload[0]))

    print(f"Measurements analyzed: {len(measurements)} "
          f"(glitch affected {glitch.affected_flows} flows)\n")

    # --- 1. Per-path mixture fits -------------------------------------
    print("Per-path lognormal mixture fits (top paths by volume):")
    for path in analyze_paths(measurements, min_samples=30)[:8]:
        modality = "MULTIMODAL" if path.is_multimodal else "unimodal"
        print(f"  {path.pair[0]:>16} -> {path.pair[1]:<16} "
              f"n={path.sample_count:<4} median={path.median_ms:7.1f}ms "
              f"[{modality}: {path.mode_summary()}]")

    # --- 2. Window drift -------------------------------------------------
    half = (DURATION_S // 2) * NS_PER_S
    before = [m for m in measurements if m.timestamp_ns < half]
    after = [m for m in measurements if m.timestamp_ns >= half]
    print("\nPopulation drift, first half vs second half (KS statistic):")
    for drift in compare_windows(before, after, min_samples=25)[:6]:
        marker = "***" if drift.significant else "   "
        print(f"  {marker} {drift.pair[0]:>16} -> {drift.pair[1]:<16} "
              f"KS={drift.ks:.2f} median {drift.before_median_ms:6.1f} -> "
              f"{drift.after_median_ms:6.1f} ms")

    # --- 3. Heatmap --------------------------------------------------------
    print("\nEnd-to-end latency heatmap (10 s windows, log buckets):")
    heatmap = render_heatmap(
        report.tsdb,
        window_ns=10 * NS_PER_S,
        buckets=LatencyBuckets(minimum_ms=1, maximum_ms=10_000, count=12),
    )
    print(heatmap.ascii())
    print(f"\n({heatmap.total} samples; the detached top band during the "
          f"glitch window is the 4000 ms population)")


if __name__ == "__main__":
    main()
