#!/usr/bin/env python
"""Quickstart: measure flow-level latency on synthetic Auckland–LA traffic.

This is the minimal Ruru loop from the paper's Fig 1 and Fig 2:
generate a tapped packet stream, run it through the DPDK-style
pipeline (symmetric RSS → per-queue workers → handshake tracker), and
print per-flow internal / external / total latency.

Run:  python examples/quickstart.py
"""

from repro import AucklandLaScenario, PipelineConfig, RuruPipeline

NS_PER_S = 1_000_000_000


def main() -> None:
    # 10 seconds of synthetic traffic through an Auckland tap:
    # NZ clients reaching the world, ~50 new connections per second.
    scenario = AucklandLaScenario(
        duration_ns=10 * NS_PER_S,
        mean_flows_per_s=50,
        seed=42,
        diurnal=False,
    )
    generator = scenario.build()

    # The measurement pipeline: 4 RSS queues, one worker each.
    pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
    stats = pipeline.run_packets(generator.packets())

    print("First ten measurements (source -> destination):")
    for record in pipeline.measurements[:10]:
        print(f"  {record}")

    print(f"\nFlows generated:        {generator.flows_generated}")
    print(f"Packets processed:      {stats.packets_offered}")
    print(f"Handshakes measured:    {stats.measurements}")
    print(f"Data ACKs skipped:      {stats.tracker.stray_ack}")
    balance = ", ".join(f"{share:.1%}" for share in pipeline.queue_balance())
    print(f"RSS queue balance:      {balance}")

    totals = sorted(record.total_ms for record in pipeline.measurements)
    if totals:
        median = totals[len(totals) // 2]
        print(f"Median end-to-end RTT:  {median:.1f} ms")


if __name__ == "__main__":
    main()
