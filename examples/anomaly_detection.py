#!/usr/bin/env python
"""The paper's flagship use case: finding the nightly firewall glitch.

REANNZ's deployment found "a periodic firewall update was causing a
4000 ms latency increase on all connections that were started within a
specific, very short time period each night", invisible to SNMP-style
5-minute averages. This example reproduces the finding end to end:

1. simulate a night of traffic with the glitch injected at 03:00;
2. run the full pipeline + analytics stack;
3. show that 5-minute averages (what SNMP-era tooling sees) barely
   move, while Ruru's per-flow view and spike detector nail the
   window;
4. also inject a SYN flood and catch it with the packet-level
   detector.

Run:  python examples/anomaly_detection.py
"""

from repro import AnomalyManager, PipelineConfig, RuruPipeline
from repro.analytics.service import AnalyticsService
from repro.geo.builder import GeoDbBuilder
from repro.mq.socket import Context
from repro.tsdb.query import Query
from repro.traffic.scenarios import (
    AucklandLaScenario,
    FirewallGlitchInjector,
    SynFloodInjector,
)

NS_PER_S = 1_000_000_000
NS_PER_MIN = 60 * NS_PER_S

# Simulate 02:55-03:10 of the night: the glitch hits 03:00-03:01.
START_NS = (2 * 3600 + 55 * 60) * NS_PER_S
DURATION_NS = 15 * NS_PER_MIN


def main() -> None:
    glitch = FirewallGlitchInjector(
        window_start_offset_ns=3 * 3600 * NS_PER_S,
        window_ns=60 * NS_PER_S,
        extra_delay_ms=4000.0,
    )
    flood = SynFloodInjector(
        flood_start_ns=START_NS + 12 * NS_PER_MIN,
        flood_duration_ns=10 * NS_PER_S,
        rate_per_s=2000,
    )
    scenario = AucklandLaScenario(
        duration_ns=DURATION_NS, start_ns=START_NS,
        mean_flows_per_s=40, seed=99, diurnal=True,
    )
    generator = scenario.build(injectors=[glitch, flood])

    context = Context()
    geo, asn = GeoDbBuilder(plan=generator.plan).build()
    service = AnalyticsService(context, geo, asn)
    manager = AnomalyManager()
    # Tap the enriched stream for the measurement detectors.
    service.filters.append(lambda m: (manager.observe_measurement(m), True)[1])

    pipeline = RuruPipeline(
        config=PipelineConfig(num_queues=4),
        sink=service.make_sink(),
        observers=[manager.observe_packet],  # SYN-flood detector tap
    )
    pipeline.run_packets(generator.packets())
    service.finish()

    print(f"Flows in glitch window: {glitch.affected_flows}")
    print(f"SYN-flood packets injected: ~{flood.flows_injected}")

    # --- What an SNMP-style 5-minute mean sees ------------------------
    print("\n5-minute mean end-to-end latency (the SNMP-era view):")
    coarse = service.tsdb.query(Query(
        "latency", "total_ms", "mean",
        start_ns=START_NS, end_ns=START_NS + DURATION_NS,
        group_by_time_ns=5 * NS_PER_MIN,
    ))
    for window, value in coarse.groups.get((), []):
        minute = (window - START_NS) // NS_PER_MIN
        print(f"  t+{minute:02d}min..+{minute + 5:02d}min: {value:8.1f} ms")

    # --- What Ruru sees ------------------------------------------------
    print("\nPer-10s p99 end-to-end latency (Ruru's view):")
    fine = service.tsdb.query(Query(
        "latency", "total_ms", "p99",
        start_ns=START_NS, end_ns=START_NS + DURATION_NS,
        group_by_time_ns=10 * NS_PER_S,
    ))
    for window, value in fine.groups.get((), []):
        seconds = (window - START_NS) // NS_PER_S
        bar = "#" * min(60, int(value / 75))
        print(f"  t+{seconds:4d}s: {value:8.1f} ms {bar}")

    # --- The detectors --------------------------------------------------
    print("\nAnomaly events:")
    for event in manager.finish(now_ns=START_NS + DURATION_NS):
        print(f"  {event}")


if __name__ == "__main__":
    main()
