#!/usr/bin/env python
"""Ruru vs pping vs tcptrace on one identical trace (experiment E9).

The three passive approaches trade coverage for cost:

* **Ruru** measures each flow exactly once, at the handshake — three
  packets of state per flow, then done. It yields both path components
  (internal + external) per connection.
* **pping** matches TCP timestamp echoes on every packet — continuous
  samples for long flows, but per-packet table work and no component
  split at connection start.
* **tcptrace** reconstructs whole connections offline — complete, but
  holds every flow's state for the entire capture.

Run:  python examples/baselines_comparison.py
"""

import statistics
import time

from repro import PipelineConfig, RuruPipeline
from repro.baselines.pping import PpingEstimator
from repro.baselines.tcptrace import TcptraceAnalyzer
from repro.net.parser import PacketParser
from repro.traffic.scenarios import AucklandLaScenario

NS_PER_S = 1_000_000_000


def main() -> None:
    generator = AucklandLaScenario(
        duration_ns=10 * NS_PER_S, mean_flows_per_s=50, seed=33, diurnal=False
    ).build(keep_specs=True)
    packets = generator.packet_list()
    truth = {
        (spec.client_ip, spec.client_port): spec for spec in generator.specs
    }
    print(f"Trace: {len(packets)} packets, {generator.flows_generated} flows\n")

    # --- Ruru ------------------------------------------------------------
    started = time.perf_counter()
    pipeline = RuruPipeline(config=PipelineConfig(num_queues=4))
    stats = pipeline.run_packets(packets)
    ruru_seconds = time.perf_counter() - started
    errors = []
    for record in pipeline.measurements:
        spec = truth.get((record.src_ip, record.src_port))
        if spec:
            errors.append(abs(record.total_ns - spec.expected_total_ns()) / 1e6)

    # --- pping ------------------------------------------------------------
    parser = PacketParser(extract_timestamps=True)
    parsed = [parser.parse(p.data, p.timestamp_ns) for p in packets]
    started = time.perf_counter()
    pping = PpingEstimator()
    samples = pping.run(parsed)
    pping_seconds = time.perf_counter() - started
    per_flow = pping.samples_per_flow()

    # --- tcptrace -----------------------------------------------------------
    started = time.perf_counter()
    tcptrace = TcptraceAnalyzer()
    reports = tcptrace.run(parsed)
    tcptrace_seconds = time.perf_counter() - started
    summary = tcptrace.summary()

    print(f"{'':<22}{'Ruru':>12}{'pping':>12}{'tcptrace':>12}")
    print(f"{'samples':<22}{stats.measurements:>12}{len(samples):>12}"
          f"{summary['complete_handshakes']:>12.0f}")
    print(f"{'samples/flow':<22}{stats.measurements / generator.flows_generated:>12.2f}"
          f"{len(samples) / max(1, len(per_flow)):>12.2f}"
          f"{'1.00':>12}")
    print(f"{'state entries':<22}"
          f"{max(len(w.tracker.table) for w in pipeline.workers):>12}"
          f"{len(pping._first_seen):>12}"
          f"{len(tcptrace.flows):>12}")
    print(f"{'run time (s)':<22}{ruru_seconds:>12.2f}{pping_seconds:>12.2f}"
          f"{tcptrace_seconds:>12.2f}")
    if errors:
        print(f"\nRuru vs ground truth: median abs error "
              f"{statistics.median(errors):.3f} ms over {len(errors)} flows")
    print("\nNote: Ruru's single sample per flow carries the internal/"
          "external split;\npping samples continuously but only after the "
          "flow is established;\ntcptrace needs the full capture before "
          "reporting anything.")


if __name__ == "__main__":
    main()
