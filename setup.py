"""Legacy setup shim: lets ``pip install -e .`` work offline
(no wheel package available for PEP 517 editable builds).
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
